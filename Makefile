# Local verification targets.
#
#   make check       - tier-1 unit/integration tests plus a fast benchmark
#                      smoke run (small node counts), catching functional and
#                      benchmark-harness regressions in a couple of minutes.
#   make tier1       - the exact tier-1 command from ROADMAP.md (runs the
#                      benchmarks at their default sizes; slow).
#   make test        - unit/integration tests only (fastest loop).
#   make bench-smoke - the full benchmark suite at smoke sizes.
#   make scenarios-smoke - small-N run of every dynamic-network scenario
#                      script (link failure, churn, retraction); fails if
#                      any phase misses its distributed fixpoint.
#   make shard-smoke - the sharded execution backend end-to-end at small N:
#                      the serial-vs-sharded scaling benchmark (equivalence
#                      asserted, speedup reported), the coordination-ledger
#                      benchmark (rounds/bytes vs the strict barrier,
#                      improvement asserted), plus every scenario script on
#                      sharded workers — strict processes, and pipelined
#                      inline with the binary transport.
#   make examples-smoke - run every examples/*.py end-to-end (small N),
#                      failing on the first nonzero exit; keeps the facade
#                      documentation executable.
#   make service-smoke - the query-service-plane benchmark at small sizes:
#                      an open-loop saturation ladder with admission control
#                      and the result cache armed (rejection/p95 monotone,
#                      goodput plateau asserted), plus serial-vs-sharded
#                      SLO-report equality at the most saturated point.
#   make memory-smoke - the provenance-memory benchmark at small N with the
#                      tiered store: asserts the resident gauge stays flat
#                      under churn and that retracted-route tracebacks
#                      answer through spill reads.  Spill logs live under
#                      pytest's tmpdir, so the run is hermetic.
#   make dynamics-smoke - the churn-convergence benchmark: one-fixpoint
#                      deletion vs the soft-state decay baseline on a
#                      bridge retraction (>=5x simulated-time improvement
#                      asserted) and serial-vs-sharded byte-identity of
#                      the six churn-plane counters at 2 and 4 shards;
#                      writes BENCH_dynamics.json.
#   make lint        - static analysis: the NDlog program linter over every
#                      in-tree program (warnings fail the build), the
#                      determinism-invariant checker over src/repro, and —
#                      when installed — ruff over src/.
#   make ci          - what the GitHub Actions workflow runs: the lint
#                      suite, tier-1 tests, the benchmark smoke suite, the
#                      scenario, shard, examples, service, memory and
#                      dynamics smoke runs, and a bytecode compile of the
#                      whole source tree.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check tier1 test bench-smoke scenarios-smoke shard-smoke examples-smoke service-smoke memory-smoke dynamics-smoke lint compileall ci

check: lint test bench-smoke scenarios-smoke shard-smoke examples-smoke service-smoke memory-smoke dynamics-smoke

tier1:
	$(PYTHON) -m pytest -x -q

test:
	$(PYTHON) -m pytest -x -q tests

bench-smoke:
	REPRO_BENCH_SIZES=10 REPRO_SCALE_N=24 REPRO_BENCH_RECEIVE_N=24 \
		$(PYTHON) -m pytest -x -q benchmarks

scenarios-smoke:
	$(PYTHON) -m repro.harness.scenarios all --nodes 8

shard-smoke:
	REPRO_SCALE_N=24 REPRO_SHARD_ASSERT=0 \
		$(PYTHON) -m pytest -x -q benchmarks/test_shard_scaling.py
	$(PYTHON) -m repro.harness.scenarios all --nodes 8 \
		--backend sharded --shards 2 --shard-mode processes
	$(PYTHON) -m repro.harness.scenarios all --nodes 8 \
		--backend sharded --shards 3 --shard-mode inline --shard-pipeline
	$(PYTHON) -m repro.harness.scenarios all --nodes 8 \
		--backend sharded --shards 2 --shard-mode processes \
		--shard-pipeline --transport shm

examples-smoke:
	@set -e; for example in examples/*.py; do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null; \
	done

service-smoke:
	REPRO_SERVICE_RATES=2,6,18 REPRO_SERVICE_N=8 REPRO_SERVICE_DURATION=6 \
		$(PYTHON) -m pytest -x -q benchmarks/test_query_service.py
	$(PYTHON) -m repro.harness.scenarios link-failure --nodes 8 \
		--query-rate 3 --clients 1 --admission 2

memory-smoke:
	REPRO_BENCH_SIZES=10 REPRO_SCALE_N=24 REPRO_BENCH_CHURN_ROUNDS=3 \
		$(PYTHON) -m pytest -x -q benchmarks/test_provenance_memory.py

dynamics-smoke:
	$(PYTHON) -m pytest -x -q benchmarks/test_dynamics.py
	$(PYTHON) -m repro.harness.scenarios retraction --nodes 8 \
		--refresh-mode wheel
	$(PYTHON) -m repro.harness.scenarios retraction --nodes 8 \
		--backend sharded --shards 2 --shard-mode inline \
		--refresh-mode wheel

lint:
	$(PYTHON) -m repro.datalog.lint --builtin --strict
	$(PYTHON) tools/check_invariants.py
	@if command -v ruff > /dev/null 2>&1; then \
		echo "== ruff"; ruff check src; \
	else \
		echo "ruff not installed; skipping style check"; \
	fi

compileall:
	$(PYTHON) -m compileall -q src

ci: lint tier1 bench-smoke scenarios-smoke shard-smoke examples-smoke service-smoke memory-smoke dynamics-smoke compileall
