# Local verification targets.
#
#   make check       - tier-1 unit/integration tests plus a fast benchmark
#                      smoke run (small node counts), catching functional and
#                      benchmark-harness regressions in a couple of minutes.
#   make tier1       - the exact tier-1 command from ROADMAP.md (runs the
#                      benchmarks at their default sizes; slow).
#   make test        - unit/integration tests only (fastest loop).
#   make bench-smoke - the full benchmark suite at smoke sizes.
#   make ci          - what the GitHub Actions workflow runs: tier-1 tests,
#                      the benchmark smoke suite, and a bytecode compile of
#                      the whole source tree.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check tier1 test bench-smoke compileall ci

check: test bench-smoke

tier1:
	$(PYTHON) -m pytest -x -q

test:
	$(PYTHON) -m pytest -x -q tests

bench-smoke:
	REPRO_BENCH_SIZES=10 REPRO_SCALE_N=24 $(PYTHON) -m pytest -x -q benchmarks

compileall:
	$(PYTHON) -m compileall -q src

ci: tier1 bench-smoke compileall
