"""Churn repair: one-fixpoint deletions and the timer-wheel refresh plane.

Scenario: a reachability network on a line with a chord converges, keeps
itself alive past its soft-state TTL on per-tuple wheel timers, and then
loses a link.  Because base tuples carry base-support polynomials, the
retraction runs DRed's over-deletion *and* the rederivation phase in one
distributed fixpoint: tuples with a surviving alternative derivation
(through the chord) are kept, dead remote copies are chased with ranked
anti-delta messages, and the network converges at link-latency speed —
no waiting for TTL decay.

The same script is then replayed with ``rederivation=False`` to show the
decay baseline the paper era lived with: no anti-deltas, stale state
survives until its TTL runs out.

Run with::

    python examples/churn_repair.py
"""

from __future__ import annotations

from repro.api import Network, NetOptions
from repro.datalog import localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.events import FactInjection, FactRetraction, SoftStateRefresh
from repro.net.topology import Link, line_topology
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode

TTL = 30.0

COUNTERS = (
    "rederivations",
    "anti_delta_messages",
    "anti_delta_bytes",
    "refresh_messages",
    "refresh_bytes",
    "timer_events",
)


def build_network(rederivation: bool):
    """A 6-node line with a chord n0<->n2, on the wheel refresh plane."""
    topology = line_topology(6).with_extra_links(
        [Link(source="n0", destination="n2", cost=1.0),
         Link(source="n2", destination="n0", cost=1.0)]
    )
    program = compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))
    network = Network.build(
        topology=topology,
        program=program,
        config=EngineConfig(
            default_ttl=TTL,
            track_dependencies=True,
            provenance_mode=ProvenanceMode.CONDENSED,
            says_mode=SaysMode.NONE,
            rederivation=rederivation,
        ),
        options=NetOptions(
            refresh_mode="wheel",
            refresh_interval=10.0,
            refresh_rate=16.0,
            refresh_burst=32.0,
        ),
    )
    simulator = network.simulator
    for node in topology.nodes:
        facts = tuple(
            Fact("link", (link.source, link.destination))
            for link in sorted(topology.outgoing(node),
                               key=lambda l: l.destination)
        )
        simulator.schedule(FactInjection(time=0.0, address=node, facts=facts))
    assert simulator.run_until_idle()
    return network, topology


def reachable_count(simulator) -> int:
    return sum(len(tuple(engine.facts("reachable")))
               for engine in simulator.engines.values())


def run(rederivation: bool) -> dict:
    network, topology = build_network(rederivation)
    simulator = network.simulator
    print(f"converged: {reachable_count(simulator)} reachable tuples "
          f"across {len(topology.nodes)} nodes "
          f"(rederivation={'on' if rederivation else 'off'})")

    # Advance the wheel horizon past the TTL: per-tuple timers refresh the
    # soft state continuously — no lockstep SoftStateRefresh rounds needed.
    simulator.schedule(SoftStateRefresh(time=TTL + 5.0))
    assert simulator.run_until_idle()
    alive = reachable_count(simulator)
    print(f"  t={simulator.current_time():.1f}s > TTL={TTL:.0f}s: "
          f"{alive} tuples still alive on wheel timers")

    # Retract the link n1 -> n2 (and its reverse).  The chord keeps the
    # graph connected, so every reachable tuple still holds — but only a
    # rederivation-aware retraction can *prove* that and keep them.
    retract_at = max(simulator.current_time(), TTL + 5.0) + 1.0
    for source, destination in (("n1", "n2"), ("n2", "n1")):
        simulator.schedule(FactRetraction(
            time=retract_at,
            address=source,
            facts=(Fact("link", (source, destination)),),
        ))
    assert simulator.run_until_idle()
    repair_time = simulator.current_time() - retract_at
    remaining = reachable_count(simulator)
    summary = simulator.stats.summary()
    counters = {key: int(summary[key]) for key in COUNTERS}
    print(f"  retracted n1<->n2: {alive} -> {remaining} tuples, "
          f"converged {repair_time:.3f}s after the retraction")
    for key in COUNTERS:
        print(f"      {key:<22s}{counters[key]:>8d}")
    print()
    return counters


def main() -> None:
    print("=== one-fixpoint deletions (rederivation=True, the default) ===")
    repaired = run(rederivation=True)

    print("=== decay baseline (rederivation=False) ===")
    decayed = run(rederivation=False)

    print(f"one-fixpoint repair kept {repaired['rederivations']} tuples via "
          f"alternative derivations through the chord and settled dead "
          f"remote copies with {repaired['anti_delta_messages']} anti-delta "
          f"messages ({repaired['anti_delta_bytes']} bytes) — the network "
          f"is correct the moment the fixpoint lands.")
    print(f"the decay baseline sent {decayed['anti_delta_messages']} "
          f"anti-deltas and over-deleted tuples the chord still supports: "
          f"its state stays wrong until the {TTL:.0f}s TTL decays it and "
          f"the next refresh rebuilds it.")
    assert repaired["anti_delta_messages"] > 0
    assert decayed["anti_delta_messages"] == 0


if __name__ == "__main__":
    main()
