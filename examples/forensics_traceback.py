"""Forensic traceback over offline provenance (Sections 3 and 4.2).

Scenario: a path-vector network runs for a while; afterwards an operator
wants to know, for a suspicious route installed at some node, where it
originated and which nodes it traversed — the IP-traceback question — even
though the routing state itself may have expired.  Offline provenance
archives answer it; distributed provenance pointers answer the same question
with a recursive traceback query instead of piggy-backed state.

Run with::

    python examples/forensics_traceback.py
"""

from __future__ import annotations

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.simulator import Simulator
from repro.net.topology import line_topology
from repro.provenance.distributed import traceback
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode
from repro.usecases.forensics import ForensicInvestigator


def main() -> None:
    # A 6-node chain makes the multi-hop derivation easy to read.
    topology = line_topology(6)
    compiled = compile_best_path()
    config = EngineConfig(
        says_mode=SaysMode.SIGNED,
        provenance_mode=ProvenanceMode.CONDENSED,
        keep_offline_provenance=True,
        keep_online_provenance=True,
    )
    result = Simulator(topology, compiled, config).run()

    # The route we are investigating: the best path from n0 to n5.
    source, destination = "n0", "n5"
    engine = result.engines[source]
    target = next(
        fact
        for fact in engine.facts("bestPath")
        if fact.values[0] == source and fact.values[1] == destination
    )
    print(f"investigating: {target}")
    print(f"condensed provenance at {source}: {engine.provenance_of(target)}\n")

    # --- offline provenance: archives survive soft-state expiry --------------------
    investigator = ForensicInvestigator.from_engines(result.engines)
    report = investigator.traceback(target.key())
    print("offline-archive traceback")
    print(f"  nodes traversed : {', '.join(report.nodes_traversed)}")
    print(f"  rules applied   : {', '.join(report.rules_applied)}")
    print(f"  base origins    : {len(report.origins)} link tuples")
    for origin in report.origins[:6]:
        print(f"      {origin[0]}{origin[1]}")
    print(f"  derivation depth: {report.derivation_depth}\n")

    # --- distributed provenance: recursive pointer walk ------------------------------
    stores = {
        address: node.distributed_provenance for address, node in result.engines.items()
    }
    walk = traceback(target.key(), source, resolver=stores.get)
    print("distributed-pointer traceback (the on-demand alternative)")
    print(f"  complete        : {walk.complete}")
    print(f"  nodes visited   : {', '.join(walk.nodes_visited)}")
    print(f"  remote lookups  : {walk.remote_lookups} "
          "(the communication cost local provenance avoids)\n")

    # --- which routes did a suspect link influence? -----------------------------------
    suspect_link = ("link", ("n2", "n3", 1.0))
    affected = investigator.tuples_depending_on(suspect_link)
    print(f"tuples whose derivation used link(n2, n3): {len(affected)}")

    footprint = investigator.storage_footprint()
    total = sum(footprint.values())
    print(f"offline archive footprint across nodes: {total} bytes "
          f"(max per node {max(footprint.values())})")


if __name__ == "__main__":
    main()
