"""Forensic traceback over offline provenance (Sections 3 and 4.2).

Scenario: a network runs for a while; afterwards an operator wants to know,
for a suspicious route installed at some node, where it originated and which
nodes it traversed — the IP-traceback question — even though the routing
state itself may have expired.  Three ways to ask it, compared side by side:

* the **offline-archive investigator** reads every node's persistent log
  directly (zero simulated messages — the out-of-band baseline);
* the **zero-cost oracle** ``network.legacy_traceback`` walks the live
  distributed pointers through direct Python calls;
* the **in-network query** ``network.query(...)`` asks the same question
  over the wire: pointer chasing ships real request/response messages whose
  bytes and latency the statistics attribute to the query category.

Run with::

    python examples/forensics_traceback.py
"""

from __future__ import annotations

from repro.api import Network
from repro.usecases.forensics import ForensicInvestigator, traceback_over_network


def main() -> None:
    # A 6-node chain makes the multi-hop derivation easy to read.
    from repro.net.topology import line_topology

    network = Network.build(
        topology=line_topology(6),
        program="best-path",
        provenance="sendlog-prov",
        keep_offline_provenance=True,
        keep_online_provenance=True,
    )
    network.run()

    # The route we are investigating: the best path from n0 to n5.
    source, destination = "n0", "n5"
    engine = network.node(source)
    target = next(
        fact
        for fact in engine.facts("bestPath")
        if fact.values[0] == source and fact.values[1] == destination
    )
    print(f"investigating: {target}")
    print(f"condensed provenance at {source}: {engine.provenance_of(target)}\n")

    # --- offline provenance: archives survive soft-state expiry --------------------
    investigator = ForensicInvestigator.from_network(network)
    report = investigator.traceback(target.key())
    print("offline-archive traceback (out-of-band, zero messages)")
    print(f"  nodes traversed : {', '.join(report.nodes_traversed)}")
    print(f"  rules applied   : {', '.join(report.rules_applied)}")
    print(f"  base origins    : {len(report.origins)} link tuples")
    print(f"  derivation depth: {report.derivation_depth}\n")

    # --- the zero-cost oracle: pointer walk by direct store access -----------------
    walk = network.legacy_traceback(target, at=source)
    print("distributed-pointer oracle (out-of-band, zero messages)")
    print(f"  complete        : {walk.complete}")
    print(f"  nodes visited   : {', '.join(walk.nodes_visited)}")
    print(f"  remote lookups  : {walk.remote_lookups}\n")

    # --- the same question asked IN the network -------------------------------------
    answer = network.query(target, at=source)
    print("in-network provenance query (pays wire costs)")
    print(f"  complete        : {answer.complete}")
    print(f"  same graph as oracle: {answer.graph.same_structure(walk.graph)}")
    print(f"  messages        : {answer.messages} "
          f"({answer.remote_lookups} remote dereferences)")
    print(f"  bytes on wire   : {answer.bytes}")
    print(f"  latency         : {answer.latency * 1000:.1f} ms simulated\n")

    # --- the forensic wrapper: in-band traceback over the archives ------------------
    forensic_report, forensic_cost = traceback_over_network(
        network, target, at=source, mode="offline"
    )
    print("in-network forensic traceback (offline archives, in-band)")
    print(f"  nodes traversed : {', '.join(forensic_report.nodes_traversed)}")
    print(f"  derivation depth: {forensic_report.derivation_depth}")
    print(f"  wire cost       : {forensic_cost.messages} messages, "
          f"{forensic_cost.bytes} bytes\n")

    # --- which routes did a suspect link influence? -----------------------------------
    suspect_link = ("link", ("n2", "n3", 1.0))
    affected = investigator.tuples_depending_on(suspect_link)
    print(f"tuples whose derivation used link(n2, n3): {len(affected)}")

    footprint = investigator.storage_footprint()
    print(f"offline archive footprint across nodes: {sum(footprint.values())} bytes "
          f"(max per node {max(footprint.values())})")


if __name__ == "__main__":
    main()
