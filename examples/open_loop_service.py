"""The query service plane: an always-on network under open-loop query load.

One-shot tracebacks (``network.query``) answer a single question; the
service plane answers a *stream* of them while the network keeps running:

1. ``Network.build`` arms the per-node result cache and token-bucket
   admission control through ``NetOptions``;
2. a ``QueryWorkload`` describes open-loop Poisson arrivals — precomputed
   from the seed, so every backend sees the identical stream;
3. ``network.serve(workload)`` converges the network, plays the window and
   returns a ``RunResult`` whose ``service()`` report carries goodput,
   rejection rate, latency percentiles and cache economics;
4. the same workload at 8x the offered rate shows the open-loop saturation
   signature: goodput grows sublinearly while rejections and tail latency
   climb — admission control sheds the overload instead of queueing it
   without bound;
5. a closed-loop variant (N clients with think time) bounds the load by
   construction: nobody issues a new query before their last one answered.

Run with::

    python examples/open_loop_service.py
"""

from __future__ import annotations

from repro.api import NetOptions, Network
from repro.net.kernel import CostModel
from repro.service.workload import QueryWorkload


def build_network() -> Network:
    return Network.build(
        topology=10,
        program="best-path",
        provenance="condensed",
        options=NetOptions(
            seed=42,
            query_cache=True,            # per-node memoized closures
            query_cache_entries=64,      # LRU capacity per node
            admission_rate=1.0,          # sustained budget: 1 query/s/node
            admission_burst=8.0,         # tokens banked while idle
            # Inflated query CPU costs put the bottleneck in the service
            # plane (not the 1 ms wire), so saturation shows at demo rates.
            cost_model=CostModel(
                seconds_per_query_lookup=25e-3, seconds_per_query_byte=2e-4
            ),
        ),
    )


def describe(label: str, report) -> None:
    print(
        f"  {label:<22s} offered={report.offered:>4d} "
        f"completed={report.completed:>4d} "
        f"goodput={report.goodput:>6.2f}/s rejected={report.rejection_rate:>5.1%} "
        f"p50={report.p50_ms:>8.1f}ms p95={report.p95_ms:>8.1f}ms "
        f"cache-hit={report.cache_hit_ratio:>5.1%}"
    )


def main() -> None:
    # 2-3. A light open-loop load: well inside the admission budget.
    network = build_network()
    light = network.serve(QueryWorkload(rate=2.0, duration=10.0, seed=7))
    print("open-loop provenance query service (10 nodes, best-path):")
    describe("light (2 q/s)", light.service())

    # 4. Same network, same seed, 8x the offered rate: the saturation
    #    signature.  Goodput grows far less than 8x; the token buckets
    #    shed the excess and the queue pushes the tail out.
    saturated = build_network().serve(
        QueryWorkload(rate=16.0, duration=10.0, seed=7)
    )
    describe("saturated (16 q/s)", saturated.service())

    light_report, saturated_report = light.service(), saturated.service()
    assert saturated_report.rejection_rate > light_report.rejection_rate
    assert saturated_report.p95_ms >= light_report.p95_ms
    assert saturated_report.goodput < 8 * light_report.goodput
    assert saturated_report.cache_hit_ratio > 0

    # 5. Closed-loop: four clients, each waiting for its answer (plus
    #    think time) before asking again.  Load is self-limiting, so
    #    nothing is rejected even with the same admission budget.  Only
    #    the four opening arrivals count as "offered" — every follow-up
    #    is generated inside the kernel as its predecessor completes.
    closed = build_network().serve(
        QueryWorkload(clients=4, think_time=0.5, duration=10.0, seed=7)
    )
    describe("closed-loop (4 users)", closed.service())

    print(
        "\nsaturation sheds load instead of queueing it: "
        f"{saturated_report.rejected} of {saturated_report.offered} "
        "queries rejected by the token buckets, and every served answer "
        "was epoch-checked against the provenance store (zero stale hits)."
    )


if __name__ == "__main__":
    main()
