"""Link-failure forensics: provenance of a network that changed under you.

Scenario: a Best-Path network converges, then one of its links dies.  The
link's owner retracts the base tuple (cascading invalidation through
everything it derived from it), stale state elsewhere decays by soft-state
TTL, and the next refresh round reroutes traffic.  Afterwards an operator
asks the forensic questions the paper motivates:

* what does the network route *now* (the repaired fixpoint)?
* which routes did the dead link carry *before* it failed?  The live
  provenance stores no longer vouch for it — that is the point of
  invalidation — but the offline archives kept the historical record, and
  an **in-network offline query** retrieves it with real message costs.

Run with::

    python examples/link_failure_forensics.py
"""

from __future__ import annotations

from repro.engine.node_engine import ProvenanceMode
from repro.harness.scenarios import link_failure_scenario, run_scenario
from repro.usecases.forensics import ForensicInvestigator


def main() -> None:
    scenario, network = link_failure_scenario(
        node_count=10,
        seed=3,
        provenance_mode=ProvenanceMode.CONDENSED,
        keep_offline_provenance=True,
    )
    source, destination = scenario.details["failed_link"]
    print(f"scenario: {scenario.description}\n")

    report = run_scenario(scenario, network)
    print(report.render())
    print()

    # --- the repaired network ------------------------------------------------------
    engine = network.node(source)
    rerouted = next(
        (
            fact
            for fact in engine.facts("bestPath")
            if fact.values[0] == source and fact.values[1] == destination
        ),
        None,
    )
    if rerouted is not None:
        hops = " -> ".join(rerouted.values[2])
        print(f"repaired route {source} -> {destination}: {hops} "
              f"(cost {rerouted.values[3]:g})")
    print(f"live link tuples at {source}: "
          f"{sorted(f.values[1] for f in engine.facts('link'))}")
    print(f"(the failed link {source} -> {destination} is gone; its local "
          "provenance was invalidated by the retraction cascade)\n")

    # --- the live network has forgotten; ask it anyway -------------------------------
    if rerouted is not None:
        answer = network.query(rerouted, at=source)
        print(f"in-network traceback of the repaired route:")
        print(f"  complete={answer.complete}, {answer.messages} messages, "
              f"{answer.bytes} bytes, {answer.latency * 1000:.1f} ms")
        offline = network.query(rerouted, at=source, mode="offline")
        print(f"offline-archive query of the same route: complete={offline.complete}, "
              f"{offline.bytes} bytes\n")

    # --- the forensic question: what did the dead link influence? -------------------
    investigator = ForensicInvestigator.from_network(network)
    impact = investigator.link_failure_impact(source, destination)
    print(f"offline-archive post-mortem of link {source} -> {destination}:")
    print(f"  archived base tuples : {len(impact.base_keys)}")
    print(f"  influenced tuples    : {len(impact.affected)}")
    for relation, count in sorted(impact.by_relation.items()):
        print(f"      {relation:<14s}{count:>5d}")
    footprint = investigator.storage_footprint()
    print(f"  archive footprint    : {sum(footprint.values())} bytes across "
          f"{len(footprint)} nodes")
    print("\nThe live network has forgotten the link; the archives have not —")
    print("exactly the split the paper's offline provenance story calls for.")


if __name__ == "__main__":
    main()
