"""Real-time diagnostics and accountability (Section 3).

Two scenarios in one script, both on the ``Network`` facade:

* **diagnostics** — a route starts flapping (a misbehaving node keeps
  re-advertising different costs); the sliding-window monitor raises an
  alarm, and the monitoring node attributes the flap by *querying the
  network for the route's provenance* — paying query messages — before
  purging everything derived from the culprit;
* **accountability** — a PlanetFlow-style audit of everything each
  principal sent during a Best-Path run, straight from the run's per-node
  statistics (query traffic billed like any other usage).

Run with::

    python examples/diagnostics_and_accountability.py
"""

from __future__ import annotations

from repro.api import Network
from repro.engine.tuples import Derivation, Fact
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import p_product, p_var
from repro.provenance.store import OnlineProvenanceStore
from repro.usecases.accountability import AccountabilityAuditor, UsagePolicy
from repro.usecases.diagnostics import FlapEvent, RouteFlapDetector


def diagnostics_scenario() -> None:
    print("== real-time diagnostics: route-flap detection ==")
    detector = RouteFlapDetector(window_seconds=30.0, threshold=3)

    # The route n1 -> n9 is re-advertised four times in 20 seconds by a
    # misbehaving neighbour n7; a healthy route changes once.
    events = [
        FlapEvent("n1", "n9", 2.0, new_cost=5.0),
        FlapEvent("n1", "n9", 8.0, new_cost=9.0),
        FlapEvent("n1", "n9", 15.0, new_cost=4.0),
        FlapEvent("n1", "n9", 21.0, new_cost=11.0),
        FlapEvent("n1", "n4", 10.0, new_cost=3.0),
    ]

    # Online provenance for the routes involved (who asserted them).
    provenance = {
        ("n1", "n9"): CondensedProvenance(
            expression=p_product(p_var("n7"), p_var("n9")).condense()
        ),
        ("n1", "n4"): CondensedProvenance.from_source("n4"),
    }

    # Online provenance store with a derivation chain rooted at the flapping route.
    store = OnlineProvenanceStore("n1")
    route = Fact(relation="bestPath", values=("n1", "n9", ("n1", "n7", "n9"), 9.0))
    downstream = Fact(relation="forwarding", values=("n1", "n9", "n7"))
    store.record(Derivation(fact=route, rule_label="p4", node="n1"))
    store.record(
        Derivation(fact=downstream, rule_label="f1", node="n1", antecedents=(route,))
    )

    report = detector.run(
        events,
        provenance_of=provenance,
        online_store=store,
        route_key_of={("n1", "n9"): route.key()},
        trusted=("n9",),
    )
    print(f"alarms raised for      : {report.alarms}")
    print(f"suspicious principals  : {report.suspicious_principals}")
    print(f"purged derived tuples  : {len(report.purged_tuples)}")
    for key in report.purged_tuples:
        print(f"   {key[0]}{key[1]}")
    print()


def in_network_attribution() -> None:
    print("== diagnostics, in-band: provenance fetched over the network ==")
    # A real run: the monitoring node queries the network for a route's
    # provenance instead of reading a local dictionary — attribution now has
    # a message cost, reported in the query category.
    network = Network.build(topology=8, provenance="condensed", seed=3)
    network.run()
    monitor = network.topology.nodes[0]
    route = max(
        network.node(monitor).facts("bestPath"), key=lambda f: len(f.values[2])
    )
    entry = (route.values[0], route.values[1])
    detector = RouteFlapDetector(window_seconds=30.0, threshold=2)
    for t in (1.0, 7.0, 13.0):
        detector.observe_route_change(entry[0], entry[1], t)
    flapping = detector.flapping_entries(now=13.0)
    suspects = detector.identify_suspects_over_network(
        network,
        flapping,
        route_key_of={entry: route.key()},
        at=monitor,
        trusted=(monitor,),
    )
    summary = network.stats.summary()
    print(f"flapping entries       : {flapping}")
    print(f"suspects (via queries) : {suspects}")
    print(f"attribution wire cost  : {summary['query_messages']:.0f} messages, "
          f"{summary['query_bytes']:.0f} bytes")
    print()


def accountability_scenario() -> None:
    print("== accountability: PlanetFlow-style audit of a Best-Path run ==")
    network = Network.build(topology=8, provenance="sendlog-prov", seed=3)
    network.run()
    # A couple of tracebacks, so the audit has query traffic to bill too.
    monitor = network.topology.nodes[0]
    for fact in network.node(monitor).facts("bestPath")[:2]:
        network.query(fact, at=monitor)

    auditor = AccountabilityAuditor.from_network(network)
    heaviest = auditor.top_talkers(3)
    print("top talkers (by bytes):")
    for record in heaviest:
        queries = record.relations.get("query", 0)
        note = f" ({queries} query messages)" if queries else ""
        print(f"   {record.principal}: {record.messages} messages, "
              f"{record.bytes_sent} bytes{note}")

    # Flag any node that sent more than twice the average.
    average = sum(r.messages for r in auditor.records()) / max(len(auditor.records()), 1)
    for record in auditor.records():
        auditor.set_policy(record.principal, UsagePolicy(max_messages=int(average * 2)))
    violations = auditor.violations()
    if violations:
        print("violations:")
        for violation in violations:
            print(f"   {violation.principal}: {violation.detail}")
    else:
        print(f"no node exceeded 2x the average of {average:.0f} messages")


def main() -> None:
    diagnostics_scenario()
    in_network_attribution()
    accountability_scenario()


if __name__ == "__main__":
    main()
