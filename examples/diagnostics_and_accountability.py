"""Real-time diagnostics and accountability (Section 3).

Two scenarios in one script:

* **diagnostics** — a route starts flapping (a misbehaving node keeps
  re-advertising different costs); the sliding-window monitor raises an
  alarm, the provenance of the flapping route points at the culprit, and all
  online state derived from it is purged;
* **accountability** — a PlanetFlow-style audit of everything each principal
  sent during a Best-Path run, with a per-principal usage policy.

Run with::

    python examples/diagnostics_and_accountability.py
"""

from __future__ import annotations

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.tuples import Derivation, Fact
from repro.net.message import Message
from repro.net.simulator import Simulator
from repro.net.topology import random_topology
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import p_product, p_var
from repro.provenance.store import OnlineProvenanceStore
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode
from repro.usecases.accountability import AccountabilityAuditor, UsagePolicy
from repro.usecases.diagnostics import FlapEvent, RouteFlapDetector


def diagnostics_scenario() -> None:
    print("== real-time diagnostics: route-flap detection ==")
    detector = RouteFlapDetector(window_seconds=30.0, threshold=3)

    # The route n1 -> n9 is re-advertised four times in 20 seconds by a
    # misbehaving neighbour n7; a healthy route changes once.
    events = [
        FlapEvent("n1", "n9", 2.0, new_cost=5.0),
        FlapEvent("n1", "n9", 8.0, new_cost=9.0),
        FlapEvent("n1", "n9", 15.0, new_cost=4.0),
        FlapEvent("n1", "n9", 21.0, new_cost=11.0),
        FlapEvent("n1", "n4", 10.0, new_cost=3.0),
    ]

    # Online provenance for the routes involved (who asserted them).
    provenance = {
        ("n1", "n9"): CondensedProvenance(
            expression=p_product(p_var("n7"), p_var("n9")).condense()
        ),
        ("n1", "n4"): CondensedProvenance.from_source("n4"),
    }

    # Online provenance store with a derivation chain rooted at the flapping route.
    store = OnlineProvenanceStore("n1")
    route = Fact(relation="bestPath", values=("n1", "n9", ("n1", "n7", "n9"), 9.0))
    downstream = Fact(relation="forwarding", values=("n1", "n9", "n7"))
    store.record(Derivation(fact=route, rule_label="p4", node="n1"))
    store.record(
        Derivation(fact=downstream, rule_label="f1", node="n1", antecedents=(route,))
    )

    report = detector.run(
        events,
        provenance_of=provenance,
        online_store=store,
        route_key_of={("n1", "n9"): route.key()},
        trusted=("n9",),
    )
    print(f"alarms raised for      : {report.alarms}")
    print(f"suspicious principals  : {report.suspicious_principals}")
    print(f"purged derived tuples  : {len(report.purged_tuples)}")
    for key in report.purged_tuples:
        print(f"   {key[0]}{key[1]}")
    print()


def accountability_scenario() -> None:
    print("== accountability: PlanetFlow-style audit of a Best-Path run ==")
    topology = random_topology(8, seed=3)
    config = EngineConfig(says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED)
    simulator = Simulator(topology, compile_best_path(), config)
    result = simulator.run()

    # Re-create the audit log from the per-node send counters: in a real
    # deployment the auditor would tap the message stream itself.
    auditor = AccountabilityAuditor()
    for address, engine in result.engines.items():
        node_stats = result.stats.node(address)
        # One representative message per node keeps the example output small;
        # byte totals come from the real counters.
        sample = Fact(relation="bestPath", values=(address, "*", (), 0.0), asserted_by=address)
        for _ in range(node_stats.messages_sent):
            auditor.observe(
                Message(source=address, destination="*", fact=sample, sent_at=0.0)
            )

    heaviest = auditor.top_talkers(3)
    print("top talkers (by messages):")
    for record in heaviest:
        print(f"   {record.principal}: {record.messages} messages")

    # Flag any node that sent more than twice the average.
    average = sum(r.messages for r in auditor.records()) / max(len(auditor.records()), 1)
    for record in auditor.records():
        auditor.set_policy(record.principal, UsagePolicy(max_messages=int(average * 2)))
    violations = auditor.violations()
    if violations:
        print("violations:")
        for violation in violations:
            print(f"   {violation.principal}: {violation.detail}")
    else:
        print(f"no node exceeded 2x the average of {average:.0f} messages")


def main() -> None:
    diagnostics_scenario()
    accountability_scenario()


if __name__ == "__main__":
    main()
