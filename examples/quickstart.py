"""Quickstart: run a secure, provenance-aware declarative network.

This example walks through the whole pipeline on a small network:

1. parse the Best-Path NDlog query and localize it for distributed execution;
2. build a random topology (the paper's workload: average out-degree 3);
3. run it in the SeNDlogProv configuration — every exchanged tuple is signed
   by its asserting principal and carries condensed provenance;
4. inspect the computed best paths and the provenance of one of them.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.simulator import Simulator
from repro.net.topology import random_topology
from repro.provenance.quantify import count_derivations, trust_level, vote_principals
from repro.queries.best_path import BEST_PATH_NDLOG, compile_best_path
from repro.security.says import SaysMode


def main() -> None:
    print("The Best-Path query (Section 6 of the paper):")
    print(BEST_PATH_NDLOG)

    # 1. Compile: parse -> localization rewrite -> delta-join plans.
    compiled = compile_best_path()
    print(f"compiled {len(compiled.plans)} rule plans")

    # 2. The evaluation workload: N nodes, average out-degree three.
    topology = random_topology(node_count=12, average_outdegree=3.0, seed=42)
    print(
        f"topology: {topology.node_count} nodes, {topology.link_count} links, "
        f"average out-degree {topology.average_outdegree():.1f}"
    )

    # 3. SeNDlogProv: authenticated communication plus condensed provenance.
    config = EngineConfig(
        says_mode=SaysMode.SIGNED,
        provenance_mode=ProvenanceMode.CONDENSED,
        keep_offline_provenance=True,
    )
    simulator = Simulator(topology, compiled, config)
    result = simulator.run()

    stats = result.stats
    print(
        f"\ndistributed fixpoint reached at t={stats.completion_time:.2f}s "
        f"(simulated); {stats.total_messages} messages, "
        f"{stats.total_bandwidth_mb():.3f} MB total bandwidth"
    )

    # 4. Inspect results and provenance at one node.
    source = topology.nodes[0]
    engine = result.engines[source]
    best_paths = engine.facts("bestPath")
    print(f"\nnode {source} computed {len(best_paths)} best paths; a few of them:")
    for fact in sorted(best_paths, key=lambda f: f.values)[:5]:
        annotation = engine.provenance_of(fact)
        print(f"  {fact}")
        print(f"    condensed provenance : {annotation}")
        print(f"    supporting principals: {sorted(annotation.sources())}")
        print(
            f"    derivations={count_derivations(annotation)} "
            f"votes={vote_principals(annotation)} "
            f"trust(level 1 everywhere)={trust_level(annotation, {}, default_level=1)}"
        )


if __name__ == "__main__":
    main()
