"""Quickstart: build, run and *query* a secure provenance-aware network.

The whole pipeline through the first-class API:

1. ``Network.build`` assembles topology + program + provenance preset
   (here ``"sendlog-prov"``: every exchanged tuple is signed by its
   asserting principal and carries condensed provenance);
2. ``network.run()`` drives the network to its distributed fixpoint and
   returns a unified ``RunResult``;
3. the computed best paths and their condensed provenance are inspected;
4. ``network.query(...)`` answers a traceback *in-network* — the pointer
   chase ships real messages whose bytes and latency appear in the
   statistics under the dedicated query category;
5. the sharded backend re-runs the same network and the stats match the
   serial run integer-for-integer;
6. the tiered provenance store re-runs it with a bounded hot tier: old
   derivations spill to an append-only per-node log, the resident gauge
   stays small, and offline forensics still answer — through spill reads.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Network
from repro.provenance.quantify import count_derivations, trust_level, vote_principals
from repro.queries.best_path import BEST_PATH_NDLOG


def main() -> None:
    print("The Best-Path query (Section 6 of the paper):")
    print(BEST_PATH_NDLOG)

    # 1. One call replaces topology/program/config/keystore hand-wiring.
    #    The program is statically analyzed on the way in (lint="error" is
    #    the default: unsafe rules, arity/type conflicts and unverifiable
    #    `says` imports raise LintError before anything runs; lint="warn"
    #    downgrades findings to warnings, lint="off" skips the analyzer —
    #    the same checks run standalone as `python -m repro.datalog.lint`).
    network = Network.build(
        topology=12,                      # the paper's workload: N nodes, out-degree 3
        program="best-path",
        provenance="sendlog-prov",        # NDLog / SeNDLog / SeNDLogProv presets
        seed=42,
        keep_offline_provenance=True,
    )
    topology = network.topology
    print(
        f"topology: {topology.node_count} nodes, {topology.link_count} links, "
        f"average out-degree {topology.average_outdegree():.1f}"
    )

    # 2. Run to the distributed fixpoint.
    result = network.run()
    print(
        f"\ndistributed fixpoint reached at t={result.completion_time_s:.2f}s "
        f"(simulated); {result.total_messages} messages, "
        f"{result.bandwidth_mb:.3f} MB total bandwidth"
    )

    # 3. Inspect results and provenance at one node.
    source = topology.nodes[0]
    engine = network.node(source)
    best_paths = engine.facts("bestPath")
    print(f"\nnode {source} computed {len(best_paths)} best paths; a few of them:")
    for fact in sorted(best_paths, key=lambda f: f.values)[:3]:
        annotation = engine.provenance_of(fact)
        print(f"  {fact}")
        print(f"    condensed provenance : {annotation}")
        print(f"    supporting principals: {sorted(annotation.sources())}")
        print(
            f"    derivations={count_derivations(annotation)} "
            f"votes={vote_principals(annotation)} "
            f"trust(level 1 everywhere)={trust_level(annotation, {}, default_level=1)}"
        )

    # 4. Ask the network itself where a route came from.  The traceback
    #    compiles into QueryRequest/QueryResponse events: every remote
    #    pointer dereference is a real message paying bytes and latency.
    target = max(best_paths, key=lambda f: len(f.values[2]))
    answer = network.query(target, at=source)
    print(f"\nin-network traceback of {target}:")
    print(f"  complete        : {answer.complete}")
    print(f"  nodes visited   : {', '.join(answer.nodes_visited)}")
    print(f"  remote lookups  : {answer.remote_lookups}")
    print(f"  wire cost       : {answer.messages} messages, {answer.bytes} bytes, "
          f"{answer.latency * 1000:.1f} ms simulated latency")
    summary = network.stats.summary()
    print(f"  ledger          : query_bytes={summary['query_bytes']:.0f} of "
          f"total_bytes={summary['total_bytes']:.0f} "
          "(maintenance vs query overhead, same currency)")

    # 5. Scale-out is one option away: the sharded backend partitions the
    #    topology into parallel per-shard kernels with deterministic
    #    synchronization.  Derived facts and every integer/byte statistic
    #    are identical to the serial run above — sharding only changes
    #    wall-clock time — so the contract can be *checked*, not trusted.
    #    shard_pipeline=True swaps the lockstep barrier for per-shard
    #    conservative horizons (multi-window leases, idle shards skipped)
    #    and the binary transport packs exchanges into compact frames; the
    #    coordination ledger in the stats shows what that saved.
    sharded = Network.build(
        topology=12,
        program="best-path",
        provenance="sendlog-prov",
        seed=42,
        keep_offline_provenance=True,
        backend="sharded",
        shards=3,
        shard_mode="inline",          # in-process shard kernels (demo-sized N)
        shard_pipeline=True,          # pipelined barriers + window coalescing
        transport="binary",           # compact deterministic frame codec
    )
    sharded_result = sharded.run()
    plan = sharded.simulator.plan
    print(
        f"\nsharded backend: {plan.shard_count} shards "
        f"{[len(group) for group in plan.shards]} nodes each, "
        f"{len(plan.cut_links)} cut links, "
        f"lookahead window {sharded.simulator.window * 1000:.1f} ms"
    )
    ledger = sharded.stats.summary()
    print(
        f"  coordination ledger: {ledger['coordination_rounds']:.0f} rounds, "
        f"{ledger['coordination_bytes']:.0f} frame bytes, "
        f"{ledger['windows_executed']:.0f} windows executed "
        f"({ledger['windows_coalesced']:.0f} coalesced into wider leases)"
    )
    # The serial stats above include the traceback's query traffic, so
    # compare on the maintenance side of the ledger (and the fixpoint).
    serial_stats, sharded_stats = network.stats, sharded.stats
    checks = {
        "maintenance_bytes": (
            serial_stats.maintenance_bytes(),
            sharded_stats.maintenance_bytes(),
        ),
        "maintenance_messages": (
            serial_stats.total_messages - serial_stats.total_query_messages(),
            sharded_stats.total_messages - sharded_stats.total_query_messages(),
        ),
        "security_bytes": (
            serial_stats.security_overhead_bytes(),
            sharded_stats.security_overhead_bytes(),
        ),
        "provenance_bytes": (
            serial_stats.provenance_overhead_bytes(),
            sharded_stats.provenance_overhead_bytes(),
        ),
        "facts_derived": (
            serial_stats.total_facts_derived(),
            sharded_stats.total_facts_derived(),
        ),
        "best_paths": (result.count("bestPath"), sharded_result.count("bestPath")),
    }
    assert all(left == right for left, right in checks.values()), checks
    print(f"  serial == sharded on {', '.join(checks)}")

    # 6. Memory-bounded provenance: the same network with the tiered
    #    offline store.  The hot tier caches a handful of entry groups;
    #    everything else lives in an append-only spill log and is read
    #    back only when a forensic query asks for it.
    import tempfile

    tiered = Network.build(
        topology=12,
        program="best-path",
        provenance="sendlog-prov",
        seed=42,
        keep_offline_provenance=True,
        provenance_store="tiered",
        hot_tier_entries=16,
        spill_dir=tempfile.mkdtemp(prefix="repro-quickstart-"),
    )
    tiered.run()
    tiered_summary = tiered.stats.summary()
    resident = tiered_summary["provenance_bytes_resident"]
    spilled = tiered_summary["provenance_bytes_spilled"]
    print(
        f"\ntiered provenance store (hot tier = 16 entries):"
        f"\n  resident bytes  : {resident:.0f}"
        f"\n  spilled bytes   : {spilled:.0f} "
        f"({spilled / max(resident, 1):.1f}x the resident footprint)"
    )
    offline = tiered.query(target, at=source, mode="offline")
    reads = tiered.stats.summary()["spill_reads"]
    print(
        f"  offline traceback of {target.relation}{target.values[:2]}: "
        f"complete={offline.complete}, answered with {reads:.0f} spill reads"
    )
    assert offline.complete and offline.graph.same_structure(answer.graph)


if __name__ == "__main__":
    main()
