"""Trust management over condensed provenance (Sections 3, 4.4 and 4.5).

Scenario: a node receives route updates from its neighbours, each carrying
its condensed provenance (the principals whose assertions it rests on).
Orchestra-style, the node decides which updates to accept:

* by *source set*   — accept only routes derivable entirely from trusted ASes;
* by *trust level*  — the paper's ``<a + a*b>`` example with security levels;
* by *vote*         — accept only updates asserted by at least K principals.

The last section runs the same policy against a live network built through
the ``Network`` facade: the deciding node fetches the update's provenance
with an authenticated in-network query — signed responses, verified at the
querier, with the wire cost on the books.

Run with::

    python examples/trust_management.py
"""

from __future__ import annotations

from repro.api import Network
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import p_product, p_sum, p_var
from repro.provenance.quantify import count_derivations, trust_level, vote_principals
from repro.security.principal import PrincipalRegistry
from repro.usecases.trust import TrustManager, TrustPolicy


def main() -> None:
    # --- the paper's running example -------------------------------------------
    # reachable(a, c) can be derived from a alone, or from a joined with b.
    raw = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
    condensed = CondensedProvenance(expression=raw.condense())
    print(f"raw provenance        : <{raw.to_string()}>")
    print(f"condensed provenance  : {condensed}   (a + a*b collapses to a)")

    registry = PrincipalRegistry()
    registry.register("a", security_level=2)
    registry.register("b", security_level=1)
    level = trust_level(raw, {"a": 2, "b": 1})
    print(f"trust level           : max(2, min(2, 1)) = {level}")
    print(f"number of derivations : {count_derivations(raw)}")
    print(f"asserting principals  : {vote_principals(raw)}")

    # --- policy 1: source-set trust ----------------------------------------------
    print("\n-- policy: only principal 'a' is trusted --")
    manager = TrustManager(TrustPolicy.trust_sources("a"), registry)
    decision = manager.evaluate(condensed)
    print(f"accepted={decision.accepted}; " + "; ".join(decision.reasons))

    print("\n-- policy: only principal 'b' is trusted --")
    manager = TrustManager(TrustPolicy.trust_sources("b"), registry)
    decision = manager.evaluate(condensed)
    print(f"accepted={decision.accepted}; " + "; ".join(decision.reasons))

    # --- policy 2: minimum security level ------------------------------------------
    print("\n-- policy: require trust level >= 2 --")
    manager = TrustManager(TrustPolicy.require_level(2), registry)
    decision = manager.evaluate(raw)
    print(f"accepted={decision.accepted}; trust level={decision.trust_level}")

    # --- policy 3: quantified voting --------------------------------------------------
    print("\n-- policy: require at least 3 asserting principals --")
    multi_asserted = CondensedProvenance(
        expression=p_sum(p_var("a"), p_var("b"), p_var("c")).condense()
    )
    manager = TrustManager(TrustPolicy.require_votes(3), registry)
    for name, annotation in (("a+b+c", multi_asserted), ("a only", condensed)):
        decision = manager.evaluate(annotation)
        print(f"update supported by {name:>6s}: accepted={decision.accepted} "
              f"(votes={decision.votes})")

    print(f"\nacceptance rate of the last manager: {manager.acceptance_rate():.0%}")

    # --- the same decision against a live network --------------------------------
    print("\n-- in-network: provenance fetched by authenticated query --")
    network = Network.build(topology=8, provenance="sendlog-prov", seed=1)
    network.run()
    decider = network.topology.nodes[0]
    update = max(
        network.node(decider).facts("bestPath"), key=lambda f: len(f.values[2])
    )
    manager = TrustManager(
        TrustPolicy.trust_sources(*network.topology.nodes), network.registry
    )
    decision, cost = manager.evaluate_over_network(
        network, update, at=decider, authenticated=True
    )
    print(f"update                : {update}")
    print(f"accepted              : {decision.accepted}")
    print(f"signed responses ok   : {cost.responses_verified} "
          f"(failures {cost.verification_failures})")
    print(f"query wire cost       : {cost.messages} messages, {cost.bytes} bytes, "
          f"{cost.latency * 1000:.1f} ms")


if __name__ == "__main__":
    main()
