"""Setuptools shim.

The environment ships an older setuptools without the ``bdist_wheel``
command, so editable installs fall back to the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
