"""The legacy entry points warn — and only the legacy entry points.

``repro.api.Network`` is the supported surface; ``Simulator(...)``,
``run_best_path``, ``run_configuration`` and ``ExperimentRow`` remain as
working shims that emit a ``DeprecationWarning`` pointing at ``repro.api``.
The supported paths (facade build/run, sweeps through ``run_network``,
scenario builders) must stay warning-clean — asserted here with warnings
escalated to errors, and enforced suite-wide by running tier-1 with
``-W error::DeprecationWarning`` (every other test exercises only supported
surfaces or wraps a shim in ``pytest.warns``).
"""

from __future__ import annotations

import warnings

import pytest

from repro.api.network import Network
from repro.engine.node_engine import EngineConfig
from repro.harness.runner import (
    ExperimentRow,
    run_best_path,
    run_configuration,
    run_network,
)
from repro.net.simulator import Simulator
from repro.net.topology import random_topology
from repro.queries.best_path import compile_best_path


class TestShimsWarn:
    def test_direct_simulator_construction_warns_and_works(self):
        topology = random_topology(6, seed=0)
        with pytest.warns(DeprecationWarning, match="repro.api.Network"):
            simulator = Simulator(topology, compile_best_path(), EngineConfig())
        result = simulator.run()
        assert result.converged
        assert result.all_facts("bestPath")

    def test_run_best_path_warns(self, compiled_best_path, small_topology):
        with pytest.warns(DeprecationWarning, match="run_network"):
            result = run_best_path(small_topology, "NDLog", compiled=compiled_best_path)
        assert result.converged

    def test_run_configuration_warns(self, compiled_best_path):
        with pytest.warns(DeprecationWarning, match="run_network"):
            row = run_configuration(
                "NDLog", node_count=6, seed=0, compiled=compiled_best_path
            )
        assert row.converged

    def test_experiment_row_warns(self, compiled_best_path):
        run = run_network("NDLog", 6, seed=0, compiled=compiled_best_path)
        with pytest.warns(DeprecationWarning, match="RunResult"):
            row = ExperimentRow.from_run(run)
        assert row.best_paths == run.count("bestPath")


class TestSupportedSurfaceIsClean:
    def test_facade_build_run_and_scenarios_raise_no_deprecations(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            network = Network.build(
                topology=6, program="best-path", provenance="ndlog", seed=0
            )
            run = network.run()
            assert run.converged

            run_network("NDLog", 6, seed=0)

            from repro.harness.scenarios import retraction_scenario, run_scenario

            scenario, scenario_network = retraction_scenario(node_count=4)
            assert run_scenario(scenario, scenario_network).converged

    def test_sharded_backend_raises_no_deprecations(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            network = Network.build(
                topology=6,
                program="best-path",
                provenance="ndlog",
                backend="sharded",
                shards=2,
                shard_mode="inline",
                seed=0,
            )
            assert network.run().converged
