"""Tests for derivation graphs, local provenance and distributed provenance."""

from __future__ import annotations

import pytest

from repro.engine.tuples import Derivation, Fact
from repro.provenance.distributed import DistributedProvenanceStore, traceback
from repro.provenance.graph import DerivationGraph, DerivationNode
from repro.provenance.local import LocalProvenanceStore


# The paper's Section 4 example network: links a->b, a->c, b->c, and the
# derivation of reachable(a, c) shown in Figure 1.
LINK_AB = Fact("link", ("a", "b"), asserted_by="a")
LINK_AC = Fact("link", ("a", "c"), asserted_by="a")
LINK_BC = Fact("link", ("b", "c"), asserted_by="b")
REACH_BC = Fact("reachable", ("b", "c"), asserted_by="b")
REACH_AC = Fact("reachable", ("a", "c"), asserted_by="a")


def figure1_graph() -> DerivationGraph:
    graph = DerivationGraph()
    # r1: reachable(a,c) :- link(a,c)
    graph.add_derivation(REACH_AC, "r1", [LINK_AC], location="a")
    # r1 at b: reachable(b,c) :- link(b,c)
    graph.add_derivation(REACH_BC, "r1", [LINK_BC], location="b")
    # r2: reachable(a,c) :- link(a,b), reachable(b,c)
    graph.add_derivation(REACH_AC, "r2", [LINK_AB, REACH_BC], location="a")
    return graph


class TestDerivationGraph:
    def test_base_tuples_are_figure1_leaves(self):
        graph = figure1_graph()
        leaves = graph.base_tuples(REACH_AC.key())
        assert leaves == frozenset({LINK_AC.key(), LINK_AB.key(), LINK_BC.key()})

    def test_producers_lists_alternative_derivations(self):
        graph = figure1_graph()
        assert len(graph.producers(REACH_AC.key())) == 2
        assert {op.rule_label for op in graph.producers(REACH_AC.key())} == {"r1", "r2"}

    def test_is_base(self):
        graph = figure1_graph()
        assert graph.is_base(LINK_AB.key())
        assert not graph.is_base(REACH_AC.key())

    def test_to_expression_over_principals(self):
        # Figure 2's condensed provenance: <a + a*b> over asserting principals.
        graph = figure1_graph()
        expression = graph.to_expression(REACH_AC.key())
        assert expression.condense().to_string() == "a"
        assert expression.variables() == frozenset({"a", "b"})

    def test_to_condensed_matches_paper(self):
        graph = figure1_graph()
        assert str(graph.to_condensed(REACH_AC.key())) == "<a>"

    def test_to_expression_over_base_tuples(self):
        graph = figure1_graph()
        expression = graph.to_expression(
            REACH_AC.key(), variable_of=lambda node: f"{node.relation}{node.values}"
        )
        assert len(expression.variables()) == 3

    def test_subgraph_is_self_contained(self):
        graph = figure1_graph()
        sub = graph.subgraph(REACH_BC.key())
        assert sub.tuple_node(REACH_BC.key()) is not None
        assert sub.tuple_node(LINK_BC.key()) is not None
        assert sub.tuple_node(LINK_AB.key()) is None

    def test_merge_deduplicates_operators(self):
        graph = figure1_graph()
        other = figure1_graph()
        before = len(graph.operators())
        graph.merge(other)
        assert len(graph.operators()) == before

    def test_render_mentions_rules_and_tuples(self):
        rendered = figure1_graph().render(REACH_AC.key())
        assert "reachable(a, c)" in rendered
        assert "[r2 @a]" in rendered
        assert "link(a, b)" in rendered

    def test_cycles_do_not_loop_forever(self):
        graph = DerivationGraph()
        x = Fact("p", ("x",))
        y = Fact("p", ("y",))
        graph.add_derivation(x, "r", [y])
        graph.add_derivation(y, "r", [x])
        expression = graph.to_expression(x.key())
        assert expression is not None
        assert "cycle" in graph.render(x.key())

    def test_len_counts_nodes_and_operators(self):
        assert len(figure1_graph()) == 5 + 3


class TestLocalProvenance:
    def test_record_base_and_annotation(self):
        store = LocalProvenanceStore("a")
        store.record_base(LINK_AB, source="a")
        assert str(store.annotation(LINK_AB.key())) == "<a>"

    def test_record_derivation_joins_annotations(self):
        store = LocalProvenanceStore("a")
        store.record_base(LINK_AB, source="a")
        store.record_remote_condensed(REACH_BC, __import__("repro.provenance.condensed", fromlist=["CondensedProvenance"]).CondensedProvenance.from_source("b"))
        annotation = store.record_derivation(
            Derivation(fact=REACH_AC, rule_label="r2", node="a", antecedents=(LINK_AB, REACH_BC))
        )
        assert annotation.sources() == frozenset({"a", "b"})

    def test_alternative_derivations_merge(self):
        store = LocalProvenanceStore("a")
        store.record_base(LINK_AB, source="a")
        store.record_base(LINK_AC, source="a")
        store.record_remote_condensed(
            REACH_BC,
            __import__("repro.provenance.condensed", fromlist=["CondensedProvenance"]).CondensedProvenance.from_source("b"),
        )
        store.record_derivation(
            Derivation(fact=REACH_AC, rule_label="r1", node="a", antecedents=(LINK_AC,))
        )
        store.record_derivation(
            Derivation(fact=REACH_AC, rule_label="r2", node="a", antecedents=(LINK_AB, REACH_BC))
        )
        # <a + a*b> condenses to <a>.
        assert str(store.annotation(REACH_AC.key())) == "<a>"

    def test_piggyback_contains_subgraph_and_annotation(self):
        store = LocalProvenanceStore("a")
        store.record_base(LINK_AC, source="a")
        store.record_derivation(
            Derivation(fact=REACH_AC, rule_label="r1", node="a", antecedents=(LINK_AC,))
        )
        piggyback = store.piggyback_for(REACH_AC)
        assert piggyback.root == REACH_AC.key()
        assert piggyback.condensed.sources() == frozenset({"a"})
        assert piggyback.serialized_size(condensed_only=True) < piggyback.serialized_size(
            condensed_only=False
        )

    def test_record_remote_merges_piggyback(self):
        sender = LocalProvenanceStore("b")
        sender.record_base(LINK_BC, source="b")
        sender.record_derivation(
            Derivation(fact=REACH_BC, rule_label="r1", node="b", antecedents=(LINK_BC,))
        )
        receiver = LocalProvenanceStore("a")
        receiver.record_remote(REACH_BC, sender.piggyback_for(REACH_BC))
        assert receiver.annotation(REACH_BC.key()).sources() == frozenset({"b"})
        assert receiver.graph.tuple_node(LINK_BC.key()) is not None

    def test_unknown_fact_annotation_defaults_to_identity(self):
        store = LocalProvenanceStore("a")
        annotation = store.annotation(("mystery", ("x",)))
        assert annotation.sources() == frozenset({"mystery(x)"})


class TestDistributedProvenance:
    def build_stores(self):
        """Node b derives reachable(b,c); node a derives reachable(a,c) from it."""
        store_a = DistributedProvenanceStore("a")
        store_b = DistributedProvenanceStore("b")
        store_b.record_base(LINK_BC)
        store_b.record_derivation(
            Derivation(fact=REACH_BC, rule_label="r1", node="b", antecedents=(LINK_BC,))
        )
        store_a.record_base(LINK_AB)
        store_a.record_remote(REACH_BC, origin="b")
        store_a.record_derivation(
            Derivation(fact=REACH_AC, rule_label="r2", node="a", antecedents=(LINK_AB, REACH_BC))
        )
        return {"a": store_a, "b": store_b}

    def test_pointers_recorded(self):
        stores = self.build_stores()
        pointers = stores["a"].pointers(REACH_AC.key())
        assert len(pointers) == 1
        inputs = dict(pointers[0].inputs)
        assert inputs[REACH_BC.key()] == "b"
        assert inputs[LINK_AB.key()] is None

    def test_traceback_reconstructs_full_derivation(self):
        stores = self.build_stores()
        result = traceback(REACH_AC.key(), "a", stores.get)
        assert result.complete
        leaves = result.graph.base_tuples(REACH_AC.key())
        assert leaves == frozenset({LINK_AB.key(), LINK_BC.key()})

    def test_traceback_counts_remote_lookups(self):
        stores = self.build_stores()
        result = traceback(REACH_AC.key(), "a", stores.get)
        assert result.remote_lookups == 1
        assert set(result.nodes_visited) == {"a", "b"}

    def test_traceback_reports_missing_stores(self):
        stores = self.build_stores()
        del stores["b"]
        result = traceback(REACH_AC.key(), "a", stores.get)
        assert not result.complete
        assert REACH_BC.key() in result.missing

    def test_traceback_of_base_fact_is_trivial(self):
        stores = self.build_stores()
        result = traceback(LINK_AB.key(), "a", stores.get)
        assert result.complete
        assert result.remote_lookups == 0

    def test_storage_overhead_counts_entries(self):
        stores = self.build_stores()
        assert stores["a"].storage_overhead() == 2  # one pointer + one base
        assert stores["b"].storage_overhead() == 2

    def test_traceback_matches_local_provenance_expression(self):
        """Distributed reconstruction and local provenance agree (Section 4.1)."""
        stores = self.build_stores()
        distributed_graph = traceback(REACH_AC.key(), "a", stores.get).graph

        local = LocalProvenanceStore("a")
        local.record_base(LINK_AB, source="a")
        from repro.provenance.condensed import CondensedProvenance

        local.record_remote_condensed(REACH_BC, CondensedProvenance.from_source("b"))
        local.record_derivation(
            Derivation(fact=REACH_AC, rule_label="r2", node="a", antecedents=(LINK_AB, REACH_BC))
        )
        naming = lambda node: f"{node.relation}{node.values}"
        reconstructed = distributed_graph.to_expression(REACH_AC.key(), naming).condense()
        assert reconstructed.variables() == {
            f"{LINK_AB.relation}{LINK_AB.values}",
            f"{LINK_BC.relation}{LINK_BC.values}",
        }
