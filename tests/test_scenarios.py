"""The dynamic-network scenario subsystem.

Each built-in script must run deterministically under the event scheduler,
converge in every phase, and show the dynamics it claims: rerouting after a
link failure, healing and recovery around node churn, and provenance-
invalidating retraction splitting reachability.
"""

from __future__ import annotations

import pytest

from repro.harness.scenarios import (
    DEFAULT_SCENARIO_TTL,
    SCENARIOS,
    Phase,
    RefreshSoftState,
    churn_scenario,
    link_failure_scenario,
    main,
    render_phase_table,
    retraction_scenario,
    run_scenario,
)


def best_path_costs(simulator):
    costs = {}
    for engine in simulator.engines.values():
        for fact in engine.facts("bestPath"):
            costs[(fact.values[0], fact.values[1])] = fact.values[3]
    return costs


class TestLinkFailureScenario:
    @pytest.fixture(scope="class")
    def report(self):
        scenario, simulator = link_failure_scenario(node_count=10, seed=3)
        return run_scenario(scenario, simulator), simulator

    def test_converges_in_every_phase(self, report):
        result, _ = report
        assert result.converged
        assert [row.phase for row in result.rows] == [
            "converge",
            "fail",
            "reroute",
        ]

    def test_traffic_reroutes_around_the_failed_link(self, report):
        result, simulator = report
        source, destination = result.scenario.details["failed_link"]
        # The failed link was redundant, so the pair stays connected ...
        rerouted = best_path_costs(simulator)
        assert (source, destination) in rerouted
        # ... but the direct one-hop route is gone: the repaired best path
        # is a detour, strictly more expensive than the link itself.
        failed_cost = next(
            link.cost
            for link in simulator.topology.links
            if (link.source, link.destination) == (source, destination)
        )
        assert rerouted[(source, destination)] > failed_cost

    def test_every_pair_remains_routable(self, report):
        result, _ = report
        first, last = result.rows[0], result.rows[-1]
        assert last.probe_facts == first.probe_facts > 0

    def test_failure_phase_retracts_the_link_and_its_dependents(self, report):
        result, simulator = report
        fail_row = result.row("fail")
        assert fail_row.facts_retracted > 0
        # The refresh expands at fire time, after the LinkDown: the dead
        # link's tuple must NOT have been re-asserted at the source.
        source, destination = result.scenario.details["failed_link"]
        assert not any(
            f.values[0] == source and f.values[1] == destination
            for f in simulator.engines[source].facts("link")
        )

    def test_deterministic_across_runs(self):
        def rows():
            scenario, simulator = link_failure_scenario(node_count=10, seed=3)
            return [
                row.as_dict() for row in run_scenario(scenario, simulator).rows
            ]

        assert rows() == rows()


class TestChurnScenario:
    @pytest.fixture(scope="class")
    def report(self):
        scenario, simulator = churn_scenario(node_count=8, seed=0)
        return run_scenario(scenario, simulator), simulator

    def test_converges_in_every_phase(self, report):
        result, _ = report
        assert result.converged

    def test_crash_loses_the_victims_state(self, report):
        result, simulator = report
        victim = result.scenario.details["crashed_node"]
        converge, crash = result.row("converge"), result.row("crash")
        assert crash.probe_facts < converge.probe_facts

    def test_soft_state_repair_restores_reachability(self, report):
        result, _ = report
        converge, recover = result.row("converge"), result.row("recover")
        assert recover.probe_facts == converge.probe_facts

    def test_deterministic_across_runs(self):
        def rows():
            scenario, simulator = churn_scenario(node_count=8, seed=0)
            return [
                row.as_dict() for row in run_scenario(scenario, simulator).rows
            ]

        assert rows() == rows()


class TestRetractionScenario:
    @pytest.fixture(scope="class")
    def report(self):
        scenario, simulator = retraction_scenario(node_count=8)
        return run_scenario(scenario, simulator), simulator

    def test_converges_in_every_phase(self, report):
        result, _ = report
        assert result.converged

    def test_bridge_retraction_splits_reachability(self, report):
        result, _ = report
        converge = result.row("converge")
        retract, refresh = result.row("retract"), result.row("refresh")
        # An 8-node bidirectional line has every pair (and, via back-and-
        # forth cycles, every self-pair) reachable: 64 facts.  Split into
        # two 4-node halves that is 2 * 16 — and the split is visible in
        # the retract phase itself: anti-deltas chase the remote copies,
        # no phase waits out the TTL.
        assert converge.probe_facts == 64
        assert retract.probe_facts == 32
        assert refresh.probe_facts == 32

    def test_one_fixpoint_repair_beats_ttl_decay(self, report):
        result, _ = report
        retract = result.row("retract")
        assert retract.anti_delta_messages > 0
        # The retraction repairs in wire time, not TTL time: the whole
        # scenario (converge + retract + refresh) finishes well before a
        # single soft-state lifetime would have elapsed.
        assert retract.completion_time - retract.start_time < 1.0
        assert result.rows[-1].completion_time < DEFAULT_SCENARIO_TTL

    def test_retraction_invalidates_provenance_at_the_retractors(self, report):
        result, simulator = report
        for address, fact in result.scenario.details["retracted"]:
            store = simulator.engines[address].local_provenance
            assert fact.key() not in store.keys()
            assert not simulator.engines[address].distributed_provenance.knows(
                fact.key()
            )

    def test_retraction_phase_reports_the_cascade(self, report):
        result, _ = report
        retract_row = result.row("retract")
        assert retract_row.facts_retracted >= 2

    def test_deterministic_across_runs(self):
        def rows():
            scenario, simulator = retraction_scenario(node_count=8)
            return [
                row.as_dict() for row in run_scenario(scenario, simulator).rows
            ]

        assert rows() == rows()


class TestScenarioMachinery:
    def test_registry_lists_the_three_scripts(self):
        assert set(SCENARIOS) == {"link-failure", "churn", "retraction"}

    def test_refresh_skips_down_nodes(self):
        scenario, simulator = churn_scenario(node_count=6, seed=0)
        run_scenario(scenario, simulator)
        victim = scenario.details["crashed_node"]
        # After the full scenario the victim recovered; crash it again and
        # check a refresh round leaves it silent and empty.
        from repro.net.events import NodeCrash, SoftStateRefresh

        simulator.schedule(NodeCrash(time=1e6, address=victim))
        simulator.schedule(SoftStateRefresh(time=1e6 + 1))
        assert simulator.run_until_idle()
        assert simulator.engines[victim].facts("link") == ()
        assert simulator.engines[victim].facts("reachable") == ()

    def test_same_instant_failure_is_visible_to_the_refresh(self):
        # RefreshSoftState expands when the event fires, so a FailLink
        # scheduled at the same instant (earlier sequence) already holds.
        scenario, simulator = link_failure_scenario(node_count=10, seed=3)
        source, destination = scenario.details["failed_link"]
        run_scenario(scenario, simulator)
        remembered = simulator.live_base_facts(source)
        assert not any(
            f.values[0] == source and f.values[1] == destination
            for f in remembered
        )

    def test_phase_gap_advances_simulated_time(self):
        scenario, simulator = churn_scenario(node_count=6, seed=0)
        report = run_scenario(scenario, simulator)
        heal = report.row("heal")
        assert heal.start_time >= DEFAULT_SCENARIO_TTL

    def test_render_phase_table_is_aligned(self):
        scenario, simulator = retraction_scenario(node_count=6)
        report = run_scenario(scenario, simulator)
        rendered = report.render()
        lines = rendered.splitlines()
        assert lines[0] == scenario.description
        assert "phase" in lines[1]
        assert len(lines) == 2 + len(report.rows)
        assert len({len(line) for line in lines[2:]}) == 1  # aligned rows

    def test_cli_runs_all_scenarios(self, capsys):
        assert main(["all", "--nodes", "6"]) == 0
        out = capsys.readouterr().out
        for name in ("Best-Path", "Reachability"):
            assert name in out

    def test_probe_series_matches_rows(self):
        scenario, simulator = retraction_scenario(node_count=6)
        report = run_scenario(scenario, simulator)
        assert report.probe_series() == [
            (row.phase, row.probe_facts) for row in report.rows
        ]
