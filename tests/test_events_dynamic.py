"""Typed simulation events: scheduler ordering and dynamic-network semantics.

Covers the EventScheduler's deterministic (time, priority, sequence) order,
link failure/recovery, node crash/recovery, base-fact injection/retraction
through the event loop, the retraction cascade with provenance invalidation,
aggregate-group repair after expiry, and the end-of-run residual soft-state
sweep.
"""

from __future__ import annotations

import pytest

from repro.datalog import localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.node_engine import EngineConfig, NodeEngine, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.events import (
    EventScheduler,
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
)
from repro.net.message import Message
from repro.net.kernel import SimulationKernel
from repro.net.topology import line_topology, random_topology, ring_topology
from repro.queries.best_path import compile_best_path
from repro.queries.reachable import REACHABLE_LOCALIZED


@pytest.fixture(scope="module")
def compiled_reachable():
    return compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


def reachable_base(topology):
    return {
        node: [
            Fact("link", (link.source, link.destination))
            for link in topology.outgoing(node)
        ]
        for node in topology.nodes
    }


def delivery(at, sequence=0):
    return MessageDelivery(
        time=at,
        message=Message(
            source="a", destination="b", fact=Fact("r", (at,)), sequence=sequence
        ),
    )


class TestEventScheduler:
    def test_pops_in_time_order(self):
        scheduler = EventScheduler()
        scheduler.schedule(delivery(3.0))
        scheduler.schedule(delivery(1.0))
        scheduler.schedule(delivery(2.0))
        assert [scheduler.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_control_events_fire_before_deliveries_at_equal_time(self):
        scheduler = EventScheduler()
        scheduler.schedule(delivery(1.0))
        scheduler.schedule(LinkDown(time=1.0, source="a", destination="b"))
        first, second = scheduler.pop(), scheduler.pop()
        assert isinstance(first, LinkDown)
        assert isinstance(second, MessageDelivery)

    def test_equal_events_fire_in_scheduling_order(self):
        scheduler = EventScheduler()
        events = [NodeCrash(time=2.0, address=f"n{i}") for i in range(5)]
        for event in events:
            scheduler.schedule(event)
        assert [scheduler.pop() for _ in range(5)] == events

    def test_peek_time_and_len(self):
        scheduler = EventScheduler()
        assert scheduler.peek_time() is None
        assert not scheduler
        scheduler.schedule(delivery(4.0))
        scheduler.schedule(delivery(2.0))
        assert scheduler.peek_time() == 2.0
        assert len(scheduler) == 2

    def test_pending_is_nondestructive_and_ordered(self):
        scheduler = EventScheduler()
        scheduler.schedule(delivery(2.0))
        scheduler.schedule(delivery(1.0))
        pending = scheduler.pending()
        assert [event.time for event in pending] == [1.0, 2.0]
        assert len(scheduler) == 2


class TestLinkDynamics:
    def test_messages_shipped_on_a_down_link_are_lost(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.schedule(
            LinkDown(time=0.0, source="n0", destination="n1", retract=False)
        )
        result = simulator.run(reachable_base(topology))
        assert result.converged
        assert result.stats.messages_lost > 0
        # n2 never hears n0's advertisements through the dead link, so the
        # pair (n1, n0)/(n2, n0) reachability derived *through* n0->n1 differs
        # from the healthy run.
        healthy = SimulationKernel(topology, compiled_reachable, EngineConfig()).run(
            reachable_base(topology)
        )
        assert len(result.all_facts("reachable")) < len(
            healthy.all_facts("reachable")
        )

    def test_link_down_retracts_the_source_base_tuple(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        result = simulator.run(reachable_base(topology))
        before = simulator.engines["n0"].facts("link")
        assert any(f.values == ("n0", "n1") for f in before)
        simulator.schedule(LinkDown(time=1.0, source="n0", destination="n1"))
        assert simulator.run_until_idle()
        after = simulator.engines["n0"].facts("link")
        assert not any(f.values == ("n0", "n1") for f in after)
        assert simulator.stats.total_facts_retracted() >= 1

    def test_link_up_reinjects_the_retracted_tuples(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.run(reachable_base(topology))
        simulator.schedule(LinkDown(time=1.0, source="n0", destination="n1"))
        simulator.schedule(LinkUp(time=2.0, source="n0", destination="n1"))
        assert simulator.run_until_idle()
        assert simulator.link_is_up("n0", "n1")
        restored = simulator.engines["n0"].facts("link")
        assert any(f.values == ("n0", "n1") for f in restored)

    def test_recovered_link_does_not_inherit_stale_busy_window(
        self, compiled_reachable
    ):
        # Regression: transmissions serialized behind a failure reserved the
        # wire far into the future; a recovered link must start fresh, not
        # queue new traffic behind sends that never happened.
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.run(reachable_base(topology))
        simulator.schedule(LinkDown(time=1.0, source="n0", destination="n1"))
        assert simulator.run_until_idle()
        # Traffic shipped while the link is down still reserves the wire
        # (the sender cannot tell); model a long queue of such sends.
        simulator._link_busy_until[("n0", "n1")] = 1.0e9
        simulator.schedule(LinkUp(time=2.0, source="n0", destination="n1"))
        assert simulator.run_until_idle()
        result = simulator.finish()
        # The re-injected link tuple's advertisements crossed the recovered
        # wire immediately: nothing waited out the phantom busy window.
        assert result.stats.completion_time < 1.0e3
        assert simulator._link_busy_until.get(("n0", "n1"), 0.0) < 1.0e3
        assert any(
            f.values == ("n0", "n1")
            for f in simulator.engines["n0"].facts("link")
        )

    def test_link_up_during_a_crash_is_restored_on_recovery(
        self, compiled_reachable
    ):
        # LinkUp while the source is down cannot inject, but the restored
        # tuples are remembered — recovery must bring the link back.
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.run(reachable_base(topology))
        simulator.schedule(LinkDown(time=1.0, source="n0", destination="n1"))
        simulator.schedule(NodeCrash(time=2.0, address="n0"))
        simulator.schedule(LinkUp(time=3.0, source="n0", destination="n1"))
        simulator.schedule(NodeRecover(time=4.0, address="n0"))
        assert simulator.run_until_idle()
        restored = simulator.engines["n0"].facts("link")
        assert any(f.values == ("n0", "n1") for f in restored)

    def test_repeated_link_down_keeps_the_remembered_tuples(
        self, compiled_reachable
    ):
        # A second LinkDown for an already-retracted link must not clobber
        # the remembered tuples with nothing — a later bare LinkUp still
        # restores the link.
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.run(reachable_base(topology))
        simulator.schedule(LinkDown(time=1.0, source="n0", destination="n1"))
        simulator.schedule(LinkDown(time=2.0, source="n0", destination="n1"))
        simulator.schedule(LinkUp(time=3.0, source="n0", destination="n1"))
        assert simulator.run_until_idle()
        restored = simulator.engines["n0"].facts("link")
        assert any(f.values == ("n0", "n1") for f in restored)


class TestNodeChurn:
    def test_crash_clears_soft_state_and_drops_traffic(self, compiled_reachable):
        topology = ring_topology(4)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        base = reachable_base(topology)
        # Hold one of n0's links back so it can be injected fresh post-crash.
        held_back = Fact("link", ("n0", "n1"))
        base["n0"] = [f for f in base["n0"] if f.values != held_back.values]
        simulator.run(base)
        assert simulator.engines["n1"].facts("reachable")
        simulator.schedule(NodeCrash(time=5.0, address="n1"))
        simulator.schedule(
            FactInjection(time=6.0, address="n0", facts=(held_back,))
        )
        assert simulator.run_until_idle()
        assert not simulator.node_is_up("n1")
        assert simulator.engines["n1"].facts("reachable") == ()
        # The fresh link advertises to the crashed node: nobody is listening.
        assert simulator.stats.messages_lost > 0

    def test_injections_at_a_crashed_node_are_ignored(self, compiled_reachable):
        topology = ring_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.schedule(NodeCrash(time=0.0, address="n0"))
        simulator.schedule(
            FactInjection(
                time=1.0, address="n0", facts=(Fact("link", ("n0", "n1")),)
            )
        )
        assert simulator.run_until_idle()
        assert simulator.engines["n0"].facts("link") == ()

    def test_recover_reinjects_remembered_base_facts(self, compiled_reachable):
        topology = ring_topology(4)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        simulator.run(reachable_base(topology))
        simulator.schedule(NodeCrash(time=5.0, address="n1"))
        simulator.schedule(NodeRecover(time=6.0, address="n1"))
        assert simulator.run_until_idle()
        assert simulator.node_is_up("n1")
        links = simulator.engines["n1"].facts("link")
        assert any(f.values == ("n1", "n2") for f in links)

    def test_offline_archive_survives_a_crash(self):
        topology = line_topology(3)
        config = EngineConfig(
            provenance_mode=ProvenanceMode.CONDENSED, keep_offline_provenance=True
        )
        simulator = SimulationKernel(topology, compile_best_path(), config)
        simulator.run()
        engine = simulator.engines["n1"]
        archived = len(engine.offline_provenance)
        assert archived > 0
        simulator.schedule(NodeCrash(time=10.0, address="n1"))
        assert simulator.run_until_idle()
        assert len(engine.offline_provenance) == archived
        assert len(engine.local_provenance.keys()) == 0


class TestRetraction:
    def _engine(self, compiled, **config_kwargs):
        config_kwargs.setdefault("track_dependencies", True)
        return NodeEngine("a", compiled, EngineConfig(**config_kwargs))

    def test_cascade_deletes_local_dependents(self, compiled_reachable):
        engine = self._engine(compiled_reachable)
        engine.insert_base(Fact("link", ("a", "b")), now=0.0)
        assert any(
            f.values == ("a", "b") for f in engine.facts("reachable")
        )
        result = engine.retract_base(Fact("link", ("a", "b")), now=1.0)
        assert result.report.facts_retracted == 2  # the link + reachable(a,b)
        assert not any(
            f.values == ("a", "b") for f in engine.facts("reachable")
        )

    def test_retraction_without_tracking_deletes_only_the_base(
        self, compiled_reachable
    ):
        engine = self._engine(compiled_reachable, track_dependencies=False)
        engine.insert_base(Fact("link", ("a", "b")), now=0.0)
        result = engine.retract_base(Fact("link", ("a", "b")), now=1.0)
        assert result.report.facts_retracted == 1
        assert any(f.values == ("a", "b") for f in engine.facts("reachable"))

    def test_retracting_an_absent_fact_is_a_noop(self, compiled_reachable):
        engine = self._engine(compiled_reachable)
        result = engine.retract_base(Fact("link", ("a", "zz")), now=0.0)
        assert result.report.facts_retracted == 0

    def test_provenance_is_invalidated(self, compiled_reachable):
        engine = self._engine(
            compiled_reachable, provenance_mode=ProvenanceMode.CONDENSED
        )
        engine.insert_base(Fact("link", ("a", "b")), now=0.0)
        reachable = next(
            f for f in engine.facts("reachable") if f.values == ("a", "b")
        )
        assert reachable.key() in engine.local_provenance.keys()
        engine.retract_base(Fact("link", ("a", "b")), now=1.0)
        assert reachable.key() not in engine.local_provenance.keys()
        assert Fact("link", ("a", "b")).key() not in engine.local_provenance.keys()
        assert not engine.distributed_provenance.knows(reachable.key())

    def test_remote_destined_provenance_is_invalidated_too(
        self, compiled_reachable
    ):
        # l2 derives linkd(@b, a) at a and ships it — never stored locally,
        # but a *recorded its provenance*.  Retracting the supporting link
        # must stop a's stores from vouching for the shipped tuple as well.
        engine = self._engine(
            compiled_reachable, provenance_mode=ProvenanceMode.CONDENSED
        )
        engine.insert_base(Fact("link", ("a", "b")), now=0.0)
        shipped_key = ("linkd", ("b", "a"))
        assert shipped_key in engine.local_provenance.keys()
        engine.retract_base(Fact("link", ("a", "b")), now=1.0)
        assert shipped_key not in engine.local_provenance.keys()
        assert not engine.distributed_provenance.knows(shipped_key)

    def test_online_store_stops_vouching_too(self, compiled_reachable):
        engine = self._engine(
            compiled_reachable,
            provenance_mode=ProvenanceMode.CONDENSED,
            keep_online_provenance=True,
        )
        engine.insert_base(Fact("link", ("a", "b")), now=0.0)
        reachable = next(
            f for f in engine.facts("reachable") if f.values == ("a", "b")
        )
        assert reachable.key() in engine.online_provenance
        engine.retract_base(Fact("link", ("a", "b")), now=1.0)
        assert reachable.key() not in engine.online_provenance

    def test_retracting_an_already_expired_tuple_counts_no_work(
        self, compiled_reachable
    ):
        engine = self._engine(compiled_reachable)
        engine.insert_base(Fact("link", ("a", "b"), ttl=5.0), now=0.0)
        # Long after the TTL elapsed the tuple ceased to exist on its own:
        # retraction must not count (or charge for) deleting it, but the
        # cascade still removes its live (hard-state) dependent.
        result = engine.retract_base(Fact("link", ("a", "b")), now=100.0)
        assert result.report.facts_retracted == 1
        assert not any(f.values == ("a", "b") for f in engine.facts("link"))
        assert not any(
            f.values == ("a", "b") for f in engine.facts("reachable")
        )

    def test_identical_rederivation_merges_back_after_invalidation(
        self, compiled_reachable
    ):
        # Invalidation tombstones the producing operators; a later identical
        # re-derivation must re-enter the graph instead of being suppressed
        # by the merge dedup against the withdrawn derivation.
        engine = self._engine(
            compiled_reachable, provenance_mode=ProvenanceMode.FULL_LOCAL
        )
        engine.insert_base(Fact("link", ("a", "b")), now=0.0)
        key = ("reachable", ("a", "b"))
        assert engine.local_provenance.graph.producers(key)
        engine.retract_base(Fact("link", ("a", "b")), now=1.0)
        assert not engine.local_provenance.graph.producers(key)
        engine.insert_base(Fact("link", ("a", "b")), now=2.0)
        assert engine.local_provenance.graph.producers(key)
        assert not engine.local_provenance.graph.is_base(key)

    def test_aggregate_group_is_forgotten_on_retraction(self):
        compiled = compile_best_path()
        engine = NodeEngine(
            "a", compiled, EngineConfig(track_dependencies=True)
        )
        engine.insert_base(Fact("link", ("a", "a2", 5.0)), now=0.0)
        [cost] = [f for f in engine.facts("bestPathCost")]
        assert cost.values[2] == 5.0
        engine.retract_base(Fact("link", ("a", "a2", 5.0)), now=1.0)
        assert engine.facts("bestPathCost") == ()
        # A worse path must be able to re-establish the group.
        engine.insert_base(Fact("link", ("a", "a2", 9.0)), now=2.0)
        [cost] = [f for f in engine.facts("bestPathCost")]
        assert cost.values[2] == 9.0

    def test_retraction_event_flows_through_the_simulator(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(
            topology,
            compiled_reachable,
            EngineConfig(track_dependencies=True),
        )
        simulator.run(reachable_base(topology))
        simulator.schedule(
            FactRetraction(
                time=2.0, address="n0", facts=(Fact("link", ("n0", "n1")),)
            )
        )
        assert simulator.run_until_idle()
        assert not any(
            f.values == ("n0", "n1") for f in simulator.engines["n0"].facts("link")
        )
        assert simulator.stats.node("n0").facts_retracted >= 1


class TestAggregateExpiryRepair:
    def test_expired_aggregate_group_accepts_worse_values(self):
        compiled = compile_best_path()
        engine = NodeEngine("a", compiled, EngineConfig(default_ttl=5.0))
        engine.insert_base(Fact("link", ("a", "b", 2.0)), now=0.0)
        [cost] = engine.facts("bestPathCost")
        assert cost.values[2] == 2.0
        # After expiry, the min-group must be re-establishable: a refreshed,
        # more expensive link yields a *worse* best cost instead of being
        # rejected by stale aggregate state.
        engine.database.expire(now=10.0)
        assert engine.facts("bestPathCost") == ()
        engine.insert_base(Fact("link", ("a", "b", 7.0)), now=10.0)
        [cost] = engine.facts("bestPathCost")
        assert cost.values[2] == 7.0


SOFT_MIN = """
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(best, 10, infinity, keys(1)).

    b1 best(@S, min<C>) :- link(@S, D, C).
"""


class TestAggregateExpiryRace:
    def test_fresh_best_survives_the_insert_triggered_sweep(self):
        # The stored aggregate tuple expires during the very insert that
        # stores its fresher replacement; the expiry hook must not wipe the
        # just-recorded group, or a later worse value would displace it.
        compiled = compile_program(localize_program(parse_program(SOFT_MIN)))
        engine = NodeEngine("a", compiled, EngineConfig())
        engine.insert_base(Fact("link", ("a", "b", 2.0)), now=0.0)
        [best] = engine.facts("best")
        assert best.values[1] == 2.0
        # Long after best(a, 2) expired, a strictly better value arrives:
        # its insert sweeps the stale tuple out of the same table.
        engine.insert_base(Fact("link", ("a", "d", 1.0)), now=20.0)
        [best] = engine.facts("best")
        assert best.values[1] == 1.0
        # A worse contribution must now be rejected, not accepted.
        engine.insert_base(Fact("link", ("a", "e", 4.0)), now=21.0)
        [best] = engine.facts("best")
        assert best.values[1] == 1.0


class TestEndOfRunExpiry:
    def test_post_run_snapshots_never_include_elapsed_ttls(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        base = {
            node: [
                Fact("link", (link.source, link.destination), ttl=1e-6)
                for link in topology.outgoing(node)
            ]
            for node in topology.nodes
        }
        result = simulator.run(base)
        assert result.converged
        completion = result.stats.completion_time
        assert completion > 1e-6
        # The soft links elapsed mid-run; the end-of-run sweep must have
        # removed every one of them from the snapshots.
        assert result.all_facts("link") == ()
        for engine in result.engines.values():
            for fact in engine.database.all_facts():
                assert not fact.is_expired(completion)

    def test_unexpired_soft_state_survives_the_sweep(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(
            topology,
            compiled_reachable,
            EngineConfig(default_ttl=1e6),
        )
        result = simulator.run(reachable_base(topology))
        assert result.all_facts("link")
        assert result.all_facts("reachable")
