"""Tests for the BDD package and condensed provenance annotations."""

from __future__ import annotations

import pytest

from repro.provenance.bdd import BDDManager
from repro.provenance.condensed import CondensedProvenance, condense_expression
from repro.provenance.polynomial import p_product, p_sum, p_var
from repro.provenance.semiring import COUNTING, TRUST


class TestBDDBasics:
    def test_true_and_false_constants(self):
        manager = BDDManager()
        assert manager.true.is_true
        assert manager.false.is_false
        assert manager.true != manager.false

    def test_variable_evaluation(self):
        manager = BDDManager()
        a = manager.declare("a")
        assert a.evaluate({"a": True})
        assert not a.evaluate({"a": False})

    def test_declare_is_idempotent(self):
        manager = BDDManager()
        assert manager.declare("a") == manager.declare("a")
        assert manager.variables() == ("a",)

    def test_and_or_not(self):
        manager = BDDManager()
        a, b = manager.declare("a"), manager.declare("b")
        conj = a & b
        disj = a | b
        nega = ~a
        assert conj.evaluate({"a": True, "b": True})
        assert not conj.evaluate({"a": True, "b": False})
        assert disj.evaluate({"a": False, "b": True})
        assert nega.evaluate({"a": False})

    def test_canonical_form_gives_structural_equality(self):
        manager = BDDManager()
        a, b, c = manager.declare("a"), manager.declare("b"), manager.declare("c")
        left = (a & b) | (a & c)
        right = a & (b | c)
        assert left == right

    def test_complement_laws(self):
        manager = BDDManager()
        a = manager.declare("a")
        assert (a | ~a) == manager.true
        assert (a & ~a) == manager.false

    def test_absorption_law(self):
        manager = BDDManager()
        a, b = manager.declare("a"), manager.declare("b")
        assert (a | (a & b)) == a
        assert (a & (a | b)) == a

    def test_support(self):
        manager = BDDManager()
        a, b = manager.declare("a"), manager.declare("b")
        manager.declare("unused")
        assert (a & b).support() == frozenset({"a", "b"})

    def test_node_count_of_terminal(self):
        manager = BDDManager()
        assert manager.true.node_count() == 0
        assert manager.declare("a").node_count() == 1

    def test_count_solutions(self):
        manager = BDDManager()
        a, b = manager.declare("a"), manager.declare("b")
        # a | b has 3 satisfying assignments over 2 variables.
        assert (a | b).count_solutions() == 3
        assert (a & b).count_solutions() == 1
        assert manager.true.count_solutions() == 4

    def test_satisfying_assignments(self):
        manager = BDDManager()
        a, b = manager.declare("a"), manager.declare("b")
        models = list((a & b).satisfying_assignments())
        assert {"a": True, "b": True} in models


class TestBDDProvenance:
    def test_from_expression_and_back(self):
        manager = BDDManager()
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        bdd = manager.from_expression(expr)
        assert manager.to_expression(bdd) == p_var("a")

    def test_prime_implicants_of_monotone_function(self):
        manager = BDDManager()
        expr = p_sum(p_product(p_var("a"), p_var("b")), p_var("c"))
        implicants = manager.from_expression(expr).prime_implicants()
        assert set(implicants) == {frozenset({"a", "b"}), frozenset({"c"})}

    def test_bdd_encoding_matches_condensed_polynomial(self):
        manager = BDDManager()
        expr = p_sum(
            p_product(p_var("a"), p_var("b"), p_var("b")),
            p_var("a"),
            p_product(p_var("c"), p_var("a")),
        )
        assert manager.to_expression(manager.from_expression(expr)) == expr.condense()

    def test_equivalent_expressions_share_bdd_node(self):
        manager = BDDManager()
        left = manager.from_expression(p_sum(p_var("a"), p_product(p_var("a"), p_var("b"))))
        right = manager.from_expression(p_var("a"))
        assert left == right

    def test_zero_and_one_expressions(self):
        manager = BDDManager()
        from repro.provenance.polynomial import ProvenanceExpression

        assert manager.from_expression(ProvenanceExpression.zero()).is_false
        assert manager.from_expression(ProvenanceExpression.one()).is_true


class TestCondensedProvenance:
    def test_from_source(self):
        annotation = CondensedProvenance.from_source("a")
        assert annotation.sources() == frozenset({"a"})
        assert str(annotation) == "<a>"

    def test_join_combines_sources(self):
        joined = CondensedProvenance.from_source("a").join(
            CondensedProvenance.from_source("b")
        )
        assert joined.sources() == frozenset({"a", "b"})
        assert joined.expression.to_string() == "a*b"

    def test_merge_keeps_alternatives(self):
        merged = CondensedProvenance.from_source("a").merge(
            CondensedProvenance.from_source("b")
        )
        assert merged.expression.to_string() == "a+b"

    def test_merge_applies_absorption(self):
        a = CondensedProvenance.from_source("a")
        ab = a.join(CondensedProvenance.from_source("b"))
        assert a.merge(ab) == a

    def test_join_all_and_merge_all(self):
        parts = [CondensedProvenance.from_source(x) for x in ("a", "b", "c")]
        assert CondensedProvenance.join_all(parts).sources() == frozenset({"a", "b", "c"})
        assert CondensedProvenance.merge_all(parts).expression.to_string() == "a+b+c"

    def test_acceptable_by_trusted_sources(self):
        annotation = CondensedProvenance(
            expression=p_sum(p_var("a"), p_product(p_var("b"), p_var("c"))).condense()
        )
        assert annotation.acceptable({"a"})
        assert annotation.acceptable({"b", "c"})
        assert not annotation.acceptable({"b"})
        assert not annotation.acceptable(set())

    def test_paper_example_acceptability(self):
        # <a + a*b> condenses to <a>; trusting a alone suffices, b alone does not.
        annotation = CondensedProvenance(
            expression=p_sum(p_var("a"), p_product(p_var("a"), p_var("b"))).condense()
        )
        assert annotation.acceptable({"a"})
        assert not annotation.acceptable({"b"})

    def test_evaluate_delegates_to_semirings(self):
        annotation = CondensedProvenance(
            expression=p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        )
        assert annotation.evaluate(TRUST, {"a": 2, "b": 1}) == 2
        assert annotation.evaluate(COUNTING, {"a": 1, "b": 1}) == 2

    def test_serialized_size(self):
        annotation = CondensedProvenance.from_source("node17")
        assert annotation.serialized_size() == len("node17")

    def test_to_bdd_uses_shared_manager(self):
        manager = BDDManager()
        a1 = CondensedProvenance.from_source("a").to_bdd(manager)
        a2 = CondensedProvenance.from_source("a").to_bdd(manager)
        assert a1 == a2

    def test_condense_expression_helper(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        assert condense_expression(expr) == p_var("a")

    def test_empty_and_axiomatic(self):
        assert CondensedProvenance.empty().expression.is_zero
        assert CondensedProvenance.axiomatic().expression.is_one
        assert not CondensedProvenance.empty().acceptable({"a"})
        assert CondensedProvenance.axiomatic().acceptable(set())
