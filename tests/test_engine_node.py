"""Tests for the per-node engine (authentication, provenance, shipping)."""

from __future__ import annotations

import pytest

from repro.engine.node_engine import EngineConfig, NodeEngine, ProvenanceMode
from repro.engine.tuples import Fact
from repro.provenance.authenticated import SignedAnnotation, sign_annotation
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.pruning import ProvenanceSampler
from repro.security.keystore import KeyStore
from repro.security.says import SaysMode


@pytest.fixture(scope="module")
def keystore() -> KeyStore:
    store = KeyStore(key_bits=128, seed=9)
    store.create_all(["a", "b", "c", "mallory"])
    return store


def make_engine(address, compiled, config, keystore) -> NodeEngine:
    return NodeEngine(address=address, compiled=compiled, config=config, keystore=keystore)


class TestBaseProcessing:
    def test_insert_base_derives_and_ships(self, compiled_best_path, keystore):
        engine = make_engine("a", compiled_best_path, EngineConfig(), keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        # p1 derives a one-hop path locally; the localized p2a ships a mid
        # tuple to node b.
        assert any(o.destination == "b" for o in result.outgoing)
        assert engine.facts("path")
        assert engine.facts("bestPath")

    def test_report_counts_insertions_and_firings(self, compiled_best_path, keystore):
        engine = make_engine("a", compiled_best_path, EngineConfig(), keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        assert result.report.facts_inserted >= 3  # link, path, bestPathCost/bestPath
        assert result.report.rule_firings >= 3

    def test_duplicate_base_fact_is_idempotent(self, compiled_best_path, keystore):
        engine = make_engine("a", compiled_best_path, EngineConfig(), keystore)
        engine.insert_base(Fact("link", ("a", "b", 1.0)))
        second = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        assert second.report.facts_inserted == 0
        assert second.outgoing == []


class TestAuthentication:
    def test_ndlog_mode_ships_unsigned(self, compiled_best_path, keystore):
        engine = make_engine("a", compiled_best_path, EngineConfig(), keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        exported = result.outgoing[0].fact
        assert exported.signature is None
        assert result.outgoing[0].security_bytes == 0

    def test_signed_mode_ships_signed(self, compiled_best_path, keystore):
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        engine = make_engine("a", compiled_best_path, config, keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        exported = result.outgoing[0].fact
        assert exported.asserted_by == "a"
        assert exported.signature is not None
        assert result.outgoing[0].security_bytes > 0
        assert result.report.signatures_created == len(result.outgoing)

    def test_cleartext_mode_attributes_without_signature(self, compiled_best_path, keystore):
        config = EngineConfig(says_mode=SaysMode.CLEARTEXT)
        engine = make_engine("a", compiled_best_path, config, keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        exported = result.outgoing[0].fact
        assert exported.asserted_by == "a"
        assert exported.signature is None

    def test_receiver_accepts_valid_signature(self, compiled_best_path, keystore):
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        sender = make_engine("a", compiled_best_path, config, keystore)
        receiver = make_engine("b", compiled_best_path, config, keystore)
        outgoing = sender.insert_base(Fact("link", ("a", "b", 1.0))).outgoing
        to_b = [o for o in outgoing if o.destination == "b"][0]
        result = receiver.receive(to_b.fact, now=1.0)
        assert result.report.facts_verified == 1
        assert result.report.facts_rejected == 0
        assert result.report.facts_inserted >= 1

    def test_receiver_rejects_tampered_tuple(self, compiled_best_path, keystore):
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        sender = make_engine("a", compiled_best_path, config, keystore)
        receiver = make_engine("b", compiled_best_path, config, keystore)
        outgoing = sender.insert_base(Fact("link", ("a", "b", 1.0))).outgoing
        genuine = [o for o in outgoing if o.destination == "b"][0].fact
        tampered = Fact(
            relation=genuine.relation,
            values=genuine.values[:-1] + (999.0,),
            asserted_by=genuine.asserted_by,
            signature=genuine.signature,
        )
        result = receiver.receive(tampered, now=1.0)
        assert result.report.facts_rejected == 1
        assert result.report.facts_inserted == 0

    def test_receiver_rejects_unsigned_tuple_in_signed_mode(self, compiled_best_path, keystore):
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        receiver = make_engine("b", compiled_best_path, config, keystore)
        result = receiver.receive(Fact("link", ("a", "b", 1.0)), now=0.0)
        assert result.report.facts_rejected == 1

    def test_receiver_rejects_spoofed_principal(self, compiled_best_path, keystore):
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        mallory = make_engine("mallory", compiled_best_path, config, keystore)
        receiver = make_engine("b", compiled_best_path, config, keystore)
        outgoing = mallory.insert_base(Fact("link", ("mallory", "b", 1.0))).outgoing
        fact = outgoing[0].fact
        spoofed = fact.with_metadata(asserted_by="a")  # claim it came from a
        result = receiver.receive(spoofed, now=0.0)
        assert result.report.facts_rejected == 1


class TestProvenanceModes:
    def test_condensed_mode_ships_signed_annotation(self, compiled_best_path, keystore):
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        engine = make_engine("a", compiled_best_path, config, keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        shipped = result.outgoing[0]
        assert shipped.provenance_bytes > 0
        assert isinstance(shipped.fact.provenance, SignedAnnotation)
        assert result.report.provenance_signatures == len(result.outgoing)

    def test_unsigned_condensed_mode_ships_plain_annotation(self, compiled_best_path, keystore):
        config = EngineConfig(
            says_mode=SaysMode.NONE, provenance_mode=ProvenanceMode.CONDENSED
        )
        engine = make_engine("a", compiled_best_path, config, keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        shipped = result.outgoing[0]
        assert isinstance(shipped.fact.provenance, CondensedProvenance)
        assert shipped.provenance_bytes == shipped.fact.provenance.serialized_size()

    def test_none_mode_ships_nothing_extra(self, compiled_best_path, keystore):
        engine = make_engine("a", compiled_best_path, EngineConfig(), keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        assert all(o.provenance_bytes == 0 for o in result.outgoing)

    def test_distributed_mode_keeps_pointers_but_ships_nothing(self, compiled_best_path, keystore):
        config = EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED)
        engine = make_engine("a", compiled_best_path, config, keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        assert all(o.provenance_bytes == 0 for o in result.outgoing)
        assert engine.distributed_provenance.storage_overhead() > 0

    def test_receiver_verifies_provenance_signature(self, compiled_best_path, keystore):
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        sender = make_engine("a", compiled_best_path, config, keystore)
        receiver = make_engine("b", compiled_best_path, config, keystore)
        outgoing = sender.insert_base(Fact("link", ("a", "b", 1.0))).outgoing
        to_b = [o for o in outgoing if o.destination == "b"][0]
        result = receiver.receive(to_b.fact, now=0.5, provenance=to_b.fact.provenance)
        assert result.report.provenance_verifications == 1
        assert result.report.facts_rejected == 0

    def test_receiver_rejects_forged_provenance(self, compiled_best_path, keystore):
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        receiver = make_engine("b", compiled_best_path, config, keystore)
        annotation = CondensedProvenance.from_source("a")
        forged = SignedAnnotation(annotation=annotation, principal="a", signature=b"\x00" * 16)
        sender = make_engine("a", compiled_best_path, config, keystore)
        fact = sender.insert_base(Fact("link", ("a", "b", 1.0))).outgoing[0].fact
        fact = fact.with_metadata(provenance=forged)
        result = receiver.receive(fact, now=0.5, provenance=forged)
        assert result.report.facts_rejected == 1

    def test_provenance_of_local_fact(self, compiled_best_path, keystore):
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        engine = make_engine("a", compiled_best_path, config, keystore)
        engine.insert_base(Fact("link", ("a", "b", 1.0)))
        best = engine.facts("bestPath")[0]
        annotation = engine.provenance_of(best)
        assert "a" in annotation.sources()

    def test_sampling_skips_some_provenance(self, compiled_best_path, keystore):
        config = EngineConfig(
            provenance_mode=ProvenanceMode.CONDENSED,
            sampler=ProvenanceSampler(rate=0.0),
        )
        engine = make_engine("a", compiled_best_path, config, keystore)
        result = engine.insert_base(Fact("link", ("a", "b", 1.0)))
        assert result.report.provenance_annotations == 0

    def test_online_and_offline_stores_populated(self, compiled_best_path, keystore):
        config = EngineConfig(
            provenance_mode=ProvenanceMode.CONDENSED,
            keep_online_provenance=True,
            keep_offline_provenance=True,
        )
        engine = make_engine("a", compiled_best_path, config, keystore)
        engine.insert_base(Fact("link", ("a", "b", 1.0)))
        assert len(engine.online_provenance) > 0
        assert len(engine.offline_provenance) > 0


class TestSoftState:
    def test_default_ttl_applied_to_base_facts(self, compiled_best_path, keystore):
        config = EngineConfig(default_ttl=30.0)
        engine = make_engine("a", compiled_best_path, config, keystore)
        engine.insert_base(Fact("link", ("a", "b", 1.0)), now=0.0)
        stored = engine.facts("link")[0]
        assert stored.ttl == 30.0
