"""Tests for the batched wire path and the accounting fixes that rode along.

Covers the `MessageBatch` size model, byte-identical security/provenance
attribution vs. the per-tuple path, FIFO unpack order, cross-run determinism
with batching on, the phantom-`NodeStats` fix, the provenance-sampler fix for
received tuples, and soft-state TTLs on the single-site evaluator.
"""

from __future__ import annotations

import pytest

from repro.datalog import localize_program, parse_program
from repro.datalog.catalog import Catalog
from repro.datalog.planner import compile_program
from repro.engine.database import Database
from repro.engine.node_engine import (
    EngineConfig,
    NodeEngine,
    OutgoingFact,
    ProvenanceMode,
    group_outgoing,
)
from repro.engine.seminaive import evaluate_program
from repro.engine.tuples import Fact
from repro.net.message import MESSAGE_HEADER_BYTES, BatchItem, Message, MessageBatch
from repro.net.kernel import SimulationKernel
from repro.net.topology import line_topology, paper_example_topology, random_topology
from repro.provenance.pruning import ProvenanceSampler
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode


@pytest.fixture(scope="module")
def compiled_reachable():
    return compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


def reachable_base(topology):
    return {
        node: [
            Fact("link", (link.source, link.destination))
            for link in topology.outgoing(node)
        ]
        for node in topology.nodes
    }


def run_reachable(topology, config, batching, compiled):
    simulator = SimulationKernel(
        topology, compiled, config, key_bits=128, batching=batching
    )
    return simulator.run(reachable_base(topology))


class TestMessageBatchFormat:
    def _batch(self):
        items = (
            BatchItem(fact=Fact("link", ("a", "b")), security_bytes=40, provenance_bytes=10),
            BatchItem(fact=Fact("link", ("a", "c")), security_bytes=40, provenance_bytes=20),
        )
        return MessageBatch(source="a", destination="b", items=items)

    def test_header_charged_once(self):
        batch = self._batch()
        payload = sum(item.fact.payload_size() for item in batch.items)
        assert batch.size_bytes() == MESSAGE_HEADER_BYTES + payload + 80 + 30

    def test_overheads_stay_itemized(self):
        batch = self._batch()
        assert batch.security_bytes == 80
        assert batch.provenance_bytes == 30

    def test_facts_in_item_order(self):
        batch = self._batch()
        assert [fact.values for fact in batch.facts()] == [("a", "b"), ("a", "c")]
        assert batch.tuple_count == 2

    def test_batch_vs_individual_messages_differ_only_by_framing(self):
        batch = self._batch()
        individual = sum(
            Message(
                source="a",
                destination="b",
                fact=item.fact,
                security_bytes=item.security_bytes,
                provenance_bytes=item.provenance_bytes,
            ).size_bytes()
            for item in batch.items
        )
        assert individual - batch.size_bytes() == MESSAGE_HEADER_BYTES * (
            batch.tuple_count - 1
        )


class TestGrouping:
    def test_group_outgoing_preserves_fifo_per_destination(self):
        outgoing = [
            OutgoingFact("b", Fact("r", (1,)), 0, 0),
            OutgoingFact("c", Fact("r", (2,)), 0, 0),
            OutgoingFact("b", Fact("r", (3,)), 0, 0),
            OutgoingFact("b", Fact("r", (4,)), 0, 0),
        ]
        grouped = group_outgoing(outgoing)
        assert list(grouped) == ["b", "c"]  # first-send order
        assert [o.fact.values[0] for o in grouped["b"]] == [1, 3, 4]


class TestDispatchAttribution:
    """The same outgoing tuples, dispatched batched vs. per-tuple."""

    OUTGOING = [
        OutgoingFact("b", Fact("r", ("x", 1)), security_bytes=34, provenance_bytes=7),
        OutgoingFact("b", Fact("r", ("x", 2)), security_bytes=34, provenance_bytes=9),
        OutgoingFact("c", Fact("r", ("x", 3)), security_bytes=34, provenance_bytes=0),
    ]

    def _dispatch(self, batching, compiled_reachable):
        simulator = SimulationKernel(
            paper_example_topology(),
            compiled_reachable,
            EngineConfig(),
            batching=batching,
        )
        stats = simulator.stats.node("a")
        simulator._dispatch_outgoing("a", list(self.OUTGOING), stats)
        return simulator, stats

    def test_attribution_is_byte_identical(self, compiled_reachable):
        _, batched = self._dispatch(True, compiled_reachable)
        _, per_tuple = self._dispatch(False, compiled_reachable)
        assert batched.security_bytes_sent == per_tuple.security_bytes_sent == 102
        assert batched.provenance_bytes_sent == per_tuple.provenance_bytes_sent == 16
        assert batched.tuples_sent == per_tuple.tuples_sent == 3

    def test_only_framing_bytes_are_saved(self, compiled_reachable):
        _, batched = self._dispatch(True, compiled_reachable)
        _, per_tuple = self._dispatch(False, compiled_reachable)
        saved_headers = per_tuple.messages_sent - batched.messages_sent
        assert saved_headers == 1  # (b, b, c) -> two batches instead of three
        assert per_tuple.bytes_sent - batched.bytes_sent == (
            MESSAGE_HEADER_BYTES * saved_headers
        )

    def test_one_batch_per_destination(self, compiled_reachable):
        simulator, stats = self._dispatch(True, compiled_reachable)
        assert stats.messages_sent == 2
        assert stats.batches_sent == 2
        assert stats.batch_sizes == {2: 1, 1: 1}
        destinations = [
            event.message.destination for event in simulator.scheduler.pending()
        ]
        assert sorted(destinations) == ["b", "c"]


class TestFullRunAttribution:
    """Reachability derivations are order-independent, so a full distributed
    run must attribute exactly the same security bytes either way."""

    def test_security_attribution_matches_per_tuple_path(self, compiled_reachable):
        topology = random_topology(8, seed=11)
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        batched = run_reachable(topology, config, True, compiled_reachable).stats
        per_tuple = run_reachable(topology, config, False, compiled_reachable).stats
        assert (
            batched.security_overhead_bytes()
            == per_tuple.security_overhead_bytes()
            > 0
        )
        assert batched.total_tuples_sent() == per_tuple.total_tuples_sent()
        # All saved bytes are per-tuple framing, nothing else.
        saved = per_tuple.total_bytes() - batched.total_bytes()
        assert saved == MESSAGE_HEADER_BYTES * (
            per_tuple.total_messages - batched.total_messages
        )

    def test_batching_halves_wire_messages(self, compiled_reachable):
        topology = random_topology(8, seed=11)
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        batched = run_reachable(topology, config, True, compiled_reachable).stats
        per_tuple = run_reachable(topology, config, False, compiled_reachable).stats
        assert batched.total_messages * 3 <= per_tuple.total_messages * 2
        assert batched.mean_tuples_per_batch() > 1.5

    def test_results_identical_across_wire_formats(self, compiled_reachable):
        topology = random_topology(8, seed=11)
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        batched = run_reachable(topology, config, True, compiled_reachable)
        per_tuple = run_reachable(topology, config, False, compiled_reachable)
        for address, engine in batched.engines.items():
            assert engine.database.snapshot() == (
                per_tuple.engines[address].database.snapshot()
            )

    def test_single_path_provenance_attribution_matches(self, compiled_reachable):
        # On a line there is one derivation per reachable pair, so condensed
        # annotations cannot depend on arrival order and the provenance bytes
        # must match exactly too.
        topology = line_topology(4)
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        batched = run_reachable(topology, config, True, compiled_reachable).stats
        per_tuple = run_reachable(topology, config, False, compiled_reachable).stats
        assert (
            batched.provenance_overhead_bytes()
            == per_tuple.provenance_overhead_bytes()
            > 0
        )


class TestFifoUnpack:
    def _batch(self):
        return MessageBatch(
            source="a",
            destination="b",
            items=tuple(
                BatchItem(fact=Fact("link", ("b", str(i)))) for i in range(5)
            ),
            sequence=1,
        )

    def test_per_tuple_receive_sees_tuples_in_item_order(self, compiled_reachable):
        simulator = SimulationKernel(
            paper_example_topology(),
            compiled_reachable,
            EngineConfig(),
            batch_receive=False,
        )
        received = []
        engine = simulator.engines["b"]
        original = engine.receive

        def recording_receive(fact, now, provenance=None):
            received.append(fact.values)
            return original(fact, now=now, provenance=provenance)

        engine.receive = recording_receive
        simulator._deliver(self._batch(), deliver_at=0.0)
        assert received == [("b", str(i)) for i in range(5)]

    def test_batch_receive_admits_tuples_in_item_order(self, compiled_reachable):
        simulator = SimulationKernel(
            paper_example_topology(), compiled_reachable, EngineConfig()
        )
        admitted = []
        engine = simulator.engines["b"]
        original = engine._admit

        def recording_admit(fact, provenance, result):
            admitted.append(fact.values)
            return original(fact, provenance, result)

        engine._admit = recording_admit
        simulator._deliver(self._batch(), deliver_at=0.0)
        assert admitted == [("b", str(i)) for i in range(5)]


class TestBatchedDeterminism:
    def _run(self, compiled_reachable):
        topology = random_topology(9, seed=4)
        delivered = []

        class Recording(SimulationKernel):
            def _deliver(self, message, deliver_at):
                delivered.append(
                    (
                        message.sequence,
                        str(message.source),
                        str(message.destination),
                        tuple(fact.key() for fact in message.facts()),
                    )
                )
                super()._deliver(message, deliver_at)

        simulator = Recording(
            topology,
            compiled_reachable,
            EngineConfig(says_mode=SaysMode.SIGNED),
            key_bits=128,
            batching=True,
        )
        result = simulator.run(reachable_base(topology))
        assert result.converged
        return result.stats.summary(), delivered

    def test_sequence_numbers_and_stats_are_reproducible(self, compiled_reachable):
        first_summary, first_delivered = self._run(compiled_reachable)
        second_summary, second_delivered = self._run(compiled_reachable)
        assert first_summary == second_summary
        assert first_delivered == second_delivered


class TestPhantomNodeStatsFix:
    def test_message_to_unknown_address_fabricates_no_stats(self, compiled_reachable):
        simulator = SimulationKernel(
            paper_example_topology(), compiled_reachable, EngineConfig()
        )
        ghost = Message(
            source="a", destination="zz", fact=Fact("link", ("zz", "a")), sequence=9
        )
        simulator._deliver(ghost, deliver_at=1.0)
        assert "zz" not in simulator.stats.nodes
        assert simulator.stats.messages_dropped == 1

    def test_unroutable_tuple_does_not_skew_completion_time(self, compiled_reachable):
        # A program shipping to a destination derived from data can address a
        # node outside the topology; the run must not let the phantom's
        # receive-side counters join the completion-time max.
        simulator = SimulationKernel(
            paper_example_topology(), compiled_reachable, EngineConfig()
        )
        ghost = Message(
            source="a", destination="zz", fact=Fact("link", ("zz", "a")), sequence=9
        )
        simulator._deliver(ghost, deliver_at=1e6)
        assert all(stats.busy_until < 1e6 for stats in simulator.stats.nodes.values())


class TestReceivedProvenanceSampling:
    def _engines(self, compiled_reachable, rate):
        config = EngineConfig(
            provenance_mode=ProvenanceMode.CONDENSED,
            sampler=ProvenanceSampler(rate=rate),
        )
        sender = NodeEngine("a", compiled_reachable, EngineConfig(
            provenance_mode=ProvenanceMode.CONDENSED
        ))
        receiver = NodeEngine("b", compiled_reachable, config)
        return sender, receiver

    def test_sampler_rate_zero_records_no_received_provenance(self, compiled_reachable):
        sender, receiver = self._engines(compiled_reachable, rate=0.0)
        outgoing = sender.insert_base(Fact("link", ("a", "b"))).outgoing
        shipped = [o for o in outgoing if o.destination == "b"][0].fact
        before = set(receiver.local_provenance.keys())
        receiver.receive(shipped, now=1.0, provenance=shipped.provenance)
        # The tuple itself is stored, but no provenance was recorded for it.
        assert receiver.facts(shipped.relation)
        assert shipped.key() not in set(receiver.local_provenance.keys()) - before

    def test_sampler_rate_one_still_records(self, compiled_reachable):
        sender, receiver = self._engines(compiled_reachable, rate=1.0)
        outgoing = sender.insert_base(Fact("link", ("a", "b"))).outgoing
        shipped = [o for o in outgoing if o.destination == "b"][0].fact
        receiver.receive(shipped, now=1.0, provenance=shipped.provenance)
        assert shipped.key() in receiver.local_provenance.keys()


SOFT_REACH = """
    materialize(edge, infinity, infinity, keys(1,2)).
    materialize(reach, 30, infinity, keys(1)).

    r1 reach(@X) :- edge(@Y, X), reach(@Y).
"""


class TestSingleSiteSoftState:
    def _fixpoint(self, default_ttl=None):
        compiled = compile_program(localize_program(parse_program(SOFT_REACH)))
        database = Database(Catalog.from_program(compiled.program))
        base = [
            Fact("edge", ("a", "b")),
            Fact("edge", ("b", "c")),
            Fact("reach", ("a",)),
        ]
        return evaluate_program(
            compiled, database, base, default_ttl=default_ttl
        )

    def test_derived_facts_inherit_schema_lifetime(self):
        result = self._fixpoint()
        for fact in result.facts("reach"):
            assert fact.ttl == 30.0

    def test_base_facts_inherit_schema_lifetime(self):
        result = self._fixpoint()
        reach_a = [f for f in result.facts("reach") if f.values == ("a",)][0]
        assert reach_a.ttl == 30.0

    def test_hard_state_relations_stay_hard(self):
        result = self._fixpoint()
        for fact in result.facts("edge"):
            assert fact.ttl is None

    def test_default_ttl_fills_undeclared_lifetimes(self):
        result = self._fixpoint(default_ttl=7.0)
        # Matching NodeEngine._ttl_for: an infinite declared lifetime leaves
        # the relation on the configured default; an explicit finite lifetime
        # (reach's 30s) wins over the default.
        assert all(f.ttl == 7.0 for f in result.facts("edge"))
        assert all(f.ttl == 30.0 for f in result.facts("reach"))

    def test_derived_soft_state_expires_like_distributed_path(self):
        result = self._fixpoint()
        database = result.database
        expired = database.expire(now=31.0)
        assert {fact.relation for fact in expired} == {"reach"}
        assert database.facts("reach") == ()
