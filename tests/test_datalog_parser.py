"""Tests for the NDlog / SeNDlog parser."""

from __future__ import annotations

import pytest

from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    FunctionCall,
    SaysAtom,
    Variable,
)
from repro.datalog.errors import ParseError
from repro.datalog.parser import parse_program, parse_rule
from repro.queries.best_path import BEST_PATH_NDLOG
from repro.queries.reachable import REACHABLE_NDLOG, REACHABLE_SENDLOG


class TestBasicRules:
    def test_single_rule_with_label(self):
        rule = parse_rule("r1 reachable(@S, D) :- link(@S, D).")
        assert rule.label == "r1"
        assert rule.head.name == "reachable"
        assert len(rule.body) == 1

    def test_rule_without_label_gets_generated_one(self):
        rule = parse_rule("reachable(@S, D) :- link(@S, D).")
        assert rule.label.startswith("rule")

    def test_head_location_specifier_index(self):
        rule = parse_rule("r1 reachable(@S, D) :- link(@S, D).")
        assert rule.head.location_index == 0
        assert rule.head.location_term == Variable("S")

    def test_location_specifier_on_second_attribute(self):
        rule = parse_rule("r x(A, @B) :- y(A, @B).")
        assert rule.head.location_index == 1

    def test_fact_rule_has_empty_body(self):
        rule = parse_rule("f1 link(a, b, 3).")
        assert rule.is_fact()
        assert rule.head.terms == (Constant("a"), Constant("b"), Constant(3))

    def test_constants_and_variables_distinguished(self):
        rule = parse_rule("r p(X, alice, 7) :- q(X).")
        assert rule.head.terms[0] == Variable("X")
        assert rule.head.terms[1] == Constant("alice")
        assert rule.head.terms[2] == Constant(7)

    def test_float_constant(self):
        rule = parse_rule("r p(1.5) :- q(1.5).")
        assert rule.head.terms[0] == Constant(1.5)

    def test_string_constant(self):
        rule = parse_rule('r p("hello") :- q(X).')
        assert rule.head.terms[0] == Constant("hello")

    def test_multiple_body_literals(self):
        rule = parse_rule("r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).")
        assert [a.name for a in rule.body_atoms()] == ["link", "reachable"]


class TestExpressions:
    def test_assignment(self):
        rule = parse_rule("r p(S, C) :- q(S, C1), C := C1 + 1.")
        assignment = rule.body[1]
        assert isinstance(assignment, Assignment)
        assert assignment.target == Variable("C")
        assert isinstance(assignment.expression, FunctionCall)
        assert assignment.expression.name == "+"

    def test_comparison(self):
        rule = parse_rule("r p(S) :- q(S, C), C < 10.")
        comparison = rule.body[1]
        assert isinstance(comparison, Comparison)
        assert comparison.operator == "<"

    def test_function_call_comparison(self):
        rule = parse_rule("r p(S) :- q(S, P), f_member(P, S) == 0.")
        comparison = rule.body[1]
        assert isinstance(comparison, Comparison)
        assert isinstance(comparison.left, FunctionCall)
        assert comparison.left.name == "f_member"

    def test_function_call_in_assignment(self):
        rule = parse_rule("r p(S, P) :- q(S, P2), P := f_concat(S, P2).")
        assignment = rule.body[1]
        assert isinstance(assignment.expression, FunctionCall)
        assert assignment.expression.name == "f_concat"

    def test_arithmetic_precedence(self):
        rule = parse_rule("r p(X) :- q(A, B, C), X := A + B * C.")
        expression = rule.body[1].expression
        assert expression.name == "+"
        assert expression.args[1].name == "*"

    def test_parenthesised_arithmetic(self):
        rule = parse_rule("r p(X) :- q(A, B, C), X := (A + B) * C.")
        expression = rule.body[1].expression
        assert expression.name == "*"

    def test_negated_atom(self):
        rule = parse_rule("r p(S) :- q(S), !blocked(S).")
        negated = list(rule.body_atoms())[1]
        assert negated.negated


class TestAggregates:
    def test_min_aggregate_in_head(self):
        rule = parse_rule("p3 bestPathCost(@S, D, min<C>) :- path(@S, D, P, C).")
        aggregate = rule.head.terms[2]
        assert isinstance(aggregate, Aggregate)
        assert aggregate.function == "min"
        assert aggregate.variable == Variable("C")

    def test_count_aggregate(self):
        rule = parse_rule("m1 flapCount(@S, D, count<E>) :- routeEvent(@S, D, E).")
        assert rule.head.terms[2].function == "count"

    def test_aggregate_not_allowed_as_comparison_confusion(self):
        # "C < 10" in a body must stay a comparison even though "min<C>" exists.
        rule = parse_rule("r p(S) :- q(S, C), C < 10.")
        assert isinstance(rule.body[1], Comparison)


class TestSeNDlog:
    def test_says_literal_with_variable_principal(self):
        rule = parse_rule("s3 reachable(Z, Y)@Z :- Z says linkD(S, Z), W says reachable(S, Y).")
        says = rule.body[0]
        assert isinstance(says, SaysAtom)
        assert says.principal == Variable("Z")
        assert says.atom.name == "linkD"

    def test_says_literal_with_constant_principal(self):
        rule = parse_rule("s p(X) :- alice says q(X).")
        says = rule.body[0]
        assert says.principal == Constant("alice")

    def test_ship_to_annotation(self):
        rule = parse_rule("s2 linkD(D, S)@D :- link(S, D).")
        assert rule.head.ship_to == Variable("D")

    def test_at_context_block(self):
        program = parse_program(REACHABLE_SENDLOG)
        assert program.dialect == "sendlog"
        assert all(rule.context == Variable("S") for rule in program.rules)

    def test_ndlog_program_dialect(self):
        program = parse_program(REACHABLE_NDLOG)
        assert program.dialect == "ndlog"


class TestMaterialize:
    def test_materialize_declaration(self):
        program = parse_program("materialize(link, infinity, infinity, keys(1,2)).")
        decl = program.materialized[0]
        assert decl.name == "link"
        assert decl.lifetime is None
        assert decl.max_size is None
        assert decl.keys == (1, 2)

    def test_materialize_with_finite_lifetime(self):
        program = parse_program("materialize(routeEvent, 30, 1000, keys(1,2,3)).")
        decl = program.materialized[0]
        assert decl.lifetime == 30.0
        assert decl.max_size == 1000

    def test_materialize_round_trips_via_str(self):
        program = parse_program("materialize(link, infinity, infinity, keys(1,2)).")
        assert "materialize(link" in str(program)


class TestPrograms:
    def test_reachable_program_structure(self):
        program = parse_program(REACHABLE_NDLOG)
        assert len(program.rules) == 2
        assert program.derived_predicates() == ("reachable",)
        assert program.base_predicates() == ("link",)

    def test_best_path_program_structure(self):
        program = parse_program(BEST_PATH_NDLOG)
        assert {rule.label for rule in program.rules} == {"p1", "p2", "p3", "p4"}
        assert "link" in program.base_predicates()
        assert set(program.derived_predicates()) == {"path", "bestPathCost", "bestPath"}

    def test_rules_for_lookup(self):
        program = parse_program(REACHABLE_NDLOG)
        assert len(program.rules_for("reachable")) == 2
        assert program.rules_for("nonexistent") == ()

    def test_program_str_round_trips_through_parser(self):
        program = parse_program(REACHABLE_NDLOG)
        reparsed = parse_program(str(program))
        assert [r.label for r in reparsed.rules] == [r.label for r in program.rules]
        assert [r.head.name for r in reparsed.rules] == [r.head.name for r in program.rules]


class TestErrors:
    def test_missing_terminating_dot(self):
        with pytest.raises(ParseError):
            parse_rule("r p(X) :- q(X)")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_rule("r p(X :- q(X).")

    def test_trailing_garbage_in_single_rule(self):
        with pytest.raises(ParseError):
            parse_rule("r p(X) :- q(X). extra")

    def test_two_location_specifiers_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("r p(@X, @Y) :- q(X, Y).")

    def test_error_carries_line_information(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("r1 p(X) :- q(X).\nr2 broken(X :- q(X).")
        assert excinfo.value.line >= 2
