"""Batch-level engine receive: equivalence with the per-tuple path.

`NodeEngine.receive_batch` drains one incoming wire batch through a single
ProcessingResult/ProcessingReport and one probe-warm-up memo, but admits and
fixpoints tuples strictly in arrival order — so derived facts, shipped
tuples, delivery sequences and stats attribution must match the per-tuple
`receive` path exactly (byte counters identically; simulated-time floats up
to summation order, since one merged report is accounted with one multiply
per counter instead of N additions).
"""

from __future__ import annotations

import pytest

from repro.datalog import localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.node_engine import EngineConfig, NodeEngine, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.kernel import CostModel, SimulationKernel
from repro.net.topology import line_topology, random_topology
from repro.queries.best_path import compile_best_path
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode

#: Summary fields accumulated from integer byte/count counters: these must
#: be *identical* between the batch-level and per-tuple receive paths.
EXACT_SUMMARY_FIELDS = (
    "total_messages",
    "total_bytes",
    "bandwidth_mb",
    "security_bytes",
    "provenance_bytes",
    "batches_sent",
    "tuples_sent",
    "mean_tuples_per_batch",
    "messages_dropped",
    "messages_lost",
    "facts_derived",
    "facts_retracted",
)
#: Simulated-time fields: mathematically equal, compared up to float
#: summation order.
APPROX_SUMMARY_FIELDS = ("completion_time_s", "cpu_seconds")


@pytest.fixture(scope="module")
def compiled_reachable():
    return compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


@pytest.fixture(scope="module")
def compiled_best_path():
    return compile_best_path()


def reachable_base(topology):
    return {
        node: [
            Fact("link", (link.source, link.destination))
            for link in topology.outgoing(node)
        ]
        for node in topology.nodes
    }


class RecordingSimulator(SimulationKernel):
    """Records every delivery (sequence, endpoints, carried tuple keys)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delivered = []

    def _deliver(self, message, deliver_at):
        self.delivered.append(
            (
                message.sequence,
                str(message.source),
                str(message.destination),
                tuple(fact.key() for fact in message.facts()),
            )
        )
        super()._deliver(message, deliver_at)


def run_pair(topology, compiled, config, base, key_bits=128):
    """The same run under batch-level and per-tuple engine receive."""
    runs = {}
    for batch_receive in (True, False):
        simulator = RecordingSimulator(
            topology,
            compiled,
            config,
            key_bits=key_bits,
            batch_receive=batch_receive,
        )
        result = simulator.run(base)
        assert result.converged
        runs[batch_receive] = (simulator, result)
    return runs


def assert_equivalent(runs):
    (sim_batch, res_batch) = runs[True]
    (sim_tuple, res_tuple) = runs[False]
    batch_summary = res_batch.stats.summary()
    tuple_summary = res_tuple.stats.summary()
    for field in EXACT_SUMMARY_FIELDS:
        assert batch_summary[field] == tuple_summary[field], field
    for field in APPROX_SUMMARY_FIELDS:
        assert batch_summary[field] == pytest.approx(tuple_summary[field]), field
    assert sim_batch.delivered == sim_tuple.delivered
    for address, engine in res_batch.engines.items():
        assert engine.database.snapshot() == (
            res_tuple.engines[address].database.snapshot()
        )


class TestReceiveBatchEquivalence:
    def test_reachable_identical_facts_sequences_and_attribution(
        self, compiled_reachable
    ):
        topology = random_topology(8, seed=11)
        runs = run_pair(
            topology,
            compiled_reachable,
            EngineConfig(says_mode=SaysMode.SIGNED),
            reachable_base(topology),
        )
        assert_equivalent(runs)
        assert runs[True][1].stats.security_overhead_bytes() > 0

    def test_reachable_with_condensed_provenance(self, compiled_reachable):
        topology = line_topology(5)
        runs = run_pair(
            topology,
            compiled_reachable,
            EngineConfig(
                says_mode=SaysMode.SIGNED,
                provenance_mode=ProvenanceMode.CONDENSED,
            ),
            reachable_base(topology),
        )
        assert_equivalent(runs)
        assert runs[True][1].stats.provenance_overhead_bytes() > 0

    @pytest.mark.parametrize("configuration", ["ndlog", "sendlogprov"])
    def test_best_path_identical(self, compiled_best_path, configuration):
        config = {
            "ndlog": EngineConfig(),
            "sendlogprov": EngineConfig(
                says_mode=SaysMode.SIGNED,
                provenance_mode=ProvenanceMode.CONDENSED,
            ),
        }[configuration]
        topology = random_topology(10, seed=4)
        # run() with base None injects link_facts(); both runs use the same.
        runs = run_pair(topology, compiled_best_path, config, None)
        assert_equivalent(runs)

    def test_per_tuple_wire_format_also_equivalent(self, compiled_reachable):
        """batch_receive composes with batching=False (per-tuple wire)."""
        topology = random_topology(7, seed=2)
        runs = {}
        for batch_receive in (True, False):
            simulator = RecordingSimulator(
                topology,
                compiled_reachable,
                EngineConfig(says_mode=SaysMode.SIGNED),
                key_bits=128,
                batching=False,
                batch_receive=batch_receive,
            )
            result = simulator.run(reachable_base(topology))
            assert result.converged
            runs[batch_receive] = (simulator, result)
        assert_equivalent(runs)


class TestEngineLevelEquivalence:
    """receive_batch(facts) == sequential receive(fact) at the engine level."""

    def _engines(self, compiled):
        config = EngineConfig()
        sender = NodeEngine("a", compiled, config)
        return (
            sender,
            NodeEngine("b", compiled, config),
            NodeEngine("b", compiled, config),
        )

    def _shipped(self, sender):
        outgoing = []
        for values in (("a", "b"), ("a", "c"), ("b", "a")):
            outgoing.extend(
                item
                for item in sender.insert_base(Fact("link", values)).outgoing
                if item.destination == "b"
            )
        return [item.fact for item in outgoing]

    def test_same_outgoing_and_report(self, compiled_reachable):
        sender, via_batch, via_tuple = self._engines(compiled_reachable)
        shipped = self._shipped(sender)
        assert shipped  # the workload must actually exercise the path

        batch_result = via_batch.receive_batch(shipped, now=1.0)
        reports = []
        outgoing = []
        for fact in shipped:
            result = via_tuple.receive(fact, now=1.0, provenance=fact.provenance)
            reports.append(result.report)
            outgoing.extend(result.outgoing)

        assert [
            (o.destination, o.fact.key()) for o in batch_result.outgoing
        ] == [(o.destination, o.fact.key()) for o in outgoing]
        merged = reports[0]
        for report in reports[1:]:
            merged.merge(report)
        assert batch_result.report == merged
        assert via_batch.database.snapshot() == via_tuple.database.snapshot()

    def test_batch_accounting_is_linear_in_the_cost_model(self, compiled_reachable):
        """One merged report charges the same CPU as its per-tuple parts."""
        sender, via_batch, via_tuple = self._engines(compiled_reachable)
        shipped = self._shipped(sender)
        model = CostModel()
        batch_cpu = model.cpu_seconds(via_batch.receive_batch(shipped, now=1.0).report)
        tuple_cpu = sum(
            model.cpu_seconds(
                via_tuple.receive(fact, now=1.0, provenance=fact.provenance).report
            )
            for fact in shipped
        )
        assert batch_cpu == pytest.approx(tuple_cpu)

    def test_rejected_tuples_counted_once_each(self, compiled_reachable):
        receiver = NodeEngine(
            "b", compiled_reachable, EngineConfig(says_mode=SaysMode.SIGNED)
        )
        unsigned = [Fact("link", ("b", "c")), Fact("link", ("b", "d"))]
        result = receiver.receive_batch(unsigned, now=0.0)
        assert result.report.facts_received == 2
        assert result.report.facts_rejected == 2
        assert result.report.facts_inserted == 0
        assert not result.outgoing
