"""Tests for the security substrate: primes, RSA, keystore, says, authenticator."""

from __future__ import annotations

import random

import pytest

from repro.engine.tuples import Fact
from repro.security.authenticator import AuthenticationError, Authenticator
from repro.security.keystore import KeyStore
from repro.security.primes import generate_prime, is_probable_prime
from repro.security.principal import Principal, PrincipalRegistry
from repro.security.rsa import generate_keypair, sign, verify
from repro.security.says import SaysMode


class TestPrimes:
    def test_small_primes_recognised(self):
        for prime in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_probable_prime(prime)

    def test_small_composites_rejected(self):
        for composite in (1, 0, -7, 4, 9, 15, 91, 561, 7917):
            assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat's test but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_generated_prime_has_requested_bits(self):
        rng = random.Random(1)
        prime = generate_prime(64, rng)
        assert prime.bit_length() == 64
        assert is_probable_prime(prime)

    def test_generated_prime_is_odd(self):
        prime = generate_prime(32, random.Random(2))
        assert prime % 2 == 1

    def test_too_small_bit_size_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(1)


class TestRSA:
    @pytest.fixture(scope="class")
    def keypair(self):
        return generate_keypair(bits=128, rng=random.Random(5))

    def test_sign_verify_round_trip(self, keypair):
        message = b"reachable(a,c)"
        signature = sign(message, keypair)
        assert verify(message, signature, keypair.public_key)

    def test_verify_rejects_modified_message(self, keypair):
        signature = sign(b"link(a,b)", keypair)
        assert not verify(b"link(a,c)", signature, keypair.public_key)

    def test_verify_rejects_modified_signature(self, keypair):
        signature = bytearray(sign(b"link(a,b)", keypair))
        signature[0] ^= 0xFF
        assert not verify(b"link(a,b)", bytes(signature), keypair.public_key)

    def test_verify_rejects_wrong_key(self, keypair):
        other = generate_keypair(bits=128, rng=random.Random(6))
        signature = sign(b"link(a,b)", keypair)
        assert not verify(b"link(a,b)", signature, other.public_key)

    def test_signature_has_fixed_size(self, keypair):
        assert len(sign(b"x", keypair)) == keypair.signature_bytes
        assert len(sign(b"a much longer message " * 10, keypair)) == keypair.signature_bytes

    def test_oversized_signature_rejected_cleanly(self, keypair):
        bogus = (keypair.n + 1).to_bytes(keypair.signature_bytes + 2, "big")
        assert not verify(b"x", bogus, keypair.public_key)

    def test_key_generation_is_deterministic_in_seed(self):
        a = generate_keypair(bits=128, rng=random.Random(42))
        b = generate_keypair(bits=128, rng=random.Random(42))
        assert a.n == b.n and a.d == b.d

    def test_tiny_keys_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=32)


class TestKeyStore:
    def test_create_and_lookup(self):
        store = KeyStore(key_bits=128, seed=1)
        keypair = store.create_keypair("alice")
        assert store.has_private_key("alice")
        assert store.public_key("alice") == keypair.public_key

    def test_create_is_idempotent(self):
        store = KeyStore(key_bits=128, seed=1)
        first = store.create_keypair("alice")
        second = store.create_keypair("alice")
        assert first is second

    def test_unknown_keys_raise(self):
        store = KeyStore(key_bits=128, seed=1)
        with pytest.raises(KeyError):
            store.private_key("nobody")
        with pytest.raises(KeyError):
            store.public_key("nobody")

    def test_register_public_key_only(self):
        store = KeyStore(key_bits=128, seed=1)
        other = KeyStore(key_bits=128, seed=2)
        keypair = other.create_keypair("bob")
        store.register_public_key("bob", keypair.public_key)
        assert store.has_public_key("bob")
        assert not store.has_private_key("bob")

    def test_import_directory(self):
        a = KeyStore(key_bits=128, seed=1)
        b = KeyStore(key_bits=128, seed=2)
        a.create_keypair("alice")
        b.import_directory(a)
        assert b.has_public_key("alice")

    def test_signature_bytes(self):
        assert KeyStore(key_bits=128).signature_bytes() == 16
        assert KeyStore(key_bits=256).signature_bytes() == 32


class TestPrincipals:
    def test_registry_assigns_default_level(self):
        registry = PrincipalRegistry(default_level=3)
        principal = registry.register("node1")
        assert principal.security_level == 3

    def test_register_with_explicit_level(self):
        registry = PrincipalRegistry()
        registry.register("trusted", security_level=5)
        assert registry.security_level("trusted") == 5

    def test_get_auto_registers(self):
        registry = PrincipalRegistry()
        assert registry.get("new").name == "new"
        assert "new" in registry

    def test_reregister_keeps_level_unless_overridden(self):
        registry = PrincipalRegistry()
        registry.register("a", security_level=4)
        registry.register("a")
        assert registry.security_level("a") == 4
        registry.register("a", security_level=1)
        assert registry.security_level("a") == 1

    def test_names_and_len(self):
        registry = PrincipalRegistry()
        registry.register_all(["a", "b"])
        assert set(registry.names()) == {"a", "b"}
        assert len(registry) == 2

    def test_principal_str(self):
        assert str(Principal("alice", 2)) == "alice"


class TestSaysMode:
    def test_authenticates_flags(self):
        assert not SaysMode.NONE.authenticates
        assert SaysMode.CLEARTEXT.authenticates
        assert SaysMode.SIGNED.authenticates

    def test_requires_signature(self):
        assert SaysMode.SIGNED.requires_signature
        assert not SaysMode.CLEARTEXT.requires_signature

    def test_header_bytes_ordering(self):
        none = SaysMode.NONE.header_bytes("node1", 64)
        cleartext = SaysMode.CLEARTEXT.header_bytes("node1", 64)
        signed = SaysMode.SIGNED.header_bytes("node1", 64)
        assert none == 0
        assert cleartext == len("node1")
        assert signed == cleartext + 64


class TestAuthenticator:
    @pytest.fixture(scope="class")
    def keystore(self):
        store = KeyStore(key_bits=128, seed=4)
        store.create_all(["a", "b"])
        return store

    def test_signed_export_import_round_trip(self, keystore):
        exporter = Authenticator("a", keystore, SaysMode.SIGNED)
        importer = Authenticator("b", keystore, SaysMode.SIGNED)
        fact = exporter.export_fact(Fact("link", ("a", "b", 1.0)))
        assert importer.import_fact(fact) == fact
        assert exporter.stats.tuples_signed == 1
        assert importer.stats.tuples_verified == 1

    def test_import_rejects_missing_principal(self, keystore):
        importer = Authenticator("b", keystore, SaysMode.SIGNED)
        with pytest.raises(AuthenticationError):
            importer.import_fact(Fact("link", ("a", "b", 1.0)))

    def test_import_rejects_unknown_principal(self, keystore):
        importer = Authenticator("b", keystore, SaysMode.SIGNED)
        fact = Fact("link", ("a", "b", 1.0), asserted_by="stranger", signature=b"x" * 16)
        with pytest.raises(AuthenticationError):
            importer.import_fact(fact)

    def test_import_rejects_bad_signature(self, keystore):
        importer = Authenticator("b", keystore, SaysMode.SIGNED)
        fact = Fact("link", ("a", "b", 1.0), asserted_by="a", signature=b"\x01" * 16)
        with pytest.raises(AuthenticationError):
            importer.import_fact(fact)
        assert importer.stats.verification_failures == 1

    def test_cleartext_mode_attributes_only(self, keystore):
        exporter = Authenticator("a", keystore, SaysMode.CLEARTEXT)
        fact = exporter.export_fact(Fact("link", ("a", "b", 1.0)))
        assert fact.asserted_by == "a"
        assert fact.signature is None

    def test_none_mode_passthrough(self, keystore):
        exporter = Authenticator("a", keystore, SaysMode.NONE)
        importer = Authenticator("b", keystore, SaysMode.NONE)
        fact = Fact("link", ("a", "b", 1.0))
        assert exporter.export_fact(fact) is fact
        assert importer.import_fact(fact) is fact

    def test_wire_overhead_matches_mode(self, keystore):
        fact = Fact("link", ("a", "b", 1.0))
        assert Authenticator("a", keystore, SaysMode.NONE).wire_overhead(fact) == 0
        signed = Authenticator("a", keystore, SaysMode.SIGNED).wire_overhead(fact)
        assert signed == len(b"a") + keystore.signature_bytes()
