"""Golden-diagnostics suite for the NDlog / SeNDlog static analyzer.

One minimal failing fixture per diagnostic code, each asserting the code
*and* the line/column the diagnostic anchors to; CLI exit-code contract;
lint-mode semantics; and property tests that linting never mutates the
program it analyzes.
"""

from __future__ import annotations

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    LintError,
    LintWarning,
    Severity,
    check_program,
    lint_program,
    lint_source,
    parse_program,
)
from repro.datalog.diagnostics import (
    Diagnostic,
    error_count,
    exit_code,
    render_json,
    render_text,
    warning_count,
)
from repro.datalog.errors import ParseError
from repro.datalog.lint import CODES, LINT_MODES
from repro.datalog.lint.cli import main as lint_cli
from repro.datalog.lint.registry import builtin_sources
from repro.security.keystore import KeyStore

# ---------------------------------------------------------------------------
# Golden fixtures: one minimal failing program per diagnostic code, with the
# exact (line, column) its diagnostic must anchor to.
# ---------------------------------------------------------------------------

GOLDEN = {
    # (source, line, column)
    "NDL001": ("r1 foo(@S, D) :-", 1, 17),
    "NDL101": ("r1 foo(@S, D) :- bar(@S, X).", 1, 12),
    "NDL102": ("r1 foo(@S) :- bar(@S), !baz(@S, X).", 1, 33),
    "NDL103": ("r1 foo(@S) :- bar(@S), X > 3.", 1, 24),
    "NDL104": (
        "r1 foo(@S) :- bar(@S), !quux(@S).\n"
        "r2 quux(@S) :- bar(@S), !foo(@S).",
        1,
        24,
    ),
    "NDL105": ("r1 out(@S, D) :- bar(@S, Z), baz(@D, Z).", 1, 30),
    "NDL106": ("r1 foo(@S) :- bar(@S).\nr1 foo(@S) :- baz(@S).", 2, 1),
    "NDL107": ("At P:\ns1 foo(D, S)@X :- bar(S, D).", 2, 14),
    "NDL201": ("r1 foo(@S) :- bar(@S, D).\nr2 foo(@S, D) :- bar(@S, D).", 2, 4),
    "NDL202": (
        "materialize(ghost, infinity, infinity, keys(1)).\n"
        "r1 foo(@S) :- bar(@S).",
        1,
        1,
    ),
    "NDL203": (
        "materialize(bar, infinity, infinity, keys(3)).\n"
        "r1 foo(@S) :- bar(@S, D).",
        1,
        1,
    ),
    "NDL204": ('r1 foo(@S) :- bar(@S, 5).\nr2 foo(@S) :- bar(@S, "x").', 2, 23),
    "NDL205": ('r1 best(@S, sum<C>) :- bar(@S, C).\nr2 bar(@S, "x") :- baz(@S).', 1, 13),
    "NDL301": ("r1 foo(S, D) :- P says bar(S, D).", 1, 17),
    "NDL302": ("At A:\ns1 foo(S, D) :- b says bar(S, D).", 2, 17),
    "NDL303": ("At a:\ns1 foo(D, S)@D :- bar(S, D).", 2, 4),
    "NDL401": ("r1 foo(@S) :- bar(@S).", 1, 4),
    "NDL402": ("r1 foo(@S) :- bar(@S, X).", 1, 23),
    "NDL403": ("r1 foo(X, Y) :- bar(X), baz(Y).", 1, 25),
    "NDL404": ("r1 foo(@S) :- bar(@S, X), X == 3, X == 4.", 1, 35),
}

#: Codes whose fixtures only fire with a keystore in the lint context.
KEYSTORE_CODES = ("NDL302", "NDL303")


def _keystore() -> KeyStore:
    # Principal "a" has a public key but no private (signing) key; principal
    # "b" is entirely unknown — exactly the NDL303 / NDL302 situations.
    store = KeyStore(key_bits=64, seed=7)
    store.register_public_key("a", (3, 5))
    return store


def _lint_fixture(code: str):
    source, _, _ = GOLDEN[code]
    keystore = _keystore() if code in KEYSTORE_CODES else None
    return lint_source(source, keystore=keystore)


class TestGoldenDiagnostics:
    def test_every_code_has_a_fixture(self):
        assert set(GOLDEN) == set(CODES)

    @pytest.mark.parametrize("code", sorted(GOLDEN))
    def test_fixture_fires_at_expected_position(self, code):
        _, line, column = GOLDEN[code]
        hits = [d for d in _lint_fixture(code) if d.code == code]
        assert hits, f"fixture for {code} produced no {code} diagnostic"
        assert (hits[0].line, hits[0].column) == (line, column)

    @pytest.mark.parametrize("code", sorted(GOLDEN))
    def test_fixture_severity_matches_table(self, code):
        severity, _ = CODES[code]
        for hit in (d for d in _lint_fixture(code) if d.code == code):
            assert hit.severity is severity

    @pytest.mark.parametrize("code", sorted(GOLDEN))
    def test_only_registered_codes_are_emitted(self, code):
        assert {d.code for d in _lint_fixture(code)} <= set(CODES)

    def test_diagnostics_carry_rule_label(self):
        hits = [d for d in _lint_fixture("NDL101") if d.code == "NDL101"]
        assert hits[0].rule_label == "r1"

    def test_clean_program_has_no_diagnostics(self):
        source = (
            "materialize(link, infinity, infinity, keys(1,2)).\n"
            "materialize(reachable, infinity, infinity, keys(1,2)).\n"
            "r1 reachable(@S, D) :- link(@S, D).\n"
            "r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).\n"
        )
        assert lint_source(source) == []

    def test_builtin_programs_are_clean(self):
        for name, source in builtin_sources().items():
            diagnostics = lint_source(source, source_name=name)
            assert diagnostics == [], f"{name}: {diagnostics}"

    def test_says_principal_singleton_is_not_flagged(self):
        # The paper's import-from-anyone idiom: W occurs once, as a says
        # principal, and must not trigger the unused-variable warning.
        from repro.queries.reachable import REACHABLE_SENDLOG

        codes = {d.code for d in lint_source(REACHABLE_SENDLOG)}
        assert "NDL402" not in codes

    def test_wildcard_variable_suppresses_ndl402(self):
        flagged = {d.code for d in lint_source("r1 foo(@S) :- bar(@S, X).")}
        wildcarded = {d.code for d in lint_source("r1 foo(@S) :- bar(@S, _X).")}
        assert "NDL402" in flagged
        assert "NDL402" not in wildcarded

    def test_keystore_codes_silent_without_keystore(self):
        for code in KEYSTORE_CODES:
            source, _, _ = GOLDEN[code]
            assert code not in {d.code for d in lint_source(source)}

    def test_materialized_relation_is_not_dead(self):
        source = (
            "materialize(foo, infinity, infinity, keys(1)).\n"
            "r1 foo(@S) :- bar(@S).\n"
        )
        assert "NDL401" not in {d.code for d in lint_source(source)}


class TestLintModes:
    def test_error_mode_raises_on_errors(self):
        program = parse_program(GOLDEN["NDL101"][0])
        with pytest.raises(LintError) as excinfo:
            check_program(program, "error")
        assert any(d.code == "NDL101" for d in excinfo.value.diagnostics)
        assert "NDL101" not in str(excinfo.value) or excinfo.value.diagnostics

    def test_error_mode_silent_on_warnings_only(self):
        program = parse_program(GOLDEN["NDL401"][0])
        diagnostics = check_program(program, "error")
        assert warning_count(diagnostics) >= 1
        assert error_count(diagnostics) == 0

    def test_warn_mode_emits_lint_warnings(self):
        program = parse_program(GOLDEN["NDL101"][0])
        with pytest.warns(LintWarning):
            check_program(program, "warn")

    def test_off_mode_skips(self):
        program = parse_program(GOLDEN["NDL101"][0])
        assert check_program(program, "off") == []

    def test_unknown_mode_rejected(self):
        program = parse_program(GOLDEN["NDL401"][0])
        with pytest.raises(ValueError, match="lint mode"):
            check_program(program, "loud")

    def test_modes_constant(self):
        assert LINT_MODES == ("error", "warn", "off")


class TestRenderers:
    def test_render_text_summary_line(self):
        text = render_text(_lint_fixture("NDL101"))
        assert "error(s)" in text and "NDL101" in text

    def test_render_text_clean(self):
        assert "clean" in render_text([])

    def test_render_json_is_stable_and_parseable(self):
        document = json.loads(render_json(_lint_fixture("NDL101")))
        assert document["errors"] >= 1
        codes = [d["code"] for d in document["diagnostics"]]
        assert "NDL101" in codes
        for entry in document["diagnostics"]:
            assert set(entry) == {
                "code", "severity", "message", "line", "column",
                "end_line", "end_column", "rule", "suggestion", "source",
            }

    def test_exit_code_contract(self):
        errors = _lint_fixture("NDL101")
        warnings_only = [d for d in _lint_fixture("NDL401") if d.is_warning]
        assert exit_code(errors) == 1
        assert exit_code(warnings_only) == 0
        assert exit_code(warnings_only, strict=True) == 1
        assert exit_code([]) == 0


class TestCli:
    def _write(self, tmp_path, name, content):
        path = tmp_path / name
        path.write_text(content, encoding="utf-8")
        return str(path)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "clean.ndlog",
            "materialize(foo, infinity, infinity, keys(1)).\n"
            "r1 foo(@S) :- foo(@S).\n",
        )
        assert lint_cli([path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_error_file_exits_one(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.ndlog", GOLDEN["NDL101"][0])
        assert lint_cli([path]) == 1
        assert "NDL101" in capsys.readouterr().out

    def test_warning_file_exits_zero_unless_strict(self, tmp_path, capsys):
        path = self._write(tmp_path, "warn.ndlog", GOLDEN["NDL401"][0])
        assert lint_cli([path]) == 0
        assert lint_cli(["--strict", path]) == 1
        assert "NDL401" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.ndlog", GOLDEN["NDL101"][0])
        assert lint_cli(["--format=json", path]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["errors"] >= 1
        assert document["diagnostics"][0]["source"] == path

    def test_parse_failure_is_ndl001_not_crash(self, tmp_path, capsys):
        path = self._write(tmp_path, "broken.ndlog", GOLDEN["NDL001"][0])
        assert lint_cli([path]) == 1
        assert "NDL001" in capsys.readouterr().out

    def test_builtin_programs_exit_zero(self, capsys):
        assert lint_cli(["--builtin", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_no_input_is_usage_error(self, capsys):
        assert lint_cli([]) == 2

    def test_unreadable_file_is_usage_error(self, tmp_path, capsys):
        assert lint_cli([str(tmp_path / "missing.ndlog")]) == 2

    def test_codes_table(self, capsys):
        assert lint_cli(["--codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out


class TestLintNeverMutates:
    @pytest.mark.parametrize("code", sorted(set(GOLDEN) - {"NDL001"}))
    def test_fixtures_unchanged_by_linting(self, code):
        source, _, _ = GOLDEN[code]
        program = parse_program(source)
        snapshot = copy.deepcopy(program)
        keystore = _keystore() if code in KEYSTORE_CODES else None
        lint_program(program, keystore=keystore)
        assert program == snapshot

    @given(
        st.lists(
            st.sampled_from(
                [
                    "r1 reachable(@S, D) :- link(@S, D).",
                    "r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).",
                    "r3 foo(@S, D) :- bar(@S, X).",
                    "r4 foo(@S) :- bar(@S), X > 3.",
                    "r5 out(@S, D) :- bar(@S, Z), baz(@D, Z).",
                    "r6 foo(@S) :- bar(@S, X), X == 3, X == 4.",
                    'r7 foo(@S) :- bar(@S, "x").',
                    "r8 cost(@S, min<C>) :- hop(@S, C).",
                ]
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_linting_arbitrary_programs_never_mutates(self, rule_sources):
        source = "\n".join(rule_sources)
        try:
            program = parse_program(source)
        except ParseError:
            return
        snapshot = copy.deepcopy(program)
        lint_program(program)
        assert program == snapshot

    def test_repeated_lint_is_deterministic(self):
        program = parse_program(GOLDEN["NDL404"][0])
        first = lint_program(program)
        second = lint_program(program)
        assert first == second


class TestNetworkBuildLint:
    # A program the compiler accepts but the linter rejects: duplicate rule
    # labels corrupt provenance attribution yet compile fine.
    DUPLICATE_LABELS = (
        "materialize(link, infinity, infinity, keys(1,2)).\n"
        "materialize(reachable, infinity, infinity, keys(1,2)).\n"
        "r1 reachable(@S, D) :- link(@S, D).\n"
        "r1 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).\n"
    )

    def test_build_rejects_error_diagnostics_by_default(self):
        from repro.api import Network

        with pytest.raises(LintError) as excinfo:
            Network.build(topology=2, program=self.DUPLICATE_LABELS,
                          provenance="ndlog")
        assert any(d.code == "NDL106" for d in excinfo.value.diagnostics)

    def test_build_lint_off_accepts_the_same_program(self):
        from repro.api import Network

        network = Network.build(
            topology=2, program=self.DUPLICATE_LABELS, provenance="ndlog",
            lint="off", key_bits=64,
        )
        assert network.options.lint == "off"

    def test_build_lint_warn_emits_warnings(self):
        from repro.api import Network

        with pytest.warns(LintWarning):
            Network.build(
                topology=2, program=self.DUPLICATE_LABELS, provenance="ndlog",
                lint="warn", key_bits=64,
            )

    def test_netoptions_validates_lint_mode(self):
        from repro.api.options import NetOptions

        with pytest.raises(ValueError, match="lint"):
            NetOptions(lint="loud")
        assert NetOptions().lint == "error"

    def test_named_programs_build_under_default_lint(self):
        from repro.api import Network

        network = Network.build(topology=2, program="reachable",
                                provenance="ndlog", key_bits=64)
        assert network.options.lint == "error"


class TestDiagnosticType:
    def test_location_rendering(self):
        anchored = Diagnostic(
            code="NDL999", severity=Severity.ERROR, message="m", line=3, column=7
        )
        floating = Diagnostic(code="NDL999", severity=Severity.ERROR, message="m")
        assert anchored.location() == "<program>:3:7"
        assert floating.location() == "<program>"

    def test_sorting_is_by_position(self):
        early = Diagnostic(
            code="NDL101", severity=Severity.ERROR, message="a", line=1, column=2
        )
        late = Diagnostic(
            code="NDL101", severity=Severity.ERROR, message="a", line=5, column=1
        )
        from repro.datalog.diagnostics import sort_diagnostics

        assert sort_diagnostics([late, early]) == [early, late]
