"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datalog.planner import CompiledProgram
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.topology import (
    Topology,
    line_topology,
    paper_example_topology,
    random_topology,
)
from repro.queries.best_path import compile_best_path
from repro.security.keystore import KeyStore
from repro.security.says import SaysMode


@pytest.fixture(scope="session")
def compiled_best_path() -> CompiledProgram:
    """The localized, compiled Best-Path query (shared; it is immutable)."""
    return compile_best_path()


@pytest.fixture(scope="session")
def small_topology() -> Topology:
    """A small random topology matching the paper's workload parameters."""
    return random_topology(node_count=8, average_outdegree=3.0, seed=11)


@pytest.fixture(scope="session")
def chain_topology() -> Topology:
    """A 5-node bidirectional chain, convenient for multi-hop assertions."""
    return line_topology(5)


@pytest.fixture(scope="session")
def three_node_topology() -> Topology:
    """The paper's Section 4 example: nodes a, b, c with three links."""
    return paper_example_topology()


@pytest.fixture(scope="session")
def shared_keystore() -> KeyStore:
    """A keystore with small keys so signing-heavy tests stay fast."""
    store = KeyStore(key_bits=128, seed=3)
    store.create_all(["alice", "bob", "carol", "n0", "n1", "n2", "n3", "n4"])
    return store


@pytest.fixture
def ndlog_config() -> EngineConfig:
    return EngineConfig(says_mode=SaysMode.NONE, provenance_mode=ProvenanceMode.NONE)


@pytest.fixture
def sendlog_config() -> EngineConfig:
    return EngineConfig(says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.NONE)


@pytest.fixture
def sendlogprov_config() -> EngineConfig:
    return EngineConfig(
        says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
    )
