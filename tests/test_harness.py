"""Tests for the experiment harness (workload, runner, figures, overhead tables)."""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    figure3_series,
    figure4_series,
    overhead_table,
    render_overhead_table,
    render_series,
    sweep,
)
from repro.harness.runner import (
    CONFIGURATIONS,
    engine_config,
    run_best_path,
    run_configuration,
)
from repro.harness.workload import (
    PAPER_AVERAGE_OUTDEGREE,
    PAPER_NODE_COUNTS,
    best_path_workload,
    evaluation_topology,
)
from repro.net.kernel import CostModel


class TestWorkload:
    def test_paper_sweep_definition(self):
        assert PAPER_NODE_COUNTS[0] == 10 and PAPER_NODE_COUNTS[-1] == 100
        assert PAPER_AVERAGE_OUTDEGREE == 3.0

    def test_evaluation_topology_parameters(self):
        topology = evaluation_topology(20, seed=1)
        assert topology.node_count == 20
        assert abs(topology.average_outdegree() - 3.0) < 0.3

    def test_workload_places_links_at_their_source(self):
        topology = evaluation_topology(10, seed=1)
        workload = best_path_workload(topology)
        assert sum(len(facts) for facts in workload.values()) == topology.link_count
        for node, facts in workload.items():
            assert all(fact.values[0] == node for fact in facts)


class TestRunner:
    def test_configuration_names(self):
        assert set(CONFIGURATIONS) == {"NDLog", "SeNDLog", "SeNDLogProv"}

    def test_engine_config_mapping(self):
        from repro.engine.node_engine import ProvenanceMode
        from repro.security.says import SaysMode

        assert engine_config("NDLog").says_mode is SaysMode.NONE
        assert engine_config("SeNDLog").says_mode is SaysMode.SIGNED
        prov = engine_config("SeNDLogProv")
        assert prov.says_mode is SaysMode.SIGNED
        assert prov.provenance_mode is ProvenanceMode.CONDENSED
        with pytest.raises(ValueError):
            engine_config("Unknown")

    def test_run_configuration_row(self, compiled_best_path):
        # The legacy shim still works — under a DeprecationWarning pointing
        # at repro.api (asserted in detail in test_deprecations.py).
        with pytest.warns(DeprecationWarning):
            row = run_configuration(
                "NDLog", node_count=8, seed=1, compiled=compiled_best_path
            )
        assert row.converged
        assert row.best_paths == 8 * 7
        assert row.completion_time_s > 0
        assert row.bandwidth_mb > 0
        assert row.security_bytes == 0 and row.provenance_bytes == 0
        assert set(row.as_dict()) >= {"configuration", "node_count", "bandwidth_mb"}

    def test_secure_configuration_records_overhead_bytes(self, compiled_best_path):
        with pytest.warns(DeprecationWarning):
            row = run_configuration(
                "SeNDLogProv", node_count=8, seed=1, compiled=compiled_best_path
            )
        assert row.security_bytes > 0
        assert row.provenance_bytes > 0

    def test_run_best_path_accepts_custom_cost_model(self, compiled_best_path, small_topology):
        with pytest.warns(DeprecationWarning):
            result = run_best_path(
                small_topology,
                "NDLog",
                compiled=compiled_best_path,
                cost_model=CostModel(seconds_per_rule_firing=0.0),
            )
        assert result.converged


class TestExperiments:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return sweep(node_counts=(6, 10), seeds=(0,))

    def test_sweep_covers_all_points(self, small_sweep):
        assert len(small_sweep.rows) == 2 * 3
        assert small_sweep.node_counts() == (6, 10)
        assert small_sweep.configurations() == ("NDLog", "SeNDLog", "SeNDLogProv")

    def test_figure3_series_shape(self, small_sweep):
        series = figure3_series(small_sweep)
        assert set(series) == {"NDLog", "SeNDLog", "SeNDLogProv"}
        for points in series.values():
            assert [n for n, _ in points] == [6, 10]
            assert all(value > 0 for _, value in points)

    def test_figure3_ordering_matches_paper(self, small_sweep):
        series = figure3_series(small_sweep)
        for i in range(2):
            assert series["NDLog"][i][1] < series["SeNDLog"][i][1] < series["SeNDLogProv"][i][1]

    def test_figure4_ordering_matches_paper(self, small_sweep):
        series = figure4_series(small_sweep)
        for i in range(2):
            assert series["NDLog"][i][1] < series["SeNDLog"][i][1] < series["SeNDLogProv"][i][1]

    def test_completion_time_and_bandwidth_grow_with_n(self, small_sweep):
        for series in (figure3_series(small_sweep), figure4_series(small_sweep)):
            for points in series.values():
                assert points[1][1] > points[0][1]

    def test_overhead_table_structure(self, small_sweep):
        table = overhead_table(small_sweep)
        assert set(table) == {"SeNDLog_vs_NDLog", "SeNDLogProv_vs_SeNDLog"}
        for row in table.values():
            assert row["avg_time_overhead_pct"] > 0
            assert row["avg_bandwidth_overhead_pct"] > 0

    def test_render_series_text(self, small_sweep):
        text = render_series(figure3_series(small_sweep), "Figure 3", "seconds")
        assert "Figure 3" in text
        assert "NDLog" in text and "SeNDLogProv" in text

    def test_render_overhead_table_text(self, small_sweep):
        text = render_overhead_table(overhead_table(small_sweep))
        assert "SeNDLog vs NDLog" in text
        assert "%" in text

    def test_mean_unknown_point_raises(self, small_sweep):
        with pytest.raises(KeyError):
            small_sweep.mean("NDLog", 999, "bandwidth_mb")
