"""Tests for rule compilation into executable plans."""

from __future__ import annotations

import pytest

from repro.datalog.ast import Variable
from repro.datalog.errors import PlanError
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.planner import compile_program, compile_rule
from repro.datalog.rewrite import localize_program
from repro.queries.best_path import BEST_PATH_NDLOG, compile_best_path


class TestCompileRule:
    def test_simple_rule_plan(self):
        plan = compile_rule(parse_rule("r1 reachable(@S, D) :- link(@S, D)."))
        assert plan.label == "r1"
        assert plan.head.predicate == "reachable"
        assert [b.predicate for b in plan.body_atoms] == ["link"]
        assert plan.expressions == ()

    def test_unlocalized_rule_rejected(self):
        rule = parse_rule("r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).")
        with pytest.raises(PlanError):
            compile_rule(rule)

    def test_destination_from_head_location(self):
        plan = compile_rule(parse_rule("r1 reachable(@S, D) :- link(@S, D)."))
        assert plan.head.destination == Variable("S")

    def test_destination_from_ship_to(self):
        plan = compile_rule(parse_rule("s2 linkD(D, S)@D :- link(S, D)."))
        assert plan.head.destination == Variable("D")

    def test_no_destination_when_unlocated(self):
        plan = compile_rule(parse_rule("s1 reachable(S, D) :- link(S, D)."))
        assert plan.head.destination is None

    def test_aggregate_metadata(self):
        plan = compile_rule(
            parse_rule("p3 bestPathCost(@S, D, min<C>) :- path(@S, D, P, C).")
        )
        assert plan.head.has_aggregate
        assert plan.head.aggregate_index == 2
        assert plan.head.aggregate.function == "min"
        assert plan.head.group_by_indexes == (0, 1)

    def test_two_aggregates_rejected(self):
        rule = parse_rule("p x(@S, min<C>, max<C>) :- path(@S, D, P, C).")
        with pytest.raises(PlanError):
            compile_rule(rule)

    def test_says_principal_recorded(self):
        plan = compile_rule(parse_rule("s p(X) :- alice says q(X)."))
        assert plan.body_atoms[0].says_principal is not None

    def test_expressions_separated_from_atoms(self):
        plan = compile_rule(
            parse_rule("p1 path(@S, D, P, C) :- link(@S, D, C), P := f_init(S, D).")
        )
        assert len(plan.body_atoms) == 1
        assert len(plan.expressions) == 1

    def test_negated_atoms_not_triggers(self):
        plan = compile_rule(parse_rule("r p(@S) :- q(@S), !blocked(@S)."))
        assert plan.trigger_indexes("blocked") == ()
        assert plan.trigger_indexes("q") == (0,)
        assert len(plan.negative_atoms()) == 1


class TestCompileProgram:
    def test_facts_are_not_compiled_into_plans(self):
        program = parse_program("f1 link(a, b, 1).\nr1 reachable(@S, D) :- link(@S, D, C).")
        compiled = compile_program(program)
        assert len(compiled.plans) == 1

    def test_trigger_index_covers_every_body_predicate(self):
        compiled = compile_best_path()
        assert compiled.plans_triggered_by("link")
        assert compiled.plans_triggered_by("bestPath")
        assert compiled.plans_triggered_by("path")
        assert compiled.plans_triggered_by("unknown") == ()

    def test_plans_for_head(self):
        compiled = compile_best_path()
        assert len(compiled.plans_for_head("path")) == 2
        assert len(compiled.plans_for_head("bestPathCost")) == 1

    def test_self_join_rule_triggers_twice(self):
        program = localize_program(
            parse_program("r twohop(@S, D) :- link(@S, Z, C1), link(@S, D, C2).")
        )
        compiled = compile_program(program)
        plan = compiled.plans[0]
        assert plan.trigger_indexes("link") == (0, 1)

    def test_best_path_plan_count(self, compiled_best_path):
        assert len(compiled_best_path.plans) == 5
