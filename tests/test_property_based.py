"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.provenance.bdd import BDDManager
from repro.provenance.polynomial import ProvenanceExpression, p_product, p_sum, p_var
from repro.provenance.pruning import ASAggregator
from repro.provenance.quantify import trust_level
from repro.provenance.semiring import BOOLEAN, COUNTING, TRUST
from repro.datalog.catalog import RelationSchema
from repro.engine.table import Table
from repro.engine.tuples import Fact
from repro.net.topology import random_topology
from repro.security.rsa import generate_keypair, sign, verify

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

VARIABLES = st.sampled_from(["a", "b", "c", "d", "e"])


@st.composite
def provenance_expressions(draw, max_terms: int = 4, max_factors: int = 3):
    """Random monotone provenance expressions over a small variable pool."""
    terms = draw(st.integers(min_value=1, max_value=max_terms))
    expression = ProvenanceExpression.zero()
    for _ in range(terms):
        factors = draw(st.lists(VARIABLES, min_size=1, max_size=max_factors))
        term = ProvenanceExpression.one()
        for name in factors:
            term = term * p_var(name)
        expression = expression + term
    return expression


def boolean_assignments(variables):
    return st.fixed_dictionaries({name: st.booleans() for name in sorted(variables)})


# ---------------------------------------------------------------------------
# Provenance polynomial laws
# ---------------------------------------------------------------------------

class TestPolynomialProperties:
    @given(provenance_expressions(), provenance_expressions())
    def test_addition_commutative(self, x, y):
        assert x + y == y + x

    @given(provenance_expressions(), provenance_expressions())
    def test_multiplication_commutative(self, x, y):
        assert x * y == y * x

    @given(provenance_expressions(), provenance_expressions(), provenance_expressions())
    def test_addition_associative(self, x, y, z):
        assert (x + y) + z == x + (y + z)

    @given(provenance_expressions(), provenance_expressions(), provenance_expressions())
    def test_multiplication_associative(self, x, y, z):
        assert (x * y) * z == x * (y * z)

    @given(provenance_expressions(), provenance_expressions(), provenance_expressions())
    def test_distributivity(self, x, y, z):
        assert x * (y + z) == (x * y) + (x * z)

    @given(provenance_expressions())
    def test_identities(self, x):
        assert x + ProvenanceExpression.zero() == x
        assert x * ProvenanceExpression.one() == x
        assert (x * ProvenanceExpression.zero()).is_zero

    @given(provenance_expressions())
    def test_condense_idempotent(self, x):
        assert x.condense().condense() == x.condense()

    @given(provenance_expressions())
    def test_condense_never_grows(self, x):
        assert x.condense().serialized_size() <= x.serialized_size()

    @given(provenance_expressions(), st.data())
    def test_condense_preserves_boolean_semantics(self, x, data):
        assignment = data.draw(boolean_assignments(x.variables() or {"a"}))
        assert x.evaluate(BOOLEAN, assignment) == x.condense().evaluate(BOOLEAN, assignment)

    @given(provenance_expressions(), st.data())
    def test_trust_of_condensed_never_lower(self, x, data):
        """Absorption removes only weaker-or-equal derivations, so the trust
        level of the condensed expression equals the original's."""
        levels = data.draw(
            st.fixed_dictionaries(
                {name: st.integers(min_value=0, max_value=5) for name in sorted(x.variables() or {"a"})}
            )
        )
        assert trust_level(x.condense(), levels) == trust_level(x, levels)

    @given(provenance_expressions())
    def test_counting_evaluation_counts_monomials(self, x):
        count = x.evaluate(COUNTING, {name: 1 for name in x.variables()})
        assert count == sum(multiplicity for _, multiplicity in x.monomials)


# ---------------------------------------------------------------------------
# BDD properties
# ---------------------------------------------------------------------------

class TestBDDProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(provenance_expressions(), st.data())
    def test_bdd_agrees_with_polynomial_on_all_assignments(self, expression, data):
        manager = BDDManager()
        bdd = manager.from_expression(expression)
        assignment = data.draw(boolean_assignments(expression.variables() or {"a"}))
        assert bdd.evaluate(assignment) == expression.evaluate(BOOLEAN, assignment)

    @settings(deadline=None)
    @given(provenance_expressions())
    def test_bdd_round_trip_equals_condensed(self, expression):
        manager = BDDManager()
        assert manager.to_expression(manager.from_expression(expression)) == expression.condense()

    @settings(deadline=None)
    @given(provenance_expressions(), provenance_expressions())
    def test_bdd_canonicity(self, x, y):
        """Structural equality of BDDs coincides with boolean equivalence."""
        manager = BDDManager()
        bdd_x, bdd_y = manager.from_expression(x), manager.from_expression(y)
        variables = sorted(x.variables() | y.variables())
        equivalent = True
        for bits in range(1 << len(variables)):
            assignment = {
                name: bool(bits >> i & 1) for i, name in enumerate(variables)
            }
            if x.evaluate(BOOLEAN, assignment) != y.evaluate(BOOLEAN, assignment):
                equivalent = False
                break
        assert (bdd_x == bdd_y) == equivalent

    @settings(deadline=None)
    @given(provenance_expressions())
    def test_de_morgan(self, x):
        manager = BDDManager()
        bdd = manager.from_expression(x)
        other = manager.from_expression(p_var("a"))
        assert ~(bdd & other) == (~bdd | ~other)
        assert ~(bdd | other) == (~bdd & ~other)


# ---------------------------------------------------------------------------
# AS aggregation
# ---------------------------------------------------------------------------

class TestAggregationProperties:
    @given(provenance_expressions())
    def test_as_aggregation_maps_sources(self, expression):
        aggregator = ASAggregator({"a": "AS1", "b": "AS1", "c": "AS2", "d": "AS2", "e": "AS3"})
        aggregated = aggregator.aggregate_expression(expression)
        expected_sources = {aggregator.as_of(v) for v in expression.variables()}
        assert aggregated.variables() <= expected_sources


# ---------------------------------------------------------------------------
# Soft-state table invariants
# ---------------------------------------------------------------------------

class TestTableProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.sampled_from("abcde"), st.integers(0, 5)),
            max_size=30,
        )
    )
    def test_key_semantics_one_row_per_key(self, rows):
        table = Table(RelationSchema(name="t", arity=3, keys=(0, 1)))
        for row in rows:
            table.insert(Fact("t", row))
        keys = [(fact.values[0], fact.values[1]) for fact in table]
        assert len(keys) == len(set(keys))
        # The stored row for each key is the last one inserted for that key.
        last = {}
        for row in rows:
            last[(row[0], row[1])] = row
        assert {fact.values for fact in table} == set(last.values())

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.floats(0.5, 5.0)), min_size=1, max_size=30
        ),
        st.floats(min_value=0.0, max_value=30.0),
    )
    def test_expiry_never_keeps_expired_facts(self, rows, now):
        table = Table(RelationSchema(name="t", arity=3))
        for index, (timestamp, ttl) in enumerate(rows):
            table.insert(Fact("t", ("x", index, index), timestamp=float(timestamp), ttl=ttl))
        table.expire(now)
        assert all(not fact.is_expired(now) for fact in table)

    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.sampled_from("abc"), st.integers(0, 3)),
            max_size=25,
        ),
        st.integers(0, 2),
    )
    def test_index_lookup_agrees_with_scan(self, rows, column):
        table = Table(RelationSchema(name="t", arity=3))
        for row in rows:
            table.insert(Fact("t", row))
        for value in "abc" if column < 2 else range(4):
            via_index = set(f.values for f in table.lookup([column], [value]))
            via_scan = {f.values for f in table if f.values[column] == value}
            assert via_index == via_scan


# ---------------------------------------------------------------------------
# RSA and topology
# ---------------------------------------------------------------------------

class TestSecurityProperties:
    KEY = generate_keypair(bits=128, rng=random.Random(99))

    @settings(deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_sign_verify_round_trip(self, message):
        signature = sign(message, self.KEY)
        assert verify(message, signature, self.KEY.public_key)

    @settings(deadline=None)
    @given(st.binary(min_size=1, max_size=100), st.binary(min_size=1, max_size=100))
    def test_signature_does_not_transfer_between_messages(self, first, second):
        if first == second:
            return
        signature = sign(first, self.KEY)
        assert not verify(second, signature, self.KEY.public_key)


class TestTopologyProperties:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10_000))
    def test_random_topologies_are_strongly_connected(self, node_count, seed):
        topology = random_topology(node_count, seed=seed)
        assert topology.is_strongly_connected()

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=4, max_value=60), st.integers(min_value=0, max_value=10_000))
    def test_average_outdegree_close_to_three(self, node_count, seed):
        topology = random_topology(node_count, seed=seed)
        assert 2.0 <= topology.average_outdegree() <= 3.5
