"""Tests for delta-driven evaluation and the single-site fixpoint."""

from __future__ import annotations

import pytest

from repro.datalog.catalog import Catalog
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.planner import compile_program, compile_rule
from repro.datalog.rewrite import localize_program
from repro.engine.database import Database
from repro.engine.seminaive import (
    apply_expression,
    evaluate_plan_with_delta,
    evaluate_program,
    evaluate_term,
    unify_atom,
)
from repro.engine.tuples import Fact
from repro.queries.best_path import BEST_PATH_NDLOG
from repro.queries.reachable import REACHABLE_LOCALIZED


def make_database(source: str) -> Database:
    return Database(Catalog.from_program(parse_program(source)))


class TestUnification:
    def test_unify_atom_binds_variables(self):
        rule = parse_rule("r1 reachable(@S, D) :- link(@S, D).")
        bindings = unify_atom(rule.body[0], Fact("link", ("a", "b")), {})
        assert bindings == {"S": "a", "D": "b"}

    def test_unify_respects_existing_bindings(self):
        rule = parse_rule("r1 reachable(@S, D) :- link(@S, D).")
        assert unify_atom(rule.body[0], Fact("link", ("a", "b")), {"S": "a"}) is not None
        assert unify_atom(rule.body[0], Fact("link", ("a", "b")), {"S": "z"}) is None

    def test_unify_constant_mismatch(self):
        rule = parse_rule("r p(X) :- q(X, 3).")
        assert unify_atom(rule.body[0], Fact("q", ("a", 3)), {}) is not None
        assert unify_atom(rule.body[0], Fact("q", ("a", 4)), {}) is None

    def test_unify_repeated_variable(self):
        rule = parse_rule("r selfloop(X) :- link(X, X).")
        assert unify_atom(rule.body[0], Fact("link", ("a", "a")), {}) is not None
        assert unify_atom(rule.body[0], Fact("link", ("a", "b")), {}) is None

    def test_wrong_relation_or_arity(self):
        rule = parse_rule("r p(X) :- q(X, Y).")
        assert unify_atom(rule.body[0], Fact("other", ("a", "b")), {}) is None
        assert unify_atom(rule.body[0], Fact("q", ("a",)), {}) is None


class TestExpressions:
    def test_evaluate_function_term(self):
        rule = parse_rule("r p(S, P) :- q(S, P2), P := f_concat(S, P2).")
        value = evaluate_term(rule.body[1].expression, {"S": "a", "P2": ("b", "c")})
        assert value == ("a", "b", "c")

    def test_apply_comparison(self):
        rule = parse_rule("r p(S) :- q(S, C), C < 10.")
        assert apply_expression(rule.body[1], {"C": 5}) is not None
        assert apply_expression(rule.body[1], {"C": 15}) is None

    def test_apply_assignment_binds(self):
        rule = parse_rule("r p(S, C) :- q(S, A), C := A + 1.")
        bindings = apply_expression(rule.body[1], {"A": 2})
        assert bindings["C"] == 3

    def test_assignment_to_already_bound_variable_checks_equality(self):
        rule = parse_rule("r p(S, C) :- q(S, A), C := A + 1.")
        assert apply_expression(rule.body[1], {"A": 2, "C": 3}) is not None
        assert apply_expression(rule.body[1], {"A": 2, "C": 4}) is None


class TestDeltaEvaluation:
    def test_single_atom_rule_fires(self):
        plan = compile_rule(parse_rule("r1 reachable(@S, D) :- link(@S, D)."))
        database = make_database("r1 reachable(@S, D) :- link(@S, D).")
        firings = evaluate_plan_with_delta(plan, database, Fact("link", ("a", "b")), 0)
        assert len(firings) == 1
        assert firings[0].head_values == ("a", "b")
        assert firings[0].destination == "a"

    def test_join_against_stored_table(self):
        source = "l3 reachable(@S, D) :- linkd(@Z, S), reachable(@Z, D)."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        database.insert(Fact("reachable", ("z", "d")))
        firings = evaluate_plan_with_delta(plan, database, Fact("linkd", ("z", "s")), 0)
        assert len(firings) == 1
        assert firings[0].head_values == ("s", "d")
        # The antecedents list the delta first, then the joined facts.
        assert firings[0].antecedents[0].relation == "linkd"
        assert firings[0].antecedents[1].relation == "reachable"

    def test_no_firing_when_join_partner_missing(self):
        source = "l3 reachable(@S, D) :- linkd(@Z, S), reachable(@Z, D)."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        firings = evaluate_plan_with_delta(plan, database, Fact("linkd", ("z", "s")), 0)
        assert firings == []

    def test_expressions_filter_firings(self):
        source = "r p(@S, C) :- q(@S, C), C < 10."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        assert evaluate_plan_with_delta(plan, database, Fact("q", ("a", 5)), 0)
        assert not evaluate_plan_with_delta(plan, database, Fact("q", ("a", 50)), 0)

    def test_negated_atom_blocks_firing(self):
        source = "r p(@S) :- q(@S), !blocked(@S)."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        database.insert(Fact("blocked", ("a",)))
        assert not evaluate_plan_with_delta(plan, database, Fact("q", ("a",)), 0)
        assert evaluate_plan_with_delta(plan, database, Fact("q", ("b",)), 0)

    def test_says_requirement_checks_asserted_by(self):
        source = "s p(@S, D) :- W says link(@S, D)."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        unsigned = Fact("link", ("a", "b"))
        signed = Fact("link", ("a", "b"), asserted_by="w")
        assert not evaluate_plan_with_delta(plan, database, unsigned, 0)
        firings = evaluate_plan_with_delta(plan, database, signed, 0)
        assert len(firings) == 1
        assert firings[0].bindings["W"] == "w"

    def test_says_constant_principal_must_match(self):
        source = "s p(@S, D) :- alice says link(@S, D)."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        assert evaluate_plan_with_delta(
            plan, database, Fact("link", ("a", "b"), asserted_by="alice"), 0
        )
        assert not evaluate_plan_with_delta(
            plan, database, Fact("link", ("a", "b"), asserted_by="mallory"), 0
        )

    def test_soft_state_expired_partners_ignored(self):
        source = "l3 reachable(@S, D) :- linkd(@Z, S), reachable(@Z, D)."
        plan = compile_rule(parse_rule(source))
        database = make_database(source)
        database.insert(Fact("reachable", ("z", "d"), timestamp=0.0, ttl=1.0))
        firings = evaluate_plan_with_delta(
            plan, database, Fact("linkd", ("z", "s")), 0, now=5.0
        )
        assert firings == []


class TestFixpoint:
    def test_transitive_closure_on_a_chain(self):
        compiled = compile_program(parse_program(REACHABLE_LOCALIZED))
        database = Database(Catalog.from_program(compiled.program))
        base = [
            Fact("link", ("a", "b")),
            Fact("link", ("b", "c")),
            Fact("link", ("c", "d")),
        ]
        result = evaluate_program(compiled, database, base)
        reachable = {fact.values for fact in result.facts("reachable")}
        assert ("a", "d") in reachable
        assert ("b", "d") in reachable
        assert ("d", "a") not in reachable
        assert len(reachable) == 6

    def test_cycle_terminates(self):
        compiled = compile_program(parse_program(REACHABLE_LOCALIZED))
        database = Database(Catalog.from_program(compiled.program))
        base = [Fact("link", ("a", "b")), Fact("link", ("b", "a"))]
        result = evaluate_program(compiled, database, base)
        reachable = {fact.values for fact in result.facts("reachable")}
        assert reachable == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_best_path_single_site(self):
        compiled = compile_program(localize_program(parse_program(BEST_PATH_NDLOG)))
        database = Database(Catalog.from_program(compiled.program))
        base = [
            Fact("link", ("a", "b", 1.0)),
            Fact("link", ("b", "c", 1.0)),
            Fact("link", ("a", "c", 5.0)),
        ]
        result = evaluate_program(compiled, database, base)
        best = {
            (fact.values[0], fact.values[1]): fact.values
            for fact in result.facts("bestPath")
        }
        # The two-hop route a-b-c (cost 2) beats the direct link (cost 5).
        assert best[("a", "c")][3] == 2.0
        assert best[("a", "c")][2] == ("a", "b", "c")

    def test_derivations_recorded_for_every_insert(self):
        compiled = compile_program(parse_program(REACHABLE_LOCALIZED))
        database = Database(Catalog.from_program(compiled.program))
        result = evaluate_program(compiled, database, [Fact("link", ("a", "b"))])
        stored = sum(len(t) for t in database.tables())
        assert len(result.derivations) == stored
