"""Tests for online/offline stores, authenticated provenance, quantification,
taxonomy and the Section 5 optimizations."""

from __future__ import annotations

import pytest

from repro.engine.tuples import Derivation, Fact
from repro.provenance.authenticated import (
    AuthenticatedProvenance,
    ProvenanceVerificationError,
    SignedAnnotation,
    sign_annotation,
    verify_annotation,
)
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.graph import DerivationGraph
from repro.provenance.polynomial import p_product, p_sum, p_var
from repro.provenance.pruning import (
    ASAggregator,
    MaintenanceMode,
    ProvenanceSampler,
    ReactiveProvenanceBuffer,
    grouped_by_as,
)
from repro.provenance.quantify import (
    accept_by_trust_level,
    accept_by_vote,
    count_derivations,
    trust_level,
    vote_principals,
)
from repro.provenance.store import OfflineProvenanceArchive, OnlineProvenanceStore
from repro.provenance.taxonomy import (
    LifetimeAxis,
    ProvenanceAxes,
    StorageAxis,
    UseCase,
    all_recommendations,
    recommend_provenance,
)
from repro.security.keystore import KeyStore
from repro.security.principal import PrincipalRegistry


ROUTE = Fact("bestPath", ("a", "c", ("a", "b", "c"), 2.0), timestamp=0.0, ttl=10.0)
LINK = Fact("link", ("a", "b"), asserted_by="a")
DERIVATION = Derivation(fact=ROUTE, rule_label="p4", node="a", antecedents=(LINK,), timestamp=0.0)


class TestOnlineStore:
    def test_record_and_lookup(self):
        store = OnlineProvenanceStore("a")
        store.record(DERIVATION)
        assert ROUTE.key() in store
        assert len(store.entries(ROUTE.key())) == 1

    def test_expire_follows_tuple_ttl(self):
        store = OnlineProvenanceStore("a")
        store.record(DERIVATION)
        assert store.expire(now=5.0) == []
        dropped = store.expire(now=10.0)
        assert len(dropped) == 1
        assert ROUTE.key() not in store

    def test_dependents_and_cascade_delete(self):
        store = OnlineProvenanceStore("a")
        store.record(DERIVATION)
        downstream = Fact("forwarding", ("a", "c"))
        store.record(Derivation(fact=downstream, rule_label="f", node="a", antecedents=(ROUTE,)))
        assert downstream.key() in store.dependents_of(ROUTE.key())
        dependents = store.delete(ROUTE.key())
        assert downstream.key() in dependents
        assert ROUTE.key() not in store

    def test_len(self):
        store = OnlineProvenanceStore("a")
        store.record(DERIVATION)
        store.record(DERIVATION)
        assert len(store) == 2


class TestOfflineArchive:
    def test_entries_survive_expiry(self):
        archive = OfflineProvenanceArchive("a")
        archive.record(DERIVATION)
        # The archive has no notion of tuple expiry: entries stay queryable.
        assert len(archive.entries(ROUTE.key())) == 1

    def test_time_window_query(self):
        archive = OfflineProvenanceArchive("a")
        early = Derivation(fact=ROUTE, rule_label="p4", node="a", timestamp=1.0)
        late = Derivation(fact=ROUTE, rule_label="p4", node="a", timestamp=100.0)
        archive.record(early)
        archive.record(late)
        assert len(archive.entries_between(0.0, 10.0)) == 1
        assert len(archive.entries_between(0.0, 200.0)) == 2

    def test_age_out_respects_retention_and_pins(self):
        archive = OfflineProvenanceArchive("a", retention=50.0)
        index_old = archive.record(Derivation(fact=ROUTE, rule_label="p4", node="a", timestamp=0.0))
        archive.record(Derivation(fact=ROUTE, rule_label="p4", node="a", timestamp=90.0))
        pinned = archive.record(Derivation(fact=LINK, rule_label="base", node="a", timestamp=1.0))
        archive.pin(pinned)
        dropped = archive.age_out(now=100.0)
        assert dropped == 1  # the old unpinned entry
        assert len(archive) == 2

    def test_no_retention_never_ages(self):
        archive = OfflineProvenanceArchive("a")
        archive.record(DERIVATION)
        assert archive.age_out(now=1e9) == 0

    def test_storage_bytes_positive_and_grows(self):
        archive = OfflineProvenanceArchive("a")
        archive.record(DERIVATION)
        first = archive.storage_bytes()
        archive.record(DERIVATION, annotation=CondensedProvenance.from_source("a"))
        assert archive.storage_bytes() > first

    def test_reconstruct_graph(self):
        archive = OfflineProvenanceArchive("a")
        archive.record(DERIVATION)
        graph = archive.reconstruct_graph(ROUTE.key())
        assert graph.base_tuples(ROUTE.key()) == frozenset({LINK.key()})


class TestAuthenticatedProvenance:
    @pytest.fixture(scope="class")
    def keystore(self):
        store = KeyStore(key_bits=128, seed=21)
        store.create_all(["a", "b"])
        return store

    def figure_graph(self) -> DerivationGraph:
        graph = DerivationGraph()
        reach_bc = Fact("reachable", ("b", "c"), asserted_by="b")
        link_ab = Fact("link", ("a", "b"), asserted_by="a")
        reach_ac = Fact("reachable", ("a", "c"), asserted_by="a")
        graph.add_derivation(reach_ac, "r2", [link_ab, reach_bc], location="a")
        return graph

    def test_sign_and_verify_graph(self, keystore):
        signed = AuthenticatedProvenance.sign_graph(self.figure_graph(), keystore)
        assert signed.verify(keystore)
        assert signed.signature_overhead_bytes() > 0

    def test_tampered_node_detected(self, keystore):
        signed = AuthenticatedProvenance.sign_graph(self.figure_graph(), keystore)
        key = ("reachable", ("a", "c"))
        signed.tamper_with_node(key, b"\x00" * 16)
        with pytest.raises(ProvenanceVerificationError):
            signed.verify(keystore)

    def test_missing_signature_detected_when_complete_required(self, keystore):
        signed = AuthenticatedProvenance.sign_graph(self.figure_graph(), keystore)
        signed.signatures.pop(("link", ("a", "b")))
        with pytest.raises(ProvenanceVerificationError):
            signed.verify(keystore, require_complete=True)
        assert signed.verify(keystore, require_complete=False)

    def test_signed_annotation_round_trip(self, keystore):
        annotation = CondensedProvenance.from_source("a")
        signed = sign_annotation(annotation, "a", keystore)
        assert verify_annotation(signed, keystore)
        assert signed.wire_size() >= annotation.serialized_size() + 1

    def test_signed_annotation_forgery_detected(self, keystore):
        annotation = CondensedProvenance.from_source("a")
        forged = SignedAnnotation(annotation=annotation, principal="a", signature=b"\x01" * 16)
        assert not verify_annotation(forged, keystore)

    def test_signed_annotation_unknown_principal(self, keystore):
        annotation = CondensedProvenance.from_source("zz")
        forged = SignedAnnotation(annotation=annotation, principal="zz", signature=b"\x01" * 16)
        with pytest.raises(ProvenanceVerificationError):
            verify_annotation(forged, keystore)


class TestQuantify:
    PAPER = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))

    def test_trust_level_paper_example(self):
        assert trust_level(self.PAPER, {"a": 2, "b": 1}) == 2

    def test_trust_level_with_registry(self):
        registry = PrincipalRegistry()
        registry.register("a", security_level=2)
        registry.register("b", security_level=1)
        assert trust_level(self.PAPER, registry) == 2

    def test_trust_level_default(self):
        assert trust_level(p_product(p_var("a"), p_var("b")), {"a": 3}, default_level=1) == 1

    def test_count_derivations(self):
        assert count_derivations(self.PAPER) == 2
        assert count_derivations(p_var("a")) == 1

    def test_vote_principals(self):
        assert vote_principals(self.PAPER) == 2
        assert vote_principals(p_sum(p_var("a"), p_var("b"), p_var("c"))) == 3

    def test_accept_by_vote(self):
        assert accept_by_vote(self.PAPER, 2)
        assert not accept_by_vote(self.PAPER, 3)

    def test_accept_by_trust_level(self):
        assert accept_by_trust_level(self.PAPER, {"a": 2, "b": 1}, minimum_level=2)
        assert not accept_by_trust_level(self.PAPER, {"a": 1, "b": 1}, minimum_level=2)

    def test_accepts_condensed_annotations(self):
        annotation = CondensedProvenance(expression=self.PAPER)
        assert trust_level(annotation, {"a": 2, "b": 1}) == 2
        assert count_derivations(annotation) == 2


class TestTaxonomy:
    def test_trust_management_recommendation(self):
        axes = recommend_provenance(UseCase.TRUST_MANAGEMENT)
        assert axes.condensed and axes.quantifiable
        assert axes.storage_options == (StorageAxis.LOCAL,)

    def test_forensics_requires_offline(self):
        axes = recommend_provenance(UseCase.FORENSICS)
        assert LifetimeAxis.OFFLINE in axes.lifetimes

    def test_diagnostics_is_online(self):
        axes = recommend_provenance(UseCase.REAL_TIME_DIAGNOSTICS)
        assert axes.lifetimes == (LifetimeAxis.ONLINE,)

    def test_all_use_cases_covered(self):
        assert set(all_recommendations()) == set(UseCase)

    def test_describe_is_readable(self):
        text = recommend_provenance(UseCase.TRUST_MANAGEMENT).describe()
        assert "local" in text and "condensed" in text


class TestOptimizations:
    def test_sampler_rates(self):
        always = ProvenanceSampler(rate=1.0)
        never = ProvenanceSampler(rate=0.0)
        assert always.should_record(("t", ("a",)))
        assert not never.should_record(("t", ("a",)))

    def test_sampler_is_deterministic(self):
        a = ProvenanceSampler(rate=0.5, salt="x")
        b = ProvenanceSampler(rate=0.5, salt="x")
        keys = [("t", (i,)) for i in range(100)]
        assert [a.should_record(k) for k in keys] == [b.should_record(k) for k in keys]

    def test_sampler_observed_rate_roughly_matches(self):
        sampler = ProvenanceSampler(rate=0.3)
        for i in range(2000):
            sampler.should_record(("t", (i,)))
        assert 0.2 < sampler.observed_rate() < 0.4

    def test_sampler_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            ProvenanceSampler(rate=1.5)

    def test_reactive_buffer_defers_until_trigger(self):
        materialised = []
        buffer = ReactiveProvenanceBuffer(sink=materialised.append)
        buffer.observe(DERIVATION)
        buffer.observe(DERIVATION)
        assert materialised == []
        assert buffer.trigger() == 2
        assert len(materialised) == 2
        # After triggering, new derivations flow straight through.
        buffer.observe(DERIVATION)
        assert len(materialised) == 3
        buffer.reset()
        buffer.observe(DERIVATION)
        assert len(materialised) == 3

    def test_maintenance_mode_enum(self):
        assert MaintenanceMode.PROACTIVE.value == "proactive"
        assert MaintenanceMode.REACTIVE.value == "reactive"

    def test_as_aggregation_shrinks_expression(self):
        aggregator = ASAggregator({"n1": "AS1", "n2": "AS1", "n3": "AS2"})
        annotation = CondensedProvenance(
            expression=p_product(p_var("n1"), p_var("n2"), p_var("n3"))
        )
        aggregated = aggregator.aggregate(annotation)
        assert aggregated.sources() == frozenset({"AS1", "AS2"})
        assert aggregated.serialized_size() < annotation.serialized_size()
        assert aggregator.compression_ratio(annotation) < 1.0

    def test_as_aggregation_default_as(self):
        aggregator = ASAggregator({}, default_as="AS-unknown")
        assert aggregator.as_of("n77") == "AS-unknown"

    def test_grouped_by_as(self):
        aggregator = ASAggregator({"n1": "AS1", "n2": "AS1", "n3": "AS2"})
        groups = grouped_by_as(aggregator, ["n1", "n2", "n3"])
        assert groups == {"AS1": ("n1", "n2"), "AS2": ("n3",)}
