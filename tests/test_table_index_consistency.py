"""Index and soft-state consistency of Table across expire/replace/refresh."""

from __future__ import annotations

from repro.datalog.catalog import RelationSchema
from repro.engine.table import Table
from repro.engine.tuples import Fact


def make_table(key_columns=(0,), max_size=None):
    return Table(
        RelationSchema(name="r", arity=2, keys=tuple(key_columns), max_size=max_size)
    )


def bucket_facts(table, column, value):
    return table.lookup([column], [value])


class TestIndexConsistency:
    def test_refresh_swaps_identity_in_buckets(self):
        table = make_table()
        first = Fact("r", ("a", "b"), timestamp=0.0, ttl=10.0)
        table.insert(first)
        table.ensure_index([1])
        refreshed = Fact("r", ("a", "b"), timestamp=5.0, ttl=10.0)
        table.insert(refreshed)

        (stored,) = bucket_facts(table, 1, "b")
        assert stored is refreshed  # not the stale first object
        assert stored.timestamp == 5.0

    def test_replace_moves_index_entries(self):
        table = make_table()
        old = Fact("r", ("a", "b"))
        table.insert(old)
        table.ensure_index([1])
        new = Fact("r", ("a", "c"))
        result = table.insert(new)

        assert result.inserted and result.replaced is old
        assert bucket_facts(table, 1, "b") == ()
        (stored,) = bucket_facts(table, 1, "c")
        assert stored is new

    def test_expire_clears_index_buckets(self):
        table = make_table()
        soft = Fact("r", ("a", "b"), timestamp=0.0, ttl=1.0)
        hard = Fact("r", ("x", "y"))
        table.insert(soft)
        table.insert(hard)
        table.ensure_index([1])

        expired = table.expire(5.0)
        assert expired == [soft]
        assert bucket_facts(table, 1, "b") == ()
        (remaining,) = bucket_facts(table, 1, "y")
        assert remaining is hard

    def test_max_size_eviction_keeps_indexes_consistent(self):
        table = make_table(max_size=2)
        facts = [Fact("r", (f"k{i}", "v")) for i in range(4)]
        table.ensure_index([1])
        for fact in facts:
            table.insert(fact)
        assert len(table) == 2
        assert set(bucket_facts(table, 1, "v")) == set(table.facts())

    def test_interleaved_cycles_keep_lookup_and_scan_agreeing(self):
        table = make_table(key_columns=(0, 1))
        table.ensure_index([0])
        now = 0.0
        for round_number in range(5):
            now += 1.0
            for i in range(6):
                ttl = 1.5 if i % 2 else None
                table.insert(
                    Fact("r", (f"a{i % 3}", f"b{round_number}_{i}"), timestamp=now, ttl=ttl),
                    now=now,
                )
            table.expire(now + 0.5)
            via_scan = set(table.facts())
            via_index = set()
            for value in {f.values[0] for f in via_scan}:
                via_index.update(bucket_facts(table, 0, value))
            assert via_index == via_scan


class TestSoftStateFlag:
    def test_hard_state_table_never_reports_soft_state(self):
        table = make_table()
        table.insert(Fact("r", ("a", "b")))
        assert not table.has_soft_state
        assert table.expire(1e9) == []

    def test_flag_follows_insert_refresh_and_expiry(self):
        table = make_table()
        soft = Fact("r", ("a", "b"), timestamp=0.0, ttl=1.0)
        table.insert(soft)
        assert table.has_soft_state

        # Refreshing the same tuple as hard state clears the flag...
        table.insert(Fact("r", ("a", "b"), timestamp=0.0))
        assert not table.has_soft_state

        # ...and refreshing it back to soft state restores it.
        table.insert(Fact("r", ("a", "b"), timestamp=0.0, ttl=1.0))
        assert table.has_soft_state

        assert len(table.expire(10.0)) == 1
        assert not table.has_soft_state
        assert len(table) == 0

    def test_replacement_and_delete_update_flag(self):
        table = make_table()
        table.insert(Fact("r", ("a", "b"), ttl=5.0))
        table.insert(Fact("r", ("a", "c")))  # replaces the soft fact
        assert not table.has_soft_state

        table.insert(Fact("r", ("z", "w"), ttl=5.0))
        assert table.has_soft_state
        assert table.delete(Fact("r", ("z", "w")))
        assert not table.has_soft_state

    def test_clear_resets_flag(self):
        table = make_table()
        table.insert(Fact("r", ("a", "b"), ttl=5.0))
        table.clear()
        assert not table.has_soft_state
        assert table.expire(1e9) == []
