"""The sharded execution backend: partitioning, serial equivalence, dynamics.

The backend's contract is strong: for any shard count and either worker
mode, derived facts, per-message sequence numbers and every integer/byte
statistic are identical to the serial backend; per-node floating point
metrics are bit-identical (each node's processing order is unchanged) and
only cross-node float *sums* may differ in the last bits by association
order.  These tests pin that contract on static runs, dynamic scenarios
(events crossing shard boundaries), the query plane, and the
multiprocessing worker path.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

import pytest

from repro.api.network import Network
from repro.api.options import NetOptions
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.kernel import SimulationKernel
from repro.net.sharding import ShardedSimulator, partition_topology
from repro.net.stats import COORDINATION_KEYS
from repro.net.topology import line_topology, random_topology
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode


def _facts_by_node(result, relation):
    return {
        address: tuple(sorted(fact.values for fact in facts))
        for address, facts in result.facts(relation).items()
    }


def _assert_equivalent(serial, sharded, relation="bestPath"):
    """The full cross-backend contract between two SimulationResults."""
    assert serial.converged == sharded.converged
    assert _facts_by_node(serial, relation) == _facts_by_node(sharded, relation)
    # Integer/byte summary metrics are exactly equal; cpu_seconds is the one
    # cross-node float sum and may differ by association order only.  The
    # coordination ledger describes how the run was coordinated, not what
    # the simulated network did — serial runs report zeros there.
    left, right = serial.stats.summary(), sharded.stats.summary()
    for key in left:
        if key in COORDINATION_KEYS:
            continue
        if key == "cpu_seconds":
            assert left[key] == pytest.approx(right[key], rel=1e-12)
        else:
            assert left[key] == right[key], key
    # Per-node statistics are exactly equal, floats included: each node's
    # event processing order is identical, so its accumulations are too.
    assert set(serial.stats.nodes) == set(sharded.stats.nodes)
    for address, mine in serial.stats.nodes.items():
        other = sharded.stats.nodes[address]
        for field in dataclasses.fields(mine):
            assert getattr(mine, field.name) == getattr(other, field.name), (
                address,
                field.name,
            )
    assert serial.events_processed == sharded.events_processed


class TestPartitioner:
    def test_partition_is_deterministic(self):
        topology = random_topology(24, seed=5)
        first = partition_topology(topology, 4, seed=1)
        second = partition_topology(topology, 4, seed=1)
        assert first.assignment == second.assignment
        assert first.shards == second.shards
        assert first.cut_links == second.cut_links

    def test_partition_covers_all_nodes_balanced(self):
        topology = random_topology(23, seed=2)
        plan = partition_topology(topology, 4, seed=0)
        assert sorted(node for group in plan.shards for node in group) == sorted(
            topology.nodes
        )
        sizes = [len(group) for group in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_window_is_min_cross_shard_latency(self):
        topology = random_topology(12, seed=0, latency=0.02)
        plan = partition_topology(topology, 3, seed=0)
        assert plan.cut_links
        assert plan.window == 0.02

    def test_single_shard_has_no_cut(self):
        topology = random_topology(8, seed=0)
        plan = partition_topology(topology, 1, seed=0)
        assert plan.cut_links == ()
        assert plan.window == float("inf")

    def test_more_shards_than_nodes_clamps(self):
        topology = line_topology(3)
        plan = partition_topology(topology, 8, seed=0)
        assert plan.shard_count == 3

    def test_zero_latency_cross_links_rejected(self):
        topology = random_topology(8, seed=0, latency=0.0)
        with pytest.raises(ValueError, match="positive propagation latency"):
            partition_topology(topology, 2, seed=0)

    def test_cut_is_smaller_than_random_split(self):
        # The greedy growth heuristic must beat a round-robin split on a
        # structured graph (a line has a 2-edge optimal bisection).
        topology = line_topology(16)
        plan = partition_topology(topology, 2, seed=0)
        assert len(plan.cut_links) <= 6  # round-robin would cut ~all 30


def _serial(topology, config, **kwargs):
    return SimulationKernel(
        topology, compile_best_path(), config, key_bits=128, **kwargs
    ).run()


def _sharded(topology, config, shards=3, shard_mode="inline", **kwargs):
    return ShardedSimulator(
        topology,
        compile_best_path(),
        config,
        key_bits=128,
        shards=shards,
        shard_mode=shard_mode,
        **kwargs,
    ).run()


class TestSerialEquivalence:
    @pytest.mark.parametrize("shards", (2, 3, 5))
    def test_ndlog_identical_across_shard_counts(self, shards):
        topology = random_topology(14, seed=7)
        config = EngineConfig()
        _assert_equivalent(
            _serial(topology, config), _sharded(topology, config, shards=shards)
        )

    def test_signed_provenance_identical(self):
        # Signatures and condensed annotations cross shard boundaries; the
        # per-shard keystores must derive bit-identical keys for the bytes
        # (and the byte *statistics*) to line up.
        topology = random_topology(12, seed=3)
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        _assert_equivalent(_serial(topology, config), _sharded(topology, config))

    @pytest.mark.parametrize("shards", (2, 4))
    def test_tiered_provenance_counters_identical(self, shards, tmp_path):
        # The tiered archive's three counters (resident gauge, spilled
        # bytes, spill reads) are integer stats and therefore part of the
        # byte-identical contract: spill records are repr-encoded literals,
        # never pickles, so their sizes cannot vary across processes.
        topology = random_topology(12, seed=5)

        def config():
            return EngineConfig(
                provenance_mode=ProvenanceMode.CONDENSED,
                keep_offline_provenance=True,
                provenance_store="tiered",
                hot_tier_entries=8,
                spill_dir=str(tmp_path),
            )

        serial = _serial(topology, config())
        sharded = _sharded(topology, config(), shards=shards)
        _assert_equivalent(serial, sharded)
        summary = serial.stats.summary()
        assert summary["provenance_bytes_spilled"] > 0
        assert summary["provenance_bytes_resident"] > 0

    def test_per_tuple_wire_format_identical(self):
        topology = random_topology(10, seed=4)
        config = EngineConfig()
        _assert_equivalent(
            _serial(topology, config, batching=False),
            _sharded(topology, config, batching=False),
        )

    def test_delivery_order_per_destination_matches_serial(self):
        # The content-based event ranks must replay, at every node, exactly
        # the delivery sequence the serial backend produced.
        topology = random_topology(12, seed=9)

        @contextmanager
        def recording():
            records = []
            original = SimulationKernel._deliver

            def patched(self, message, deliver_at):
                records.append(
                    (
                        str(message.source),
                        str(message.destination),
                        message.sequence,
                        tuple(fact.key() for fact in message.facts()),
                    )
                )
                return original(self, message, deliver_at)

            SimulationKernel._deliver = patched
            try:
                yield records
            finally:
                SimulationKernel._deliver = original

        def by_destination(records):
            grouped = {}
            for source, destination, sequence, keys in records:
                grouped.setdefault(destination, []).append((source, sequence, keys))
            return grouped

        with recording() as serial_records:
            _serial(topology, EngineConfig())
        with recording() as sharded_records:
            _sharded(topology, EngineConfig(), shards=3)
        assert by_destination(serial_records) == by_destination(sharded_records)
        # Same wire traffic overall, merely interleaved differently.
        assert sorted(serial_records) == sorted(sharded_records)

    def test_facade_builds_sharded_backend(self):
        network = Network.build(
            topology=10,
            program="best-path",
            provenance="ndlog",
            backend="sharded",
            shards=2,
            shard_mode="inline",
            seed=1,
        )
        assert isinstance(network.simulator, ShardedSimulator)
        run = network.run()
        baseline = Network.build(
            topology=10, program="best-path", provenance="ndlog", seed=1
        ).run()
        assert run.summary()["total_bytes"] == baseline.summary()["total_bytes"]
        assert run.count("bestPath") == baseline.count("bestPath")

    def test_netoptions_validates_backend_fields(self):
        with pytest.raises(ValueError, match="backend"):
            NetOptions(backend="warp")
        with pytest.raises(ValueError, match="shard_mode"):
            NetOptions(backend="sharded", shard_mode="threads")
        with pytest.raises(ValueError, match="shards"):
            NetOptions(backend="sharded", shards=-1)


class TestDynamicsAcrossShards:
    """Link failure, churn and retraction crossing shard boundaries."""

    def _run_scenario(self, name, backend, **kwargs):
        from repro.harness.scenarios import SCENARIOS, run_scenario

        scenario, network = SCENARIOS[name](
            node_count=8, seed=1, backend=backend, **kwargs
        )
        report = run_scenario(scenario, network)
        return report

    @pytest.mark.parametrize("name", ("link-failure", "churn", "retraction"))
    def test_scenario_rows_match_serial(self, name):
        serial = self._run_scenario(name, "serial")
        sharded = self._run_scenario(
            name, "sharded", shards=3, shard_mode="inline"
        )
        assert serial.converged and sharded.converged
        assert len(serial.rows) == len(sharded.rows)
        for left, right in zip(serial.rows, sharded.rows):
            for field in (
                "phase",
                "events",
                "messages",
                "tuples_sent",
                "messages_lost",
                "facts_retracted",
                "probe_facts",
                "query_messages",
            ):
                assert getattr(left, field) == getattr(right, field), (
                    name,
                    left.phase,
                    field,
                )
            assert left.kilobytes == pytest.approx(right.kilobytes)
            assert left.completion_time == pytest.approx(right.completion_time)

    def test_cross_shard_link_failure_loses_messages_identically(self):
        # Fail a link that provably crosses the shard boundary and compare
        # the serial and sharded accounting of the whole episode.
        topology = random_topology(10, seed=2)
        plan = partition_topology(topology, 2, seed=0)
        assert plan.cut_links, "a 2-way split of a connected graph must cut"
        failed_source, failed_destination = plan.cut_links[0]
        from repro.net.events import FactInjection, LinkDown, SoftStateRefresh

        def drive(simulator):
            base = simulator.link_facts()
            for address, facts in base.items():
                simulator.schedule(
                    FactInjection(time=0.0, address=address, facts=tuple(facts))
                )
            assert simulator.run_until_idle()
            at = simulator.current_time() + 1.0
            simulator.schedule(
                LinkDown(time=at, source=failed_source, destination=failed_destination)
            )
            simulator.schedule(SoftStateRefresh(time=at))
            assert simulator.run_until_idle()
            return simulator.finish()

        serial = drive(
            SimulationKernel(
                topology,
                compile_best_path(),
                EngineConfig(default_ttl=30.0, track_dependencies=True),
                key_bits=128,
            )
        )
        sharded = drive(
            ShardedSimulator(
                topology,
                compile_best_path(),
                EngineConfig(default_ttl=30.0, track_dependencies=True),
                key_bits=128,
                shards=2,
                shard_mode="inline",
            )
        )
        _assert_equivalent(serial, sharded)


class TestDynamicsCountersEquivalence:
    """The six churn-plane counters are part of the byte-identical contract.

    Rederivations, anti-delta messages/bytes and the timer-wheel's refresh
    messages/bytes/timer events are all driven by content-ranked events on
    simulated time, so a script that exercises one-fixpoint deletion *and*
    the wheel refresh plane must produce exactly equal ledgers on the
    serial backend and on the sharded backend at every shard count.
    """

    COUNTERS = (
        "rederivations",
        "anti_delta_messages",
        "anti_delta_bytes",
        "refresh_messages",
        "refresh_bytes",
        "timer_events",
    )

    def _drive(self, backend, shards=2):
        from repro.datalog import localize_program, parse_program
        from repro.datalog.planner import compile_program
        from repro.engine.tuples import Fact
        from repro.net.events import (
            FactInjection,
            FactRetraction,
            SoftStateRefresh,
        )
        from repro.net.topology import Link
        from repro.queries.reachable import REACHABLE_LOCALIZED

        topology = line_topology(4)
        nodes = topology.nodes
        # Redundant chords so the retraction forces rederivation, not just
        # deletion: every pair stays connected without the bridge.
        topology = topology.with_extra_links(
            [
                Link(source=nodes[0], destination=nodes[2], cost=1.0),
                Link(source=nodes[2], destination=nodes[0], cost=1.0),
                Link(source=nodes[1], destination=nodes[3], cost=1.0),
                Link(source=nodes[3], destination=nodes[1], cost=1.0),
            ]
        )
        network = Network.build(
            topology=topology,
            program=compile_program(
                localize_program(parse_program(REACHABLE_LOCALIZED))
            ),
            config=EngineConfig(
                default_ttl=12.0,
                track_dependencies=True,
                provenance_mode=ProvenanceMode.CONDENSED,
                says_mode=SaysMode.NONE,
                rederivation=True,
            ),
            options=NetOptions(
                backend=backend,
                shards=shards,
                shard_mode="inline",
                refresh_mode="wheel",
                refresh_interval=5.0,
            ),
        )
        simulator = network.simulator
        for node in nodes:
            facts = tuple(
                Fact("link", (link.source, link.destination))
                for link in sorted(
                    topology.outgoing(node), key=lambda l: l.destination
                )
            )
            simulator.schedule(FactInjection(time=0.0, address=node, facts=facts))
        assert simulator.run_until_idle()
        # Let the wheel carry state past its TTL before retracting.
        simulator.schedule(SoftStateRefresh(time=25.0))
        assert simulator.run_until_idle()
        at = max(simulator.current_time(), 25.0) + 1.0
        simulator.schedule(
            FactRetraction(
                time=at,
                address=nodes[1],
                facts=(Fact("link", (nodes[1], nodes[2])),),
            )
        )
        simulator.schedule(
            FactRetraction(
                time=at,
                address=nodes[2],
                facts=(Fact("link", (nodes[2], nodes[1])),),
            )
        )
        assert simulator.run_until_idle()
        return simulator.finish()

    @pytest.mark.parametrize("shards", (2, 4))
    def test_wheel_and_rederivation_ledger_identical(self, shards):
        serial = self._drive("serial")
        sharded = self._drive("sharded", shards=shards)
        _assert_equivalent(serial, sharded, relation="reachable")
        summary = serial.stats.summary()
        for key in self.COUNTERS:
            assert summary[key] > 0, key
            assert summary[key] == sharded.stats.summary()[key], key


class TestShardedQueries:
    def test_inline_query_pays_messages_and_matches_serial_graph(self):
        topology = random_topology(8, seed=6)
        config = EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED)
        serial_simulator = SimulationKernel(
            topology, compile_best_path(), config, key_bits=128
        )
        serial_result = serial_simulator.run()
        sharded_simulator = ShardedSimulator(
            topology,
            compile_best_path(),
            EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
            key_bits=128,
            shards=3,
            shard_mode="inline",
        )
        sharded_result = sharded_simulator.run()
        _assert_equivalent(serial_result, sharded_result)

        target = max(
            serial_result.all_facts("bestPath"), key=lambda fact: len(fact.values[2])
        )
        asker = target.values[0]
        serial_answer = serial_simulator.query(target, at=asker)
        sharded_answer = sharded_simulator.query(target, at=asker)
        assert serial_answer.complete and sharded_answer.complete
        assert serial_answer.graph.same_structure(sharded_answer.graph)
        assert serial_answer.messages == sharded_answer.messages
        assert serial_answer.bytes == sharded_answer.bytes

    def test_query_from_foreign_shard_ships_instead_of_dropping(self):
        # Regression: a query issued *between* drains ships its first
        # requests outside any window; cross-shard ones must enter the
        # coordinator's export path, not be scheduled (and dropped) on the
        # asker's own kernel.
        topology = random_topology(8, seed=6)
        config = EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED)
        serial_simulator = SimulationKernel(
            topology, compile_best_path(), config, key_bits=128
        )
        serial_result = serial_simulator.run()
        sharded_simulator = ShardedSimulator(
            topology,
            compile_best_path(),
            EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
            key_bits=128,
            shards=3,
            shard_mode="inline",
        )
        sharded_simulator.run()
        # Ask at the route's origin (the asker expands its own store first,
        # so it must hold the root) for a route whose hops live on other
        # shards: the pointer dereferences the local closure names are the
        # first requests, and they must cross the shard boundary.  Some
        # roots are legitimately unresolvable even serially (aggregate churn
        # invalidated their pointers); pick one the serial oracle completes.
        plan = sharded_simulator.plan
        candidates = (
            fact
            for fact in serial_result.all_facts("bestPath")
            if any(
                plan.shard_of(hop) != plan.shard_of(fact.values[0])
                for hop in fact.values[2]
            )
        )
        serial_answer = target = None
        for candidate in candidates:
            answer = serial_simulator.query(candidate, at=candidate.values[0])
            if answer.complete and answer.messages:
                serial_answer, target = answer, candidate
                break
        assert target is not None, "no serially-resolvable cross-shard root"
        sharded_answer = sharded_simulator.query(target, at=target.values[0])
        assert sharded_answer.complete == serial_answer.complete is True
        assert sharded_answer.messages == serial_answer.messages
        assert sharded_answer.bytes == serial_answer.bytes
        assert sharded_answer.timeouts == 0
        assert sharded_simulator.stats.messages_dropped == 0
        assert serial_answer.graph.same_structure(sharded_answer.graph)

    def test_concurrent_same_id_queries_bill_separately(self):
        # Regression: query ids are only unique per kernel; a response
        # crossing shards must bill the asker's pending query, not an
        # unrelated same-id query pending at the responder's kernel.
        topology = random_topology(8, seed=6)

        def build_and_query(simulator):
            simulator.run()
            routes = sorted(
                (fact for fact in simulator.engines["n0"].facts("bestPath")),
                key=lambda fact: fact.values,
            )
            askers = []
            for fact in routes:
                if fact.values[0] not in askers:
                    askers.append(fact.values[0])
            from repro.net.query import ProvenanceQuery

            pendings = [
                simulator.issue_query(
                    ProvenanceQuery(root=routes[0].key(), at=askers[0])
                ),
                simulator.issue_query(
                    ProvenanceQuery(root=routes[-1].key(), at="n0")
                ),
            ]
            assert simulator.run_until_idle()
            return [(p.result().messages, p.result().bytes) for p in pendings]

        serial_bills = build_and_query(
            SimulationKernel(
                topology,
                compile_best_path(),
                EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
                key_bits=128,
            )
        )
        sharded_bills = build_and_query(
            ShardedSimulator(
                topology,
                compile_best_path(),
                EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
                key_bits=128,
                shards=3,
                shard_mode="inline",
            )
        )
        assert serial_bills == sharded_bills

    def test_mid_run_engines_guarded_in_process_mode(self):
        topology = random_topology(6, seed=0)
        simulator = ShardedSimulator(
            topology,
            compile_best_path(),
            EngineConfig(),
            key_bits=128,
            shards=2,
            shard_mode="processes",
        )
        # Workers are started lazily; before finish(), engines stay remote.
        simulator._ensure_running()
        with pytest.raises(RuntimeError, match="finish"):
            _ = simulator.engines
        simulator.close()


class TestProcessWorkers:
    """The multiprocessing (spawn) worker path, kept small: spawn is slow."""

    def test_process_mode_matches_serial_and_returns_engines(self):
        topology = random_topology(8, seed=11)
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        serial = _serial(topology, config)
        sharded = _sharded(
            topology,
            EngineConfig(
                says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
            ),
            shards=2,
            shard_mode="processes",
        )
        _assert_equivalent(serial, sharded)
        # The worker kernels were reeled back in whole: engines (and their
        # provenance stores) are real and inspectable, exactly like serial.
        assert set(sharded.engines) == set(topology.nodes)
        any_engine = next(iter(sharded.engines.values()))
        assert any_engine.compiled is not None

class TestPipelinedCoordination:
    """The pipelined barrier and cheap transport: identical results, fewer
    rounds, fewer bytes — across scenario scripts and the query plane."""

    def _scenario_rows(self, name, backend, **kwargs):
        from repro.harness.scenarios import SCENARIOS, run_scenario

        scenario, network = SCENARIOS[name](
            node_count=8, seed=1, backend=backend, **kwargs
        )
        return run_scenario(scenario, network), network

    @pytest.mark.parametrize("shards", (2, 4))
    @pytest.mark.parametrize("name", ("link-failure", "churn", "retraction"))
    def test_pipelined_scenario_rows_match_serial(self, name, shards):
        serial, _ = self._scenario_rows(name, "serial")
        sharded, _ = self._scenario_rows(
            name,
            "sharded",
            shards=shards,
            shard_mode="inline",
            shard_pipeline=True,
            transport="binary",
        )
        assert serial.converged and sharded.converged
        assert len(serial.rows) == len(sharded.rows)
        for left, right in zip(serial.rows, sharded.rows):
            for field in (
                "phase",
                "events",
                "messages",
                "tuples_sent",
                "messages_lost",
                "facts_retracted",
                "probe_facts",
                "query_messages",
            ):
                assert getattr(left, field) == getattr(right, field), (
                    name,
                    left.phase,
                    field,
                )
            assert left.kilobytes == pytest.approx(right.kilobytes)
            assert left.completion_time == pytest.approx(right.completion_time)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_pipelined_query_plane_matches_serial(self, shards):
        topology = random_topology(8, seed=6)

        def build():
            return EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED)

        serial_simulator = SimulationKernel(
            topology, compile_best_path(), build(), key_bits=128
        )
        serial_result = serial_simulator.run()
        sharded_simulator = ShardedSimulator(
            topology,
            compile_best_path(),
            build(),
            key_bits=128,
            shards=shards,
            shard_mode="inline",
            shard_pipeline=True,
            transport="binary",
        )
        sharded_result = sharded_simulator.run()
        _assert_equivalent(serial_result, sharded_result)
        for fact in sorted(
            serial_result.all_facts("bestPath"), key=lambda f: f.values
        )[:3]:
            asker = fact.values[0]
            serial_answer = serial_simulator.query(fact, at=asker)
            sharded_answer = sharded_simulator.query(fact, at=asker)
            assert serial_answer.complete == sharded_answer.complete
            assert serial_answer.messages == sharded_answer.messages
            assert serial_answer.bytes == sharded_answer.bytes

    @pytest.mark.parametrize("transport", ("pickle", "binary"))
    @pytest.mark.parametrize("shards", (2, 4))
    def test_pipelined_equivalence_all_transports(self, shards, transport):
        topology = random_topology(14, seed=7)
        serial = _serial(topology, EngineConfig())
        sharded = _sharded(
            topology,
            EngineConfig(),
            shards=shards,
            shard_pipeline=True,
            transport=transport,
        )
        _assert_equivalent(serial, sharded)

    def test_pipelined_saves_rounds_and_bytes(self):
        # The whole point: same workload, same results, cheaper coordination.
        topology = random_topology(14, seed=7)
        ledgers = {}
        for pipeline, transport in ((False, "pickle"), (True, "binary")):
            simulator = ShardedSimulator(
                topology,
                compile_best_path(),
                EngineConfig(),
                key_bits=128,
                shards=4,
                shard_mode="inline",
                shard_pipeline=pipeline,
                transport=transport,
            )
            result = simulator.run()
            summary = result.stats.summary()
            ledgers[pipeline] = summary
            assert summary["windows_executed"] > 0
        strict, pipelined = ledgers[False], ledgers[True]
        assert pipelined["coordination_rounds"] < strict["coordination_rounds"]
        assert pipelined["coordination_bytes"] < strict["coordination_bytes"]
        assert pipelined["windows_executed"] < strict["windows_executed"]
        assert pipelined["windows_coalesced"] > 0
        assert strict["windows_coalesced"] == 0

    def test_empty_drain_is_cheap(self):
        # Satellite: a drain with nothing to do must not cost real frames.
        # Strict mode pays one small fixed-size flush round per shard;
        # pipelined mode skips certified-idle shards entirely.
        topology = random_topology(10, seed=2)
        for pipeline, max_bytes_per_shard in ((False, 96), (True, 0)):
            simulator = ShardedSimulator(
                topology,
                compile_best_path(),
                EngineConfig(),
                key_bits=128,
                shards=2,
                shard_mode="inline",
                shard_pipeline=pipeline,
            )
            simulator.run()
            rounds = simulator._coordination_rounds
            bytes_before = simulator._coordination_bytes
            assert simulator.run_until_idle()
            delta_rounds = simulator._coordination_rounds - rounds
            delta_bytes = simulator._coordination_bytes - bytes_before
            if pipeline:
                assert delta_rounds == 0 and delta_bytes == 0
            else:
                assert delta_rounds == simulator.plan.shard_count
                assert delta_bytes <= max_bytes_per_shard * simulator.plan.shard_count

    def test_query_receipts_keep_kernel_books_local(self):
        # Satellite: responses passing through a kernel that does not host
        # the asker are recorded as receipts and settled at merge time; no
        # kernel's stats book ever names a node it does not host.
        topology = random_topology(8, seed=6)
        serial_simulator = SimulationKernel(
            topology,
            compile_best_path(),
            EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
            key_bits=128,
        )
        serial_result = serial_simulator.run()
        sharded_simulator = ShardedSimulator(
            topology,
            compile_best_path(),
            EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
            key_bits=128,
            shards=3,
            shard_mode="inline",
        )
        sharded_simulator.run()
        plan = sharded_simulator.plan
        # Queries whose closure provably crosses shards, from several askers.
        queried = 0
        for fact in sorted(
            serial_result.all_facts("bestPath"), key=lambda f: f.values
        ):
            asker = fact.values[0]
            if any(plan.shard_of(hop) != plan.shard_of(asker) for hop in fact.values[2]):
                serial_simulator.query(fact, at=asker)
                sharded_simulator.query(fact, at=asker)
                queried += 1
                if queried == 3:
                    break
        assert queried, "no cross-shard query candidates"
        assert sharded_simulator._kernels is not None
        receipts_seen = 0
        for shard, kernel in enumerate(sharded_simulator._kernels):
            hosted = set(plan.shards[shard])
            assert set(kernel.stats.nodes) <= hosted, "stats book not local"
            assert set(kernel.query_receipts) <= set(topology.nodes) - hosted
            receipts_seen += sum(kernel.query_receipts.values())
        assert receipts_seen > 0, "expected cross-shard response billing"
        # The settled merge matches the serial ledger node for node.
        serial_nodes = serial_simulator.stats
        merged = sharded_simulator.stats
        for address in topology.nodes:
            assert (
                serial_nodes.node(address).query_bytes_charged
                == merged.node(address).query_bytes_charged
            ), address

    def test_ledger_identical_between_inline_and_process_modes(self):
        # The coordination ledger is part of the deterministic contract:
        # byte-identical frames in both shard modes, so identical counters.
        topology = random_topology(8, seed=11)
        ledgers = []
        for mode in ("inline", "processes"):
            simulator = ShardedSimulator(
                topology,
                compile_best_path(),
                EngineConfig(),
                key_bits=128,
                shards=2,
                shard_mode=mode,
                shard_pipeline=True,
                transport="binary",
            )
            result = simulator.run()
            summary = result.stats.summary()
            ledgers.append(
                {key: summary[key] for key in COORDINATION_KEYS}
            )
        assert ledgers[0] == ledgers[1]

    def test_shm_transport_matches_serial_in_process_mode(self):
        # The zero-copy ring only engages for frames above the threshold;
        # results and ledger must be identical to plain binary either way.
        topology = random_topology(8, seed=11)
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        serial = _serial(topology, config)
        sharded = _sharded(
            topology,
            EngineConfig(
                says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
            ),
            shards=2,
            shard_mode="processes",
            shard_pipeline=True,
            transport="shm",
        )
        _assert_equivalent(serial, sharded)


class TestServicePlaneEquivalence:
    """The query service plane is part of the cross-backend contract.

    Arrival streams are precomputed pure functions of the workload spec and
    the node list; admission buckets, cache epochs and latency buckets all
    run on simulated time — so every new integer counter (rejected / shed /
    completed, cache hits / misses / invalidations, both histograms) must
    be byte-identical between the serial and sharded backends, in every
    shard mode, under open- and closed-loop load.
    """

    def _served(self, backend, shards=2, shard_mode="inline", clients=0):
        from repro.service import QueryWorkload

        network = Network.build(
            topology=10,
            program="best-path",
            provenance="condensed",
            options=NetOptions(
                key_bits=128,
                backend=backend,
                shards=shards,
                shard_mode=shard_mode,
                query_cache=True,
                admission_rate=2.0,
                admission_policy="retry",
                seed=6,
            ),
        )
        workload = QueryWorkload(
            rate=5.0, clients=clients, think_time=0.7, duration=6.0, seed=11
        )
        return network.serve(workload)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_open_loop_counters_identical_inline(self, shards):
        serial = self._served("serial")
        sharded = self._served("sharded", shards=shards)
        _assert_equivalent(serial, sharded)
        # The workload must have actually exercised the plane.
        assert serial.queries_completed > 0
        assert serial.queries_rejected > 0
        assert serial.stats.total_cache_hits() > 0

    @pytest.mark.parametrize("shards", (2, 4))
    def test_closed_loop_counters_identical_inline(self, shards):
        serial = self._served("serial", clients=3)
        sharded = self._served("sharded", shards=shards, clients=3)
        _assert_equivalent(serial, sharded)
        assert serial.queries_completed > 0

    def test_mixed_load_counters_identical_processes(self):
        serial = self._served("serial", clients=2)
        sharded = self._served(
            "sharded", shards=2, shard_mode="processes", clients=2
        )
        _assert_equivalent(serial, sharded)
        assert serial.offered == sharded.offered
        assert serial.service().as_dict() == sharded.service().as_dict()

    def test_latency_percentiles_identical(self):
        # Percentiles are pure functions of the integer histograms, so they
        # must match exactly — no float tolerance.
        serial = self._served("serial")
        sharded = self._served("sharded", shards=4)
        assert serial.query_p50_ms == sharded.query_p50_ms
        assert serial.query_p95_ms == sharded.query_p95_ms
        assert serial.query_p99_ms == sharded.query_p99_ms
