"""Property test: the query-result cache never serves a stale answer.

Hypothesis drives random scripts of dynamics — retracting link failures,
node crashes and recoveries, soft-state refresh rounds, quiet periods —
against two identically-seeded networks: one with the per-node query-result
cache armed (capacity drawn down as far as a single closure) and one
without any cache (the cold oracle).  After every script step, tracebacks
issued through the cached network — including back-to-back repeats that
are served from the memoized closure — must be structurally identical
(:meth:`DerivationGraph.same_structure`) to the oracle's cold walk of the
same root at the same point in the script: epoch invalidation, TTL expiry
and LRU eviction must never change an answer, only its price.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Network
from repro.net.events import LinkDown, NodeCrash, NodeRecover, SoftStateRefresh
from repro.net.topology import line_topology

NODES = 4
ADDRESSES = tuple(f"n{i}" for i in range(NODES))
LINKS = tuple((f"n{i}", f"n{i + 1}") for i in range(NODES - 1))

#: One scripted dynamic: (kind, operand index).
operations = st.lists(
    st.one_of(
        st.tuples(st.just("retract_link"), st.integers(0, len(LINKS) - 1)),
        st.tuples(st.just("crash"), st.integers(1, NODES - 2)),
        st.tuples(st.just("recover"), st.integers(1, NODES - 2)),
        st.tuples(st.just("refresh"), st.just(0)),
        st.tuples(st.just("settle"), st.just(0)),
    ),
    min_size=0,
    max_size=5,
)


def _build(**overrides):
    return Network.build(
        topology=line_topology(NODES),
        program="best-path",
        provenance="condensed",
        **overrides,
    )


def _step(network, kind, index):
    now = network.current_time()
    if kind == "retract_link":
        source, destination = LINKS[index]
        network.schedule(
            LinkDown(
                time=now + 1.0,
                source=source,
                destination=destination,
                retract=True,
            )
        )
    elif kind == "crash":
        network.schedule(NodeCrash(time=now + 1.0, address=f"n{index}"))
    elif kind == "recover":
        network.schedule(
            NodeRecover(time=now + 1.0, address=f"n{index}", reinject=True)
        )
    elif kind == "refresh":
        network.schedule(SoftStateRefresh(time=now + 1.0))
    network.run_until_idle()


def _roots(network, down):
    """Up to two deterministic live roots whose asking node is up."""
    facts = [
        fact
        for fact in network.all_facts("bestPath")
        if str(fact.origin) not in down
    ]
    facts.sort(key=lambda fact: (fact.values, str(fact.origin)))
    return facts[:2]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=operations, capacity=st.sampled_from([1, 2, 256]))
def test_cached_tracebacks_match_cold_oracle(script, capacity):
    cached = _build(query_cache=True, query_cache_entries=capacity)
    oracle = _build()
    cached.run()
    oracle.run()

    down = set()
    checked = 0
    for kind, index in list(script) + [("settle", 0)]:
        if kind == "crash":
            down.add(f"n{index}")
        elif kind == "recover":
            down.discard(f"n{index}")
        _step(cached, kind, index)
        _step(oracle, kind, index)
        for root in _roots(oracle, down):
            cold = oracle.query(root, at=root.origin)
            # Twice back-to-back: the first probe may miss (filling the
            # memo), the second is served from it when the epoch held.
            first = cached.query(root, at=root.origin)
            second = cached.query(root, at=root.origin)
            assert first.graph.same_structure(cold.graph), (kind, root)
            assert second.graph.same_structure(cold.graph), (kind, root)
            checked += 1
    # The scripts must actually compare answers, or the property is vacuous.
    assert checked > 0
    # And the memo must actually serve: repeats with no intervening
    # mutation hit unless every probe was invalidated in between.
    assert cached.stats.total_cache_hits() > 0
