"""In-network provenance queries: wire costs, oracle equality, dynamics.

The acceptance bar for the query subsystem:

* queries execute via EventScheduler events with per-message byte/latency
  costs, itemized as ``query_bytes`` / ``query_messages``;
* on static topologies the reconstructed graph is structurally identical to
  the legacy zero-cost ``traceback()`` oracle;
* under dynamics (crashed nodes, downed links) queries return
  ``complete=False`` with the missing keys instead of hanging;
* identical runs produce identical query statistics.
"""

from __future__ import annotations

import pytest

from repro.api import Network
from repro.engine.tuples import Derivation, Fact
from repro.net.events import LinkDown, NodeCrash, NodeRecover
from repro.net.message import QueryRequest, QueryResponse
from repro.net.query import ProvenanceQuery
from repro.net.topology import line_topology, random_topology
from repro.provenance.distributed import DistributedProvenanceStore, traceback


def build_network(topology=None, provenance="condensed", **overrides):
    overrides.setdefault("keep_offline_provenance", True)
    return Network.build(
        topology=topology if topology is not None else line_topology(5),
        program="best-path",
        provenance=provenance,
        **overrides,
    )


def longest_best_path(network, source):
    return max(
        network.node(source).facts("bestPath"), key=lambda f: len(f.values[2])
    )


class TestStaticQueries:
    @pytest.fixture(scope="class")
    def converged(self):
        network = build_network()
        network.run()
        return network

    def test_matches_zero_cost_oracle(self, converged):
        network = converged
        target = longest_best_path(network, "n0")
        oracle = network.legacy_traceback(target, at="n0")
        answer = network.query(target, at="n0")
        assert answer.complete and oracle.complete
        assert answer.graph.same_structure(oracle.graph)
        assert set(answer.nodes_visited) == set(oracle.nodes_visited)
        assert not answer.missing

    def test_every_dereference_is_a_request_response_pair(self, converged):
        network = converged
        target = longest_best_path(network, "n0")
        answer = network.query(target, at="n0")
        assert answer.remote_lookups > 0
        assert answer.messages == 2 * answer.remote_lookups
        assert answer.bytes > 0
        assert answer.latency > 0

    def test_base_fact_resolves_locally_for_free(self, converged):
        network = converged
        link = network.node("n0").facts("link")[0]
        answer = network.query(link, at="n0")
        assert answer.complete
        assert answer.messages == 0 and answer.bytes == 0
        assert answer.graph.is_base(link.key())

    def test_query_traffic_is_itemized_and_charged(self):
        network = build_network()
        network.run()
        before = network.stats.summary()
        assert before["query_bytes"] == 0 and before["query_messages"] == 0
        target = longest_best_path(network, "n0")
        answer = network.query(target, at="n0")
        after = network.stats.summary()
        assert after["query_messages"] == answer.messages
        assert after["query_bytes"] == answer.bytes
        assert after["queries_issued"] == 1
        # Query traffic is real traffic: the bandwidth total includes it.
        assert after["total_bytes"] == before["total_bytes"] + answer.bytes
        assert after["total_messages"] == before["total_messages"] + answer.messages
        # ... and every byte (requests AND responses) is billed to the asker.
        assert network.stats.node("n0").query_bytes_charged == answer.bytes
        assert network.stats.maintenance_bytes() == before["total_bytes"]

    def test_request_bytes_attributed_to_sender_side(self):
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        answer = network.query(target, at="n0")
        per_node = network.stats.nodes
        # The querier ships the requests; responders ship the responses.
        assert per_node["n0"].query_messages_sent == answer.remote_lookups
        responders = sum(
            stats.query_messages_sent
            for address, stats in per_node.items()
            if address != "n0"
        )
        assert responders == answer.remote_lookups

    def test_condensed_annotations_cost_extra_bytes(self, converged):
        network = converged
        target = longest_best_path(network, "n2")
        plain = network.query(target, at="n2")
        rich = network.query(target, at="n2", condensed=True)
        assert rich.condensed is not None
        # Real principals, not the identity fallback for unknown keys.
        assert rich.condensed.sources() <= set(network.topology.nodes)
        assert rich.bytes > plain.bytes
        # Every wire-fetched annotation names real principals too, and the
        # shipped annotation bytes land in the provenance attribution.
        assert rich.annotations
        for annotation in rich.annotations.values():
            assert annotation.sources() <= set(network.topology.nodes)

    def test_condensed_query_for_a_foreign_fact_does_not_fabricate(self):
        """A querier that holds neither the fact nor its provenance must not
        report the identity-fallback pseudo-annotation as provenance."""
        network = build_network()
        network.run()
        foreign = longest_best_path(network, "n3")
        answer = network.query(foreign, at="n0", condensed=True)
        assert not answer.complete
        assert answer.condensed is None

    def test_condensed_bytes_are_attributed_to_provenance(self):
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        before = network.stats.provenance_overhead_bytes()
        network.query(target, at="n0", condensed=True)
        assert network.stats.provenance_overhead_bytes() > before

    def test_authenticated_responses_are_signed_and_verified(self, converged):
        network = converged
        target = longest_best_path(network, "n1")
        plain = network.query(target, at="n1")
        signed = network.query(target, at="n1", authenticated=True)
        assert signed.complete
        assert signed.responses_verified == signed.remote_lookups
        assert signed.verification_failures == 0
        assert signed.bytes > plain.bytes

    def test_signature_bytes_are_attributed_to_security(self):
        # The "condensed" preset never signs data traffic, so any security
        # bytes on the books come from the authenticated query plane.
        network = build_network()
        network.run()
        assert network.stats.security_overhead_bytes() == 0
        target = longest_best_path(network, "n0")
        network.query(target, at="n0", authenticated=True)
        assert network.stats.security_overhead_bytes() > 0

    def test_answered_timeouts_do_not_burn_the_event_budget(self):
        """Each request schedules a timeout; once its response arrives the
        timeout is cancelled and must neither fire nor count as a processed
        event — a successful query costs exactly one delivery per message."""
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        before = network.simulator._events_processed
        answer = network.query(target, at="n0")
        assert answer.complete
        assert network.simulator._events_processed - before == answer.messages
        assert len(network.scheduler) == 0

    def test_offline_mode_matches_online_on_static_topology(self, converged):
        network = converged
        target = longest_best_path(network, "n0")
        online = network.query(target, at="n0")
        offline = network.query(target, at="n0", mode="offline")
        assert offline.complete
        assert offline.graph.same_structure(online.graph)


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ProvenanceQuery(root=("x", ()), at="n0", mode="psychic")

    def test_query_at_unknown_node(self):
        network = build_network()
        network.run()
        with pytest.raises(ValueError, match="unknown node"):
            network.query(("bestPath", ("n0", "n1")), at="nope")

    def test_query_at_crashed_node(self):
        network = build_network()
        network.run()
        network.schedule(NodeCrash(time=network.current_time() + 1.0, address="n0"))
        network.run_until_idle()
        with pytest.raises(RuntimeError, match="crashed"):
            network.query(("bestPath", ("n0", "n1")), at="n0")

    def test_online_query_needs_provenance(self):
        network = Network.build(topology=line_topology(3), provenance="ndlog")
        network.run()
        with pytest.raises(ValueError, match="provenance"):
            network.query(("bestPath", ("n0", "n1")), at="n0")

    def test_offline_query_needs_archives(self):
        network = Network.build(topology=line_topology(3), provenance="condensed")
        network.run()
        with pytest.raises(ValueError, match="keep_offline_provenance"):
            network.query(("bestPath", ("n0", "n1")), at="n0", mode="offline")

    def test_offline_query_needs_maintained_provenance(self):
        """keep_offline_provenance under a no-provenance preset archives
        nothing — the query must fail loudly, not report empty results."""
        network = Network.build(
            topology=line_topology(3),
            provenance="ndlog",
            keep_offline_provenance=True,
        )
        network.run()
        with pytest.raises(ValueError, match="provenance"):
            network.query(("bestPath", ("n0", "n1")), at="n0", mode="offline")

    def test_bare_key_needs_at(self):
        network = build_network()
        network.run()
        with pytest.raises(ValueError, match="at="):
            network.query(("bestPath", ("n0", "n4")))


class TestQueriesUnderDynamics:
    def crash_and_query(self):
        """Converge, crash a mid-chain node, query across the hole."""
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        network.schedule(
            NodeCrash(time=network.current_time() + 1.0, address="n2")
        )
        network.run_until_idle()
        answer = network.query(target, at="n0")
        return network, answer

    def test_query_across_crashed_node_is_partial(self):
        network, answer = self.crash_and_query()
        assert not answer.complete
        assert answer.missing
        assert answer.timeouts >= 1
        # The request was paid for and lost on delivery.
        assert network.stats.messages_lost >= 1
        assert "n2" not in answer.nodes_visited

    def test_partial_query_bytes_still_charged_to_querier(self):
        network, answer = self.crash_and_query()
        assert answer.bytes > 0
        assert network.stats.node("n0").query_bytes_charged == answer.bytes
        assert network.stats.summary()["query_bytes"] == answer.bytes

    def test_query_across_downed_link_times_out(self):
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        lost_before = network.stats.messages_lost
        network.schedule(
            LinkDown(
                time=network.current_time() + 1.0,
                source="n0",
                destination="n1",
                retract=False,
            )
        )
        network.run_until_idle()
        answer = network.query(target, at="n0")
        assert not answer.complete
        assert answer.missing
        assert network.stats.messages_lost > lost_before

    def test_queries_do_not_cross_partitions(self):
        """Query traffic routes over live links only: cutting both directions
        between n1 and n2 partitions n0|n1 from n2..n4, and no request may
        teleport across the cut."""
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        now = network.current_time()
        for source, destination in (("n1", "n2"), ("n2", "n1")):
            network.schedule(
                LinkDown(
                    time=now + 1.0,
                    source=source,
                    destination=destination,
                    retract=False,
                )
            )
        network.run_until_idle()
        answer = network.query(target, at="n0")
        assert not answer.complete
        assert set(answer.nodes_visited) <= {"n0", "n1"}

    def test_queries_route_around_failures_when_a_path_exists(self):
        """With a redundant route the dereference survives the direct-link
        failure, paying the longer path's latency."""
        from repro.net.topology import ring_topology

        network = build_network(topology=ring_topology(5))
        network.run()
        target = longest_best_path(network, "n0")
        direct = network.query(target, at="n0")
        assert direct.complete
        now = network.current_time()
        network.schedule(
            LinkDown(
                time=now + 1.0, source="n0", destination="n1", retract=False
            )
        )
        network.run_until_idle()
        rerouted = network.query(target, at="n0")
        assert rerouted.complete
        assert rerouted.latency > direct.latency

    def test_offline_condensed_annotations_survive_the_crash(self):
        """Archived annotations answer condensed offline queries even after
        the live stores were wiped."""
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        now = network.current_time()
        network.schedule(NodeCrash(time=now + 1.0, address="n2"))
        network.schedule(
            NodeRecover(time=now + 2.0, address="n2", reinject=False)
        )
        network.run_until_idle()
        answer = network.query(target, at="n0", mode="offline", condensed=True)
        assert answer.complete
        assert answer.condensed is not None
        assert answer.condensed.sources() <= set(network.topology.nodes)

    def test_offline_queries_survive_the_crash_online_ones_do_not(self):
        """The archive is the persistent log: a crash wipes the live pointer
        stores but not the archived history."""
        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        now = network.current_time()
        network.schedule(NodeCrash(time=now + 1.0, address="n2"))
        network.schedule(
            NodeRecover(time=now + 2.0, address="n2", reinject=False)
        )
        network.run_until_idle()
        online = network.query(target, at="n0")
        offline = network.query(target, at="n0", mode="offline")
        assert not online.complete        # live pointers at n2 were wiped
        assert offline.complete           # the archive still answers
        oracle = traceback(
            target.key(),
            "n0",
            {
                address: engine.distributed_provenance
                for address, engine in network.engines.items()
            }.get,
        )
        assert not oracle.complete        # the oracle agrees about the hole

    def test_identical_runs_produce_identical_query_stats(self):
        def run_once():
            network = build_network()
            network.run()
            target = longest_best_path(network, "n0")
            network.schedule(
                NodeCrash(time=network.current_time() + 1.0, address="n2")
            )
            network.run_until_idle()
            answer = network.query(target, at="n0")
            healthy = network.query(
                network.node("n0").facts("link")[0], at="n0"
            )
            return answer.as_dict(), healthy.as_dict(), network.stats.summary()

        assert run_once() == run_once()

    def test_mid_scenario_query_is_ordinary_traffic(self):
        """A query issued between scenario phases shows up in the phase rows."""
        from repro.engine.node_engine import ProvenanceMode
        from repro.harness.scenarios import (
            Phase,
            Scenario,
            link_failure_scenario,
            run_scenario,
        )

        scenario, network = link_failure_scenario(
            node_count=10,
            seed=3,
            provenance_mode=ProvenanceMode.CONDENSED,
            keep_offline_provenance=True,
        )
        report = run_scenario(scenario, network)
        assert report.converged
        source, _destination = scenario.details["failed_link"]
        target = longest_best_path(network, source)
        answer = network.query(target, at=source)
        assert answer.messages > 0
        # Continue the scenario machinery: one more (empty) phase whose row
        # must carry the query traffic we just generated... by construction
        # the counters are cumulative, so compare the summary split instead.
        summary = network.stats.summary()
        assert summary["query_messages"] == answer.messages
        assert summary["query_bytes"] == answer.bytes


class TestTracebackAccountingFix:
    """The legacy oracle now counts per remote pointer *dereference*."""

    def build_stores(self):
        """Node b derives two tuples; node a consumes both remotely."""
        link_ab = Fact("link", ("a", "b"))
        link_bc = Fact("link", ("b", "c"))
        link_bd = Fact("link", ("b", "d"))
        reach_bc = Fact("reachable", ("b", "c"))
        reach_bd = Fact("reachable", ("b", "d"))
        out = Fact("twohop", ("a", "c", "d"))
        store_a = DistributedProvenanceStore("a")
        store_b = DistributedProvenanceStore("b")
        store_b.record_base(link_bc)
        store_b.record_base(link_bd)
        store_b.record_derivation(
            Derivation(fact=reach_bc, rule_label="r1", node="b", antecedents=(link_bc,))
        )
        store_b.record_derivation(
            Derivation(fact=reach_bd, rule_label="r1", node="b", antecedents=(link_bd,))
        )
        store_a.record_base(link_ab)
        store_a.record_remote(reach_bc, origin="b")
        store_a.record_remote(reach_bd, origin="b")
        store_a.record_derivation(
            Derivation(
                fact=out,
                rule_label="r2",
                node="a",
                antecedents=(link_ab, reach_bc, reach_bd),
            )
        )
        return out, {"a": store_a, "b": store_b}

    def test_two_pointers_to_one_node_are_two_lookups(self):
        out, stores = self.build_stores()
        result = traceback(out.key(), "a", stores.get)
        assert result.complete
        # Two remote pointers were dereferenced, both at node b; the old
        # per-node accounting reported 1.
        assert result.remote_lookups == 2
        assert set(result.nodes_visited) == {"a", "b"}

    def test_unreachable_node_counts_the_lookup_but_not_the_visit(self):
        out, stores = self.build_stores()
        del stores["b"]
        result = traceback(out.key(), "a", stores.get)
        assert not result.complete
        # Both dereference attempts were paid for...
        assert result.remote_lookups == 2
        # ... but an unreachable node was never actually visited.
        assert result.nodes_visited == ("a",)
        assert len(result.missing) == 2

    def test_engine_never_pays_more_than_the_fixed_oracle(self):
        """The oracle bills every remote pointer edge; the engine's responses
        carry whole local closures, so repeated dereferences into a node
        already expanded are amortized away — the engine pays at most (and
        usually fewer than) the oracle's count, two messages per request."""
        network = build_network(topology=line_topology(4))
        network.run()
        target = longest_best_path(network, "n3")
        oracle = network.legacy_traceback(target, at="n3")
        answer = network.query(target, at="n3")
        assert 0 < answer.remote_lookups <= oracle.remote_lookups
        assert answer.messages == 2 * answer.remote_lookups
        assert answer.graph.same_structure(oracle.graph)


class TestQueryWireFormat:
    def test_request_and_response_sizes(self):
        request = QueryRequest(
            source="a", destination="b", key=("r", ("x", "y")), query_id=1, request_id=1
        )
        assert request.size_bytes() > len(b"r(x,y)")
        assert request.tuple_count == 0
        response = QueryResponse(
            source="b", destination="a", query_id=1, request_id=1, key=("r", ("x", "y"))
        )
        assert response.size_bytes() > request.size_bytes() - request.payload_bytes()
        signed = QueryResponse(
            source="b",
            destination="a",
            query_id=1,
            request_id=1,
            key=("r", ("x", "y")),
            signature=b"\x00" * 32,
        )
        assert signed.size_bytes() == response.size_bytes() + 32
        # Signature bytes count as security overhead, like data envelopes.
        assert signed.security_bytes == 32 and response.security_bytes == 0

    def test_signed_payload_binds_the_answer_substance(self):
        """Rewriting a pointer's inputs or the annotation must change the
        signed payload — otherwise a relay could shift blame undetected."""
        from repro.net.message import QueryClosureEntry
        from repro.provenance.distributed import ProvenancePointer

        def response(origin, annotation=None):
            pointer = ProvenancePointer(
                output=("r", ("x",)),
                rule_label="r1",
                node="b",
                inputs = ((("link", ("b", "c")), origin),),
            )
            return QueryResponse(
                source="b",
                destination="a",
                query_id=1,
                request_id=1,
                key=("r", ("x",)),
                entries=(
                    QueryClosureEntry(
                        key=("r", ("x",)), node="b", is_base=False,
                        pointers=(pointer,),
                    ),
                ),
                annotation=annotation,
            )

        honest = response(origin="c")
        blame_shifted = response(origin="d")
        assert honest.signed_payload() != blame_shifted.signed_payload()
        annotated = response(origin="c", annotation="<c*d>")
        assert honest.signed_payload() != annotated.signed_payload()

    def test_tampered_authenticated_response_is_discarded(self):
        """End-to-end: corrupt every signature in flight; the querier must
        reject the answers instead of building a graph from them."""
        from repro.net.message import QueryRequest as Req, QueryResponse as Resp

        network = build_network()
        network.run()
        target = longest_best_path(network, "n0")
        simulator = network.simulator
        original = simulator.queries._ship

        def corrupting_ship(query_id, source, message, send_time):
            if isinstance(message, Resp) and message.signature is not None:
                message = replace_signature(message)
            original(query_id, source, message, send_time)

        def replace_signature(message):
            import dataclasses

            return dataclasses.replace(
                message, signature=bytes(len(message.signature))
            )

        simulator.queries._ship = corrupting_ship
        answer = network.query(target, at="n0", authenticated=True)
        assert not answer.complete
        assert answer.verification_failures > 0
        assert answer.responses_verified == 0
