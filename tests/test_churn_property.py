"""Property-based churn scripts against a from-scratch oracle (hypothesis).

The one-fixpoint deletion claim, stated as a property: after an arbitrary
script of base-tuple churn — injections, retractions, node crashes, link
flaps — the network's converged state must equal what a *fresh* network
computes from the surviving base facts alone.  Retraction-only scripts must
match the oracle at quiescence with no help (the anti-delta flood is the
whole repair); scripts with crashes are allowed one refresh-plus-decay
cycle, the paper's fallback for state lost rather than withdrawn.

A second property pins the forensics contract: the offline provenance
archive still answers for retracted tuples after the online stores have
stopped vouching for them.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.network import Network
from repro.api.options import NetOptions
from repro.datalog import localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.events import (
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    NodeCrash,
    NodeRecover,
    SoftStateRefresh,
)
from repro.net.topology import Link, line_topology
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode

TTL = 30.0

_COMPILED = compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


def _build(topology, rederivation: bool = True):
    config = EngineConfig(
        default_ttl=TTL,
        track_dependencies=True,
        provenance_mode=ProvenanceMode.CONDENSED,
        says_mode=SaysMode.NONE,
        keep_offline_provenance=True,
        rederivation=rederivation,
    )
    return Network.build(
        topology=topology,
        program=_COMPILED,
        config=config,
        options=NetOptions(),
    )


def _inject_base(simulator, base: Dict[str, Set[Tuple[str, str]]], at: float):
    for node in sorted(base):
        facts = tuple(Fact("link", pair) for pair in sorted(base[node]))
        if facts:
            simulator.schedule(FactInjection(time=at, address=node, facts=facts))


def _state(simulator) -> Dict[str, Set[Tuple[str, ...]]]:
    """Per-node stored ``reachable`` tuples (the program's derived state)."""
    return {
        address: {fact.values for fact in engine.facts("reachable")}
        for address, engine in simulator.engines.items()
    }


def _oracle(topology, base: Dict[str, Set[Tuple[str, str]]]):
    """From-scratch rebuild: a fresh network fed only the surviving base."""
    network = _build(topology)
    simulator = network.simulator
    _inject_base(simulator, base, 0.0)
    assert simulator.run_until_idle()
    return _state(simulator)


def _topology(chords: List[int]):
    """A 5-node line plus the chosen redundant chords (both directions)."""
    topology = line_topology(5)
    nodes = topology.nodes
    pool = [(0, 2), (1, 3), (2, 4), (0, 3)]
    extra = []
    for index in chords:
        a, b = pool[index]
        extra.append(Link(source=nodes[a], destination=nodes[b], cost=1.0))
        extra.append(Link(source=nodes[b], destination=nodes[a], cost=1.0))
    return topology.with_extra_links(extra) if extra else topology


def _base_facts(topology) -> Dict[str, Set[Tuple[str, str]]]:
    return {
        node: {
            (link.source, link.destination)
            for link in topology.outgoing(node)
        }
        for node in topology.nodes
    }


chords_strategy = st.lists(
    st.integers(min_value=0, max_value=3), max_size=3, unique=True
)


class TestRetractionScriptsMatchOracle:
    """Retract-only churn: equality at quiescence, no refresh allowed."""

    @given(
        chords=chords_strategy,
        retractions=st.lists(
            st.integers(min_value=0, max_value=1_000_000),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_final_state_equals_from_scratch_rebuild(
        self, chords, retractions
    ):
        topology = _topology(chords)
        base = _base_facts(topology)
        network = _build(topology)
        simulator = network.simulator
        _inject_base(simulator, base, 0.0)
        assert simulator.run_until_idle()
        at = simulator.current_time()
        for choice in retractions:
            live = [
                (node, pair)
                for node in sorted(base)
                for pair in sorted(base[node])
            ]
            if not live:
                break
            node, pair = live[choice % len(live)]
            base[node].discard(pair)
            at = max(at, simulator.current_time()) + 1.0
            simulator.schedule(
                FactRetraction(
                    time=at, address=node, facts=(Fact("link", pair),)
                )
            )
            assert simulator.run_until_idle()
        # No refresh round, no decay: the anti-delta fixpoint alone must
        # leave exactly the state a fresh network derives from what's left.
        final = _state(simulator)
        assert final == _oracle(topology, base)
        # Well inside a single TTL: deletions did not wait for decay.
        assert simulator.current_time() < TTL

    @given(chords=st.just([0]))
    @settings(max_examples=1, deadline=None)
    def test_offline_archive_answers_retracted_tuples(self, chords):
        topology = _topology(chords)
        base = _base_facts(topology)
        network = _build(topology)
        simulator = network.simulator
        _inject_base(simulator, base, 0.0)
        assert simulator.run_until_idle()
        nodes = topology.nodes
        victim = (nodes[0], nodes[1])
        simulator.schedule(
            FactRetraction(
                time=simulator.current_time() + 1.0,
                address=nodes[0],
                facts=(Fact("link", victim),),
            )
        )
        assert simulator.run_until_idle()
        engine = simulator.engines[nodes[0]]
        key = Fact("link", victim).key()
        # The online stores stopped vouching; the offline archive — the
        # persistent log — still answers for the retracted tuple.
        assert key not in engine.local_provenance.keys()
        assert not engine.distributed_provenance.knows(key)
        assert engine.offline_provenance.knows(key)
        assert engine.offline_provenance.is_base(key)
        # Derived tuples killed by the retraction keep their derivation
        # entries in the archive too.
        dead = Fact("reachable", victim).key()
        assert engine.offline_provenance.entries(dead)


class TestFullChurnScriptsMatchOracle:
    """Crashes and link flaps: equality after one refresh + decay cycle."""

    @given(
        chords=chords_strategy,
        script=st.lists(
            st.tuples(
                st.sampled_from(["retract", "flap", "crash"]),
                st.integers(min_value=0, max_value=1_000_000),
            ),
            min_size=1,
            max_size=3,
        ),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_refresh_cycle_restores_oracle_state(self, chords, script):
        topology = _topology(chords)
        base = _base_facts(topology)
        network = _build(topology)
        simulator = network.simulator
        _inject_base(simulator, base, 0.0)
        assert simulator.run_until_idle()
        at = simulator.current_time()
        nodes = topology.nodes
        for op, choice in script:
            at = max(at, simulator.current_time()) + 1.0
            if op == "retract":
                live = [
                    (node, pair)
                    for node in sorted(base)
                    for pair in sorted(base[node])
                ]
                if not live:
                    continue
                node, pair = live[choice % len(live)]
                base[node].discard(pair)
                simulator.schedule(
                    FactRetraction(
                        time=at, address=node, facts=(Fact("link", pair),)
                    )
                )
            elif op == "flap":
                links = sorted(
                    (link.source, link.destination)
                    for link in topology.links
                )
                source, destination = links[choice % len(links)]
                simulator.schedule(
                    LinkDown(
                        time=at,
                        source=source,
                        destination=destination,
                        retract=True,
                    )
                )
                simulator.schedule(
                    LinkUp(time=at + 0.5, source=source, destination=destination)
                )
                # The flap re-injects the remembered link fact: the base
                # set is unchanged once the dust settles.
            else:  # crash
                victim = nodes[choice % len(nodes)]
                simulator.schedule(NodeCrash(time=at, address=victim))
                simulator.schedule(
                    NodeRecover(time=at + 0.5, address=victim, reinject=True)
                )
            assert simulator.run_until_idle()
        # One soft-state repair cycle: stale copies (crash fallout) decay
        # by TTL while a refresh round re-derives what still holds.
        repair_at = max(at, simulator.current_time()) + TTL + 1.0
        simulator.schedule(SoftStateRefresh(time=repair_at))
        assert simulator.run_until_idle()
        simulator.expire_all(max(simulator.current_time(), repair_at))
        assert _state(simulator) == _oracle(topology, base)
