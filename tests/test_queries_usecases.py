"""Tests for the query library and the four Section-3 use cases."""

from __future__ import annotations

import pytest

from repro.datalog import analyze_program, localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.tuples import Derivation, Fact
from repro.net.message import Message
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import p_product, p_sum, p_var
from repro.provenance.store import OfflineProvenanceArchive, OnlineProvenanceStore
from repro.queries.best_path import best_path_program, compile_best_path
from repro.queries.monitoring import route_flap_monitor_program
from repro.queries.path_vector import (
    compile_distance_vector,
    compile_path_vector,
    distance_vector_program,
    path_vector_program,
)
from repro.queries.reachable import reachable_program
from repro.security.principal import PrincipalRegistry
from repro.usecases.accountability import AccountabilityAuditor, UsagePolicy
from repro.usecases.diagnostics import FlapEvent, RouteFlapDetector
from repro.usecases.forensics import ForensicInvestigator
from repro.usecases.trust import TrustManager, TrustPolicy


class TestQueryLibrary:
    def test_reachable_dialects(self):
        assert len(reachable_program("ndlog").rules) == 2
        assert reachable_program("sendlog").dialect == "sendlog"
        assert len(reachable_program("localized").rules) == 3
        with pytest.raises(ValueError):
            reachable_program("prolog")

    def test_best_path_program_is_safe_and_recursive(self):
        analysis = analyze_program(best_path_program())
        assert "bestPath" in analysis.recursive_predicates

    def test_best_path_compiles(self):
        assert len(compile_best_path().plans) == 5

    def test_path_vector_program(self):
        program = path_vector_program()
        assert set(program.derived_predicates()) == {"route"}
        assert len(compile_path_vector().plans) == 3  # v1 + split v2

    def test_distance_vector_program(self):
        program = distance_vector_program()
        assert "distance" in program.derived_predicates()
        compiled = compile_distance_vector()
        aggregate_plans = [p for p in compiled.plans if p.head.has_aggregate]
        assert len(aggregate_plans) == 1

    def test_monitoring_program_window_declared(self):
        program = route_flap_monitor_program()
        event_decl = [d for d in program.materialized if d.name == "routeEvent"][0]
        assert event_decl.lifetime == 30.0
        analysis = analyze_program(program)
        assert "flapAlarm" in analysis.derived_predicates


class TestDiagnostics:
    def test_no_alarm_below_threshold(self):
        detector = RouteFlapDetector(window_seconds=30, threshold=3)
        assert not detector.observe_route_change("a", "b", 1.0)
        assert not detector.observe_route_change("a", "b", 2.0)
        assert detector.change_count("a", "b", now=3.0) == 2
        assert detector.flapping_entries(now=3.0) == ()

    def test_alarm_at_threshold(self):
        detector = RouteFlapDetector(window_seconds=30, threshold=3)
        detector.observe_route_change("a", "b", 1.0)
        detector.observe_route_change("a", "b", 5.0)
        assert detector.observe_route_change("a", "b", 9.0)
        assert detector.flapping_entries(now=10.0) == (("a", "b"),)

    def test_window_eviction_clears_old_changes(self):
        detector = RouteFlapDetector(window_seconds=10, threshold=3)
        detector.observe_route_change("a", "b", 0.0)
        detector.observe_route_change("a", "b", 1.0)
        detector.observe_route_change("a", "b", 20.0)
        assert detector.change_count("a", "b", now=20.0) == 1

    def test_identify_suspects_excludes_trusted(self):
        detector = RouteFlapDetector()
        provenance = {
            ("a", "b"): CondensedProvenance(
                expression=p_product(p_var("mallory"), p_var("b")).condense()
            )
        }
        suspects = detector.identify_suspects([("a", "b")], provenance, trusted=["b"])
        assert suspects == ("mallory",)

    def test_purge_cascades_through_dependents(self):
        detector = RouteFlapDetector()
        store = OnlineProvenanceStore("a")
        route = Fact("bestPath", ("a", "c", ("a", "c"), 1.0))
        downstream = Fact("forwarding", ("a", "c"))
        store.record(Derivation(fact=route, rule_label="p4", node="a"))
        store.record(
            Derivation(fact=downstream, rule_label="f", node="a", antecedents=(route,))
        )
        purged = detector.purge_derived_state(store, [route.key()])
        assert route.key() in purged and downstream.key() in purged

    def test_run_produces_full_report(self):
        detector = RouteFlapDetector(window_seconds=30, threshold=2)
        events = [FlapEvent("a", "b", 1.0), FlapEvent("a", "b", 2.0)]
        provenance = {("a", "b"): CondensedProvenance.from_source("mallory")}
        report = detector.run(events, provenance_of=provenance)
        assert report.anomaly_detected
        assert report.suspicious_principals == ("mallory",)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RouteFlapDetector(window_seconds=0)
        with pytest.raises(ValueError):
            RouteFlapDetector(threshold=0)


class TestForensics:
    def build_archives(self):
        link_ab = Fact("link", ("a", "b"))
        link_bc = Fact("link", ("b", "c"))
        reach_bc = Fact("reachable", ("b", "c"))
        reach_ac = Fact("reachable", ("a", "c"))
        archive_a = OfflineProvenanceArchive("a")
        archive_b = OfflineProvenanceArchive("b")
        archive_b.record(
            Derivation(fact=reach_bc, rule_label="r1", node="b", antecedents=(link_bc,), timestamp=1.0)
        )
        archive_a.record(
            Derivation(
                fact=reach_ac,
                rule_label="r2",
                node="a",
                antecedents=(link_ab, reach_bc),
                timestamp=2.0,
            )
        )
        return {"a": archive_a, "b": archive_b}, reach_ac, link_bc

    def test_traceback_finds_origins_and_nodes(self):
        archives, target, _ = self.build_archives()
        report = ForensicInvestigator(archives).traceback(target.key())
        assert report.found
        assert set(report.nodes_traversed) == {"a", "b"}
        assert set(report.rules_applied) == {"r1", "r2"}
        assert ("link", ("a", "b")) in report.origins
        assert ("link", ("b", "c")) in report.origins
        assert report.derivation_depth == 2

    def test_traceback_of_unknown_tuple(self):
        archives, _, _ = self.build_archives()
        report = ForensicInvestigator(archives).traceback(("mystery", ("x",)))
        assert report.origins == (("mystery", ("x",)),)
        assert report.nodes_traversed == ()

    def test_activity_window_query(self):
        archives, _, _ = self.build_archives()
        investigator = ForensicInvestigator(archives)
        assert len(investigator.activity_of("a", 0.0, 10.0)) == 1
        assert len(investigator.activity_of("a", 5.0, 10.0)) == 0
        assert investigator.activity_of("unknown", 0.0, 10.0) == ()

    def test_forward_dependency_query(self):
        archives, target, suspect_link = self.build_archives()
        investigator = ForensicInvestigator(archives)
        affected = investigator.tuples_depending_on(suspect_link.key())
        assert ("reachable", ("b", "c")) in affected
        assert target.key() in affected

    def test_storage_footprint(self):
        archives, _, _ = self.build_archives()
        footprint = ForensicInvestigator(archives).storage_footprint()
        assert set(footprint) == {"a", "b"}
        assert all(size > 0 for size in footprint.values())


class TestAccountability:
    def make_message(self, source, principal, size_relation="update", destination="x"):
        fact = Fact(size_relation, (source, destination), asserted_by=principal)
        return Message(source=source, destination=destination, fact=fact, sent_at=1.0)

    def test_usage_attributed_to_asserting_principal(self):
        auditor = AccountabilityAuditor()
        auditor.observe(self.make_message("n1", "alice"))
        auditor.observe(self.make_message("n1", "alice"))
        auditor.observe(self.make_message("n2", "bob"))
        assert auditor.record_for("alice").messages == 2
        assert auditor.record_for("bob").messages == 1
        assert auditor.total_bytes() > 0

    def test_unattributed_traffic_falls_back_to_source(self):
        auditor = AccountabilityAuditor()
        fact = Fact("update", ("n3", "x"))
        auditor.observe(Message(source="n3", destination="x", fact=fact))
        assert auditor.record_for("n3").messages == 1

    def test_top_talkers_ordering(self):
        auditor = AccountabilityAuditor()
        for _ in range(5):
            auditor.observe(self.make_message("n1", "alice"))
        auditor.observe(self.make_message("n2", "bob"))
        top = auditor.top_talkers(1)
        assert top[0].principal == "alice"

    def test_quota_violations(self):
        auditor = AccountabilityAuditor({"alice": UsagePolicy(max_messages=1)})
        auditor.observe(self.make_message("n1", "alice"))
        auditor.observe(self.make_message("n1", "alice"))
        violations = auditor.violations()
        assert len(violations) == 1
        assert violations[0].kind == "message_quota"

    def test_forbidden_destination_violation(self):
        auditor = AccountabilityAuditor()
        auditor.set_policy("alice", UsagePolicy(forbidden_destinations=frozenset({"evil"})))
        auditor.observe(self.make_message("n1", "alice", destination="evil"))
        kinds = {violation.kind for violation in auditor.violations()}
        assert "forbidden_destination" in kinds

    def test_no_violation_when_within_policy(self):
        auditor = AccountabilityAuditor({"alice": UsagePolicy(max_messages=10)})
        auditor.observe(self.make_message("n1", "alice"))
        assert auditor.violations() == ()

    def test_report_text(self):
        auditor = AccountabilityAuditor()
        auditor.observe(self.make_message("n1", "alice"))
        report = auditor.report()
        assert "alice" in report and "no policy violations" in report


class TestTrustManagement:
    PAPER = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))

    def test_source_set_policy(self):
        manager = TrustManager(TrustPolicy.trust_sources("a"))
        assert manager.evaluate(CondensedProvenance(expression=self.PAPER)).accepted
        manager_b = TrustManager(TrustPolicy.trust_sources("b"))
        assert not manager_b.evaluate(CondensedProvenance(expression=self.PAPER)).accepted

    def test_level_policy_uses_registry(self):
        registry = PrincipalRegistry()
        registry.register("a", security_level=2)
        registry.register("b", security_level=1)
        manager = TrustManager(TrustPolicy.require_level(2), registry)
        decision = manager.evaluate(self.PAPER)
        assert decision.accepted and decision.trust_level == 2

    def test_level_policy_rejects_weak_chain(self):
        registry = PrincipalRegistry()
        registry.register("a", security_level=1)
        registry.register("b", security_level=1)
        manager = TrustManager(TrustPolicy.require_level(2), registry)
        assert not manager.evaluate(self.PAPER).accepted

    def test_vote_policy(self):
        manager = TrustManager(TrustPolicy.require_votes(2))
        assert manager.evaluate(self.PAPER).accepted
        assert not manager.evaluate(p_var("a")).accepted

    def test_combined_policy_requires_all_criteria(self):
        registry = PrincipalRegistry()
        registry.register("a", security_level=3)
        satisfied = TrustPolicy(
            trusted_principals=frozenset({"a"}), minimum_level=2, minimum_votes=2
        )
        assert TrustManager(satisfied, registry).evaluate(self.PAPER).accepted
        # Tighten one criterion (votes) and the same update is rejected.
        strict = TrustPolicy(
            trusted_principals=frozenset({"a"}), minimum_level=2, minimum_votes=3
        )
        decision = TrustManager(strict, registry).evaluate(self.PAPER)
        assert not decision.accepted
        assert any("principals assert" in reason for reason in decision.reasons)

    def test_filter_updates_and_acceptance_rate(self):
        manager = TrustManager(TrustPolicy.trust_sources("a"))
        updates = [
            (Fact("route", ("a", "c")), CondensedProvenance.from_source("a")),
            (Fact("route", ("b", "c")), CondensedProvenance.from_source("mallory")),
        ]
        decisions = manager.filter_updates(updates)
        assert decisions[0][1].accepted
        assert not decisions[1][1].accepted
        assert manager.acceptance_rate() == 0.5

    def test_decision_reports_derivation_count(self):
        manager = TrustManager(TrustPolicy.trust_sources("a"))
        assert manager.evaluate(self.PAPER).derivations == 2
