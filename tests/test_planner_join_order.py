"""Unit tests for the bound-aware join-ordering optimizer."""

from __future__ import annotations

import pytest

from repro.datalog import localize_program, parse_program
from repro.datalog.ast import Assignment, Atom, Comparison, Constant, Variable
from repro.datalog.errors import PlanError
from repro.datalog.planner import (
    BodyAtomPlan,
    build_delta_plan,
    compile_program,
    compile_rule,
)


def atom(name, *terms):
    rendered = []
    for term in terms:
        if isinstance(term, str) and term[0].isupper():
            rendered.append(Variable(name=term))
        elif isinstance(term, str):
            rendered.append(Constant(value=term))
        else:
            rendered.append(term)
    return Atom(name=name, terms=tuple(rendered))


def plans(*atoms):
    return tuple(BodyAtomPlan(atom=a) for a in atoms)


class TestJoinOrdering:
    def test_most_bound_atom_joins_first(self):
        # Delta a(X, Y) binds X and Y; b(Y, Z) has one bound column while
        # c(Z, W) has none, so b must be joined before c even though the
        # textual order is c-then-b.
        body = plans(atom("a", "X", "Y"), atom("c", "Z", "W"), atom("b", "Y", "Z"))
        plan = build_delta_plan(body, (), 0)
        assert [step.atom_plan.atom.name for step in plan.steps] == ["b", "c"]

    def test_constants_count_as_bound(self):
        # s carries a constant column: it is more bound than r even though
        # neither shares a variable with the delta.
        body = plans(atom("a", "X"), atom("r", "Y", "Z"), atom("s", "W", "k"))
        plan = build_delta_plan(body, (), 0)
        assert [step.atom_plan.atom.name for step in plan.steps] == ["s", "r"]

    def test_ties_break_by_body_order(self):
        body = plans(atom("a", "X"), atom("p", "X", "Y"), atom("q", "X", "Z"))
        plan = build_delta_plan(body, (), 0)
        assert [step.atom_plan.atom.name for step in plan.steps] == ["p", "q"]

    def test_chain_ordering_follows_newly_bound_variables(self):
        # Triggering on the middle of a chain must zip outwards: each next
        # atom shares a variable with what is already bound.
        body = plans(
            atom("e1", "A", "B"),
            atom("e2", "B", "C"),
            atom("e3", "C", "D"),
            atom("e4", "D", "E"),
        )
        plan = build_delta_plan(body, (), 2)  # delta binds C and D
        # e2 and e4 each have one bound column (tie -> body order picks e2);
        # once e2 binds B, e1 and e4 tie again and body order picks e1.
        assert [step.atom_plan.atom.name for step in plan.steps] == ["e2", "e1", "e4"]
        # Every step's probe uses the variable bound by the time it runs.
        assert [step.probe.columns for step in plan.steps] == [(1,), (1,), (0,)]

    def test_probe_spec_bound_columns(self):
        body = plans(atom("a", "X", "Y"), atom("b", "Y", "k", "Z"))
        plan = build_delta_plan(body, (), 0)
        (step,) = plan.steps
        # Column 0 bound via Y, column 1 bound via the constant "k".
        assert step.probe.columns == (0, 1)
        assert isinstance(step.probe.terms[0], Variable)
        assert isinstance(step.probe.terms[1], Constant)

    def test_probe_spec_includes_assignment_bound_variables(self):
        # W := f of delta-bound variables is computable before b is probed,
        # so b's W column participates in the probe.
        assignment = Assignment(target=Variable(name="W"), expression=Variable(name="X"))
        body = plans(atom("a", "X"), atom("b", "W", "Z"))
        plan = build_delta_plan(body, (assignment,), 0)
        (step,) = plan.steps
        assert step.probe.columns == (0,)

    def test_negated_atoms_are_not_join_steps(self):
        negated = BodyAtomPlan(atom=Atom(name="blocked", terms=(Variable(name="X"),), negated=True))
        body = (BodyAtomPlan(atom=atom("a", "X")), negated)
        plan = build_delta_plan(body, (), 0)
        assert plan.steps == ()
        assert len(plan.negated) == 1
        assert plan.negated[0].probe.columns == (0,)

    def test_delta_index_validation(self):
        body = plans(atom("a", "X"))
        with pytest.raises(PlanError):
            build_delta_plan(body, (), 5)
        negated = BodyAtomPlan(atom=Atom(name="b", terms=(Variable(name="X"),), negated=True))
        with pytest.raises(PlanError):
            build_delta_plan((negated,), (), 0)


class TestExpressionSchedule:
    def test_batches_fire_as_soon_as_bound(self):
        # X != Y is ready right after the delta; Z-dependent literals only
        # after b is joined.
        compare_xy = Comparison(left=Variable(name="X"), operator="!=", right=Variable(name="Y"))
        assign = Assignment(target=Variable(name="S"), expression=Variable(name="Z"))
        body = plans(atom("a", "X", "Y"), atom("b", "Y", "Z"))
        plan = build_delta_plan(body, (compare_xy, assign), 0)
        assert plan.expression_batches[0] == (compare_xy,)
        assert plan.expression_batches[1] == (assign,)
        assert plan.safe

    def test_cascading_assignments_schedule_in_dependency_order(self):
        first = Assignment(target=Variable(name="U"), expression=Variable(name="X"))
        second = Assignment(target=Variable(name="V"), expression=Variable(name="U"))
        body = plans(atom("a", "X"))
        plan = build_delta_plan(body, (second, first), 0)
        assert plan.expression_batches[0] == (first, second)
        assert plan.safe

    def test_unsatisfiable_expression_marks_plan_unsafe(self):
        dangling = Comparison(left=Variable(name="Q"), operator="<", right=Constant(value=1))
        body = plans(atom("a", "X"))
        plan = build_delta_plan(body, (dangling,), 0)
        assert not plan.safe


class TestCompiledPrograms:
    def test_compile_rule_precomputes_delta_plans(self):
        program = localize_program(
            parse_program(
                """
                r1 out(@S, D, C) :- left(@S, D, C1), right(@S, D, C2), C := C1 + C2.
                """
            )
        )
        plan = compile_rule(program.rules[0])
        assert set(plan.delta_plans) == {0, 1}
        for delta_index, delta_plan in plan.delta_plans.items():
            assert delta_plan.delta_index == delta_index
            assert delta_plan.safe
            (step,) = delta_plan.steps
            # Both S and D of the other atom are bound by the delta.
            assert step.probe.columns == (0, 1)

    def test_index_specs_cover_triggered_probes(self):
        program = localize_program(
            parse_program(
                """
                r1 out(@S, D) :- a(@S, D), b(@S, D).
                """
            )
        )
        compiled = compile_program(program)
        specs = compiled.index_specs_for("a")
        assert ("b", 2, (0, 1)) in specs
        # Cached value is returned on repeat calls.
        assert compiled.index_specs_for("a") is specs

    def test_trigger_pairs_cached(self):
        program = localize_program(
            parse_program("r1 out(@S, D) :- a(@S, D), b(@S, D).")
        )
        compiled = compile_program(program)
        pairs = compiled.trigger_pairs("a")
        assert [(plan.label, indexes) for plan, indexes in pairs] == [("r1", (0,))]
        assert compiled.trigger_pairs("a") is pairs
        assert compiled.trigger_pairs("unknown") == ()
