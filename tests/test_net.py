"""Tests for the network substrate: addresses, messages, links, topologies, stats."""

from __future__ import annotations

import pytest

from repro.engine.tuples import Fact
from repro.net.address import node_name, node_names
from repro.net.link import Link
from repro.net.message import MESSAGE_HEADER_BYTES, Message
from repro.net.stats import NetworkStats, NodeStats
from repro.net.topology import (
    grid_topology,
    line_topology,
    paper_example_topology,
    random_topology,
    ring_topology,
)


class TestAddress:
    def test_node_name(self):
        assert node_name(0) == "n0"
        assert node_name(42) == "n42"
        assert node_name(3, prefix="as") == "as3"

    def test_node_names(self):
        assert node_names(3) == ("n0", "n1", "n2")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            node_name(-1)


class TestMessage:
    def test_size_accounts_for_all_components(self):
        fact = Fact("link", ("a", "b", 1.0))
        message = Message(
            source="a", destination="b", fact=fact, security_bytes=40, provenance_bytes=20
        )
        assert message.size_bytes() == MESSAGE_HEADER_BYTES + fact.payload_size() + 60

    def test_plain_message_size(self):
        fact = Fact("link", ("a", "b", 1.0))
        message = Message(source="a", destination="b", fact=fact)
        assert message.size_bytes() == MESSAGE_HEADER_BYTES + fact.payload_size()

    def test_sequence_is_caller_assigned(self):
        # Sequence numbers come from the sending simulator's per-run counter,
        # not a process-global source.
        fact = Fact("link", ("a", "b"))
        message = Message(source="a", destination="b", fact=fact, sequence=7)
        assert message.sequence == 7
        assert Message(source="a", destination="b", fact=fact).sequence == 0

    def test_str_mentions_endpoints(self):
        message = Message(source="a", destination="b", fact=Fact("link", ("a", "b")))
        assert "a -> b" in str(message)


class TestLink:
    def test_transmission_delay(self):
        link = Link(source="a", destination="b", latency=0.01, bandwidth=1000.0)
        assert link.transmission_delay(500) == pytest.approx(0.01 + 0.5)

    def test_zero_bandwidth_falls_back_to_latency(self):
        link = Link(source="a", destination="b", latency=0.01, bandwidth=0.0)
        assert link.transmission_delay(500) == 0.01

    def test_reversed(self):
        link = Link(source="a", destination="b", cost=7.0)
        back = link.reversed()
        assert back.source == "b" and back.destination == "a" and back.cost == 7.0


class TestTopologies:
    def test_random_topology_matches_paper_parameters(self):
        topo = random_topology(50, average_outdegree=3.0, seed=1)
        assert topo.node_count == 50
        assert abs(topo.average_outdegree() - 3.0) < 0.2
        assert topo.is_strongly_connected()

    def test_random_topology_is_deterministic_in_seed(self):
        a = random_topology(20, seed=7)
        b = random_topology(20, seed=7)
        assert [(l.source, l.destination, l.cost) for l in a.links] == [
            (l.source, l.destination, l.cost) for l in b.links
        ]

    def test_different_seeds_differ(self):
        a = random_topology(20, seed=1)
        b = random_topology(20, seed=2)
        assert {(l.source, l.destination) for l in a.links} != {
            (l.source, l.destination) for l in b.links
        }

    def test_random_topology_has_no_self_loops_or_duplicates(self):
        topo = random_topology(30, seed=3)
        pairs = [(l.source, l.destination) for l in topo.links]
        assert len(pairs) == len(set(pairs))
        assert all(s != d for s, d in pairs)

    def test_random_topology_needs_two_nodes(self):
        with pytest.raises(ValueError):
            random_topology(1)

    def test_ring_topology(self):
        topo = ring_topology(5, bidirectional=False)
        assert topo.link_count == 5
        assert topo.is_strongly_connected()

    def test_bidirectional_ring(self):
        topo = ring_topology(5, bidirectional=True)
        assert topo.link_count == 10

    def test_line_topology(self):
        topo = line_topology(4)
        assert topo.link_count == 6
        assert topo.is_strongly_connected()

    def test_grid_topology(self):
        topo = grid_topology(3, 3)
        assert topo.node_count == 9
        assert topo.is_strongly_connected()
        # Interior node has 4 bidirectional neighbours.
        assert len(topo.neighbors("n4")) == 4

    def test_paper_example_topology(self):
        topo = paper_example_topology()
        assert topo.nodes == ("a", "b", "c")
        assert topo.link_count == 3
        assert not topo.is_strongly_connected()  # c has no outgoing links

    def test_link_between_and_neighbors(self):
        topo = paper_example_topology()
        assert topo.link_between("a", "b") is not None
        assert topo.link_between("b", "a") is None
        assert set(topo.neighbors("a")) == {"b", "c"}

    def test_outgoing(self):
        topo = paper_example_topology()
        assert len(topo.outgoing("a")) == 2
        assert topo.outgoing("c") == ()

    def test_with_extra_links(self):
        topo = paper_example_topology()
        extended = topo.with_extra_links([Link(source="c", destination="a")])
        assert extended.link_count == 4
        assert extended.is_strongly_connected()


class TestStats:
    def test_node_stats_record_send_and_receive(self):
        stats = NodeStats(address="a")
        fact = Fact("link", ("a", "b"))
        message = Message(source="a", destination="b", fact=fact, security_bytes=10, provenance_bytes=5)
        stats.record_send(message)
        stats.record_receive(message)
        assert stats.messages_sent == 1 and stats.messages_received == 1
        assert stats.bytes_sent == message.size_bytes()
        assert stats.security_bytes_sent == 10
        assert stats.provenance_bytes_sent == 5

    def test_network_stats_aggregation(self):
        network = NetworkStats()
        fact = Fact("link", ("a", "b"))
        message = Message(source="a", destination="b", fact=fact, security_bytes=8)
        network.node("a").record_send(message)
        network.node("b").record_receive(message)
        assert network.total_bytes() == message.size_bytes()
        assert network.total_bandwidth_mb() == pytest.approx(message.size_bytes() / 1e6)
        assert network.security_overhead_bytes() == 8

    def test_node_accessor_creates_entries(self):
        network = NetworkStats()
        assert network.node("x").address == "x"
        assert "x" in network.nodes

    def test_summary_keys(self):
        summary = NetworkStats().summary()
        for key in ("completion_time_s", "bandwidth_mb", "total_messages", "facts_derived"):
            assert key in summary
