"""Tests for facts and soft-state tables."""

from __future__ import annotations

import pytest

from repro.datalog.catalog import RelationSchema
from repro.engine.table import Table
from repro.engine.tuples import Derivation, Fact, fact_key


class TestFact:
    def test_equality_ignores_metadata(self):
        a = Fact("link", ("a", "b"), timestamp=1.0, ttl=5.0, asserted_by="a")
        b = Fact("link", ("a", "b"), timestamp=9.0, asserted_by="z")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_values(self):
        assert Fact("link", ("a", "b")) != Fact("link", ("a", "c"))

    def test_inequality_on_relation(self):
        assert Fact("link", ("a", "b")) != Fact("edge", ("a", "b"))

    def test_key(self):
        fact = Fact("link", ("a", "b", 3))
        assert fact.key() == ("link", ("a", "b", 3))
        assert fact.key() == fact_key("link", ["a", "b", 3])

    def test_expiry(self):
        fact = Fact("route", ("a", "b"), timestamp=10.0, ttl=5.0)
        assert fact.expires_at() == 15.0
        assert not fact.is_expired(14.9)
        assert fact.is_expired(15.0)

    def test_hard_state_never_expires(self):
        fact = Fact("link", ("a", "b"))
        assert fact.expires_at() is None
        assert not fact.is_expired(1e9)

    def test_payload_is_deterministic(self):
        a = Fact("link", ("a", "b", 3.0))
        b = Fact("link", ("a", "b", 3.0), timestamp=7.0)
        assert a.payload() == b.payload()
        assert a.payload_size() == len(a.payload())

    def test_payload_renders_paths_compactly(self):
        fact = Fact("bestPath", ("a", "c", ("a", "b", "c"), 2.0))
        assert b"[a|b|c]" in fact.payload()

    def test_with_metadata_returns_new_fact(self):
        fact = Fact("link", ("a", "b"))
        signed = fact.with_metadata(asserted_by="a", signature=b"sig")
        assert signed.asserted_by == "a"
        assert fact.asserted_by is None  # original untouched
        assert signed == fact  # identity unchanged

    def test_str_includes_says_prefix(self):
        fact = Fact("link", ("a", "b"), asserted_by="a")
        assert str(fact).startswith("a says ")

    def test_derivation_base_flag(self):
        base = Derivation(fact=Fact("link", ("a", "b")), rule_label="base", node="a")
        derived = Derivation(
            fact=Fact("reachable", ("a", "b")),
            rule_label="r1",
            node="a",
            antecedents=(Fact("link", ("a", "b")),),
        )
        assert base.is_base
        assert not derived.is_base


def make_table(keys=(), lifetime=None, max_size=None) -> Table:
    return Table(
        RelationSchema(name="t", arity=3, keys=keys, lifetime=lifetime, max_size=max_size)
    )


class TestTableBasics:
    def test_insert_and_contains(self):
        table = make_table()
        fact = Fact("t", ("a", "b", 1))
        result = table.insert(fact)
        assert result.inserted
        assert fact in table
        assert len(table) == 1

    def test_duplicate_insert_refreshes(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1), timestamp=0.0))
        result = table.insert(Fact("t", ("a", "b", 1), timestamp=5.0))
        assert not result.inserted
        assert result.refreshed
        assert len(table) == 1
        assert table.facts()[0].timestamp == 5.0

    def test_primary_key_replacement(self):
        table = make_table(keys=(0, 1))
        table.insert(Fact("t", ("a", "b", 1)))
        result = table.insert(Fact("t", ("a", "b", 2)))
        assert result.inserted
        assert result.replaced is not None
        assert result.replaced.values == ("a", "b", 1)
        assert len(table) == 1
        assert table.facts()[0].values == ("a", "b", 2)

    def test_set_semantics_without_keys(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1)))
        table.insert(Fact("t", ("a", "b", 2)))
        assert len(table) == 2

    def test_delete(self):
        table = make_table()
        fact = Fact("t", ("a", "b", 1))
        table.insert(fact)
        assert table.delete(fact)
        assert not table.delete(fact)
        assert len(table) == 0

    def test_get_by_values(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1)))
        assert table.get_by_values(("a", "b", 1)) is not None
        assert table.get_by_values(("a", "b", 2)) is None


class TestTableSoftState:
    def test_expire_removes_old_facts(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1), timestamp=0.0, ttl=10.0))
        table.insert(Fact("t", ("c", "d", 2), timestamp=0.0))  # hard state
        expired = table.expire(now=11.0)
        assert len(expired) == 1
        assert len(table) == 1

    def test_insert_with_now_expires_first(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1), timestamp=0.0, ttl=1.0))
        table.insert(Fact("t", ("x", "y", 9), timestamp=5.0), now=5.0)
        assert len(table) == 1

    def test_scan_with_now(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1), timestamp=0.0, ttl=1.0))
        assert table.scan(now=0.5) != ()
        assert table.scan(now=2.0) == ()

    def test_max_size_evicts_oldest(self):
        table = make_table(max_size=2)
        table.insert(Fact("t", ("a", "a", 1)))
        table.insert(Fact("t", ("b", "b", 2)))
        table.insert(Fact("t", ("c", "c", 3)))
        values = {fact.values[0] for fact in table}
        assert values == {"b", "c"}


class TestTableIndexes:
    def test_lookup_by_single_column(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1)))
        table.insert(Fact("t", ("a", "c", 2)))
        table.insert(Fact("t", ("x", "y", 3)))
        assert len(table.lookup([0], ["a"])) == 2
        assert len(table.lookup([0], ["x"])) == 1
        assert table.lookup([0], ["missing"]) == ()

    def test_lookup_by_multiple_columns(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1)))
        table.insert(Fact("t", ("a", "c", 2)))
        assert len(table.lookup([0, 1], ["a", "b"])) == 1

    def test_index_maintained_across_inserts(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1)))
        assert len(table.lookup([0], ["a"])) == 1
        table.insert(Fact("t", ("a", "z", 9)))
        assert len(table.lookup([0], ["a"])) == 2

    def test_index_maintained_across_deletes(self):
        table = make_table()
        fact = Fact("t", ("a", "b", 1))
        table.insert(fact)
        table.insert(Fact("t", ("a", "c", 2)))
        table.delete(fact)
        assert len(table.lookup([0], ["a"])) == 1

    def test_index_maintained_across_key_replacement(self):
        table = make_table(keys=(0,))
        table.insert(Fact("t", ("a", "b", 1)))
        _ = table.lookup([1], ["b"])
        table.insert(Fact("t", ("a", "z", 2)))
        assert table.lookup([1], ["b"]) == ()
        assert len(table.lookup([1], ["z"])) == 1

    def test_empty_column_lookup_returns_all(self):
        table = make_table()
        table.insert(Fact("t", ("a", "b", 1)))
        assert table.lookup([], []) == table.facts()
