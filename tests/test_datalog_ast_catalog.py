"""Tests for the AST helpers and the relation catalog."""

from __future__ import annotations

import pytest

from repro.datalog.ast import (
    Aggregate,
    Atom,
    Constant,
    FunctionCall,
    Variable,
    make_atom,
    term_variables,
)
from repro.datalog.catalog import Catalog, RelationSchema
from repro.datalog.errors import SchemaError
from repro.datalog.parser import parse_program, parse_rule
from repro.queries.best_path import BEST_PATH_NDLOG


class TestTerms:
    def test_term_variables_of_variable(self):
        assert list(term_variables(Variable("X"))) == [Variable("X")]

    def test_term_variables_of_constant(self):
        assert list(term_variables(Constant(3))) == []

    def test_term_variables_of_nested_function_call(self):
        call = FunctionCall("f_concat", (Variable("S"), FunctionCall("f_init", (Variable("D"),))))
        assert [v.name for v in term_variables(call)] == ["S", "D"]

    def test_term_variables_of_aggregate(self):
        assert list(term_variables(Aggregate("min", Variable("C")))) == [Variable("C")]

    def test_make_atom_classifies_terms(self):
        atom = make_atom("link", "S", "d", 3, location=0)
        assert atom.terms == (Variable("S"), Constant("d"), Constant(3))
        assert atom.location_index == 0

    def test_atom_str_rendering(self):
        atom = make_atom("link", "S", "D", location=0)
        assert str(atom) == "link(@S, D)"

    def test_atom_variables_include_ship_to(self):
        rule = parse_rule("s linkD(D, S)@D :- link(S, D).")
        assert Variable("D") in set(rule.head.variables())

    def test_rule_str_contains_label_and_arrow(self):
        rule = parse_rule("r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).")
        rendered = str(rule)
        assert rendered.startswith("r2 ")
        assert ":-" in rendered and rendered.endswith(".")


class TestCatalog:
    def test_from_program_infers_arities(self):
        catalog = Catalog.from_program(parse_program(BEST_PATH_NDLOG))
        assert catalog.schema("link").arity == 3
        assert catalog.schema("path").arity == 4
        assert catalog.schema("bestPath").arity == 4

    def test_materialize_keys_are_zero_based(self):
        catalog = Catalog.from_program(parse_program(BEST_PATH_NDLOG))
        assert catalog.schema("bestPath").keys == (0, 1)

    def test_base_vs_derived_classification(self):
        catalog = Catalog.from_program(parse_program(BEST_PATH_NDLOG))
        assert catalog.schema("link").is_base
        assert not catalog.schema("bestPath").is_base
        base_names = {schema.name for schema in catalog.base_relations()}
        assert base_names == {"link"}

    def test_key_columns_default_to_all(self):
        schema = RelationSchema(name="t", arity=3)
        assert schema.key_columns == (0, 1, 2)

    def test_unknown_relation_raises(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.schema("missing")

    def test_redeclare_with_different_arity_rejected(self):
        catalog = Catalog()
        catalog.declare(RelationSchema(name="t", arity=2))
        with pytest.raises(SchemaError):
            catalog.declare(RelationSchema(name="t", arity=3))

    def test_inconsistent_arity_in_program_rejected(self):
        program = parse_program("r1 p(X) :- q(X).\nr2 p(X, Y) :- q(X), q(Y).")
        with pytest.raises(SchemaError):
            Catalog.from_program(program)

    def test_key_out_of_range_rejected(self):
        program = parse_program(
            "materialize(link, infinity, infinity, keys(5)).\nr1 p(X) :- link(X, Y)."
        )
        with pytest.raises(SchemaError):
            Catalog.from_program(program)

    def test_check_rule_accepts_consistent_usage(self):
        catalog = Catalog.from_program(parse_program(BEST_PATH_NDLOG))
        rule = parse_rule("x1 path(@S, D, P, C) :- link(@S, D, C), P := f_init(S, D).")
        catalog.check_rule(rule)  # must not raise

    def test_check_rule_rejects_wrong_arity(self):
        catalog = Catalog.from_program(parse_program(BEST_PATH_NDLOG))
        rule = parse_rule("x1 path(@S, D) :- link(@S, D, C).")
        with pytest.raises(SchemaError):
            catalog.check_rule(rule)

    def test_len_and_contains(self):
        catalog = Catalog.from_program(parse_program(BEST_PATH_NDLOG))
        assert "link" in catalog
        assert "unknown" not in catalog
        assert len(catalog) == 4

    def test_lifetime_from_materialize(self):
        program = parse_program(
            "materialize(routeEvent, 30, infinity, keys(1,2)).\n"
            "m1 flapCount(@S, D, count<E>) :- routeEvent(@S, D, E)."
        )
        catalog = Catalog.from_program(program)
        assert catalog.schema("routeEvent").lifetime == 30.0
        assert catalog.schema("flapCount").lifetime is None
