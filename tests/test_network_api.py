"""The `repro.api` facade: Network.build, NetOptions validation, RunResult,
legacy shims and the facade-era scenario/harness integration."""

from __future__ import annotations

import pytest

from repro.api import Network, NetOptions, PROVENANCE_PRESETS, RunResult, resolve_preset
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.harness.runner import (
    ExperimentRow,
    run_best_path,
    run_configuration,
    run_network,
)
from repro.net.kernel import CostModel, SimulationKernel
from repro.net.topology import Topology, line_topology, random_topology
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode


class TestPresets:
    def test_paper_configurations_resolve(self):
        assert resolve_preset("ndlog") == "ndlog"
        assert resolve_preset("NDLog") == "ndlog"
        assert resolve_preset("SeNDLog") == "sendlog"
        assert resolve_preset("SeNDLogProv") == "sendlog-prov"
        assert resolve_preset("sendlog-prov") == "sendlog-prov"

    def test_unknown_preset_lists_valid_names(self):
        with pytest.raises(ValueError, match="sendlog-prov"):
            resolve_preset("turbo")

    def test_presets_map_to_engine_modes(self):
        options = NetOptions()
        config = options.engine_config("sendlog-prov")
        assert config.says_mode is SaysMode.SIGNED
        assert config.provenance_mode is ProvenanceMode.CONDENSED
        config = options.engine_config("distributed")
        assert config.says_mode is SaysMode.NONE
        assert config.provenance_mode is ProvenanceMode.DISTRIBUTED

    def test_option_overrides_reach_engine_config(self):
        options = NetOptions(
            default_ttl=12.0, track_dependencies=True, keep_offline_provenance=True
        )
        config = options.engine_config("ndlog")
        assert config.default_ttl == 12.0
        assert config.track_dependencies is True
        assert config.keep_offline_provenance is True

    def test_tiered_store_knobs_reach_engine_config(self, tmp_path):
        options = NetOptions(
            keep_offline_provenance=True,
            provenance_store="tiered",
            hot_tier_entries=32,
            spill_dir=str(tmp_path),
        )
        config = options.engine_config("ndlog")
        assert config.provenance_store == "tiered"
        assert config.hot_tier_entries == 32
        assert config.spill_dir == str(tmp_path)


class TestNetOptionsValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"key_bits": 4}, "key_bits"),
            ({"max_events": 0}, "max_events"),
            ({"default_bandwidth": 0}, "default_bandwidth"),
            ({"query_timeout": 0}, "query_timeout"),
            ({"default_ttl": -1.0}, "default_ttl"),
            ({"link_relation": ""}, "link_relation"),
            ({"provenance_store": "warp"}, "provenance_store"),
            ({"hot_tier_entries": 0}, "hot_tier_entries"),
            ({"spill_dir": ""}, "spill_dir"),
        ],
    )
    def test_bad_values_name_their_field(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            NetOptions(**kwargs)

    def test_unknown_override_lists_fields(self):
        with pytest.raises(ValueError, match="frobnicate"):
            NetOptions().merged(frobnicate=True)

    def test_merged_applies_overrides(self):
        merged = NetOptions().merged(batching=False, key_bits=128)
        assert merged.batching is False and merged.key_bits == 128


class TestNetworkBuild:
    def test_int_topology_uses_paper_workload(self):
        network = Network.build(topology=10, provenance="ndlog", seed=1)
        assert network.topology.node_count == 10
        assert abs(network.topology.average_outdegree() - 3.0) < 0.5

    def test_explicit_topology_is_used_verbatim(self):
        topology = line_topology(4)
        network = Network.build(topology=topology, provenance="ndlog")
        assert network.topology is topology

    def test_program_from_source_text(self):
        source = """
            materialize(link, infinity, infinity, keys(1,2)).
            materialize(reachable, infinity, infinity, keys(1,2)).
            r1 reachable(@S, D) :- link(@S, D).
        """
        network = Network.build(
            topology=line_topology(3), program=source, provenance="ndlog"
        )
        result = network.run()
        assert result.count("reachable") == network.topology.link_count

    def test_unknown_program_name(self):
        with pytest.raises(ValueError, match="best-path"):
            Network.build(topology=4, program="wat", provenance="ndlog")

    def test_bad_types_raise(self):
        with pytest.raises(TypeError):
            Network.build(topology=4.5, provenance="ndlog")
        with pytest.raises(TypeError):
            Network.build(topology=4, program=123, provenance="ndlog")

    def test_explicit_config_bypasses_preset(self):
        config = EngineConfig(
            says_mode=SaysMode.NONE, provenance_mode=ProvenanceMode.DISTRIBUTED
        )
        network = Network.build(topology=4, config=config)
        assert network.config is config
        assert network.configuration == "custom"

    def test_explicit_config_rejects_engine_overrides(self):
        """config= replaces the preset wholesale; engine-side NetOptions
        overrides would be silently dropped, so they must raise instead."""
        config = EngineConfig()
        with pytest.raises(ValueError, match="keep_offline_provenance"):
            Network.build(topology=4, config=config, keep_offline_provenance=True)
        # SimulationKernel-side options still combine with an explicit config.
        network = Network.build(topology=4, config=config, key_bits=128)
        assert network.options.key_bits == 128

    def test_base_facts_match_catalog_arity(self):
        best_path = Network.build(topology=line_topology(3), provenance="ndlog")
        reachable = Network.build(
            topology=line_topology(3), program="reachable", provenance="ndlog"
        )
        assert all(
            len(fact.values) == 3
            for facts in best_path.base_facts().values()
            for fact in facts
        )
        assert all(
            len(fact.values) == 2
            for facts in reachable.base_facts().values()
            for fact in facts
        )

    def test_legacy_simulator_default_workload_matches_facade(self):
        """SimulationKernel.run() with no base facts injects the same catalog-shaped
        workload the facade does — a bare reachability run just works."""
        from repro.engine.node_engine import EngineConfig
        from repro.queries import compile_reachable

        topology = line_topology(3)
        legacy = SimulationKernel(topology, compile_reachable(), EngineConfig()).run()
        assert legacy.converged
        assert legacy.all_facts("reachable")
        facade = Network.build(
            topology=line_topology(3), program="reachable", provenance="ndlog"
        ).run()
        assert facade.summary() == legacy.stats.summary()

    def test_facade_delegates_to_simulator(self):
        network = Network.build(topology=line_topology(3), provenance="ndlog")
        assert network.link_is_up("n0", "n1")
        assert network.node_is_up("n0")
        assert network.simulator.batch_receive is True


class TestRunResult:
    @pytest.fixture(scope="class")
    def facade_run(self):
        topology = random_topology(8, seed=1)
        network = Network.build(
            topology=topology, provenance="SeNDLogProv", seed=1
        )
        return network.run()

    def test_metrics_are_flat_attributes(self, facade_run):
        assert facade_run.converged
        assert facade_run.completion_time_s > 0
        assert facade_run.bandwidth_mb > 0
        assert facade_run.security_bytes > 0
        assert facade_run.provenance_bytes > 0
        assert facade_run.query_bytes == 0 and facade_run.query_messages == 0
        assert facade_run.node_count == 8

    def test_as_dict_includes_coordinates_and_summary(self, facade_run):
        row = facade_run.as_dict()
        assert row["configuration"] == "sendlog-prov"
        assert row["node_count"] == 8
        assert "query_bytes" in row and "completion_time_s" in row

    def test_facade_matches_legacy_simulator_byte_for_byte(self):
        """The facade is a veneer: same topology/config => identical stats."""
        topology = random_topology(8, seed=2)
        legacy_config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        legacy = SimulationKernel(topology, compile_best_path(), legacy_config).run()
        facade = Network.build(topology=topology, provenance="sendlog-prov").run()
        assert facade.summary() == legacy.stats.summary()


class TestLegacyShims:
    def test_run_best_path_returns_unified_result(self, compiled_best_path):
        topology = random_topology(6, seed=0)
        with pytest.warns(DeprecationWarning):
            result = run_best_path(topology, "NDLog", compiled=compiled_best_path)
        assert isinstance(result, RunResult)
        assert result.converged
        assert result.all_facts("bestPath")

    def test_run_configuration_threads_batch_receive(self, monkeypatch):
        """The regression this PR fixes: batch_receive used to be dropped."""
        captured = {}

        def fake_run_network(configuration, topology, **kwargs):
            captured.update(kwargs, configuration=configuration)
            raise _Probe

        class _Probe(Exception):
            pass

        monkeypatch.setattr("repro.harness.runner.run_network", fake_run_network)
        with pytest.raises(_Probe), pytest.warns(DeprecationWarning):
            run_configuration("NDLog", 6, batch_receive=False, batching=False)
        assert captured["batch_receive"] is False
        assert captured["batching"] is False

    def test_run_configuration_row_shape(self, compiled_best_path):
        with pytest.warns(DeprecationWarning):
            row = run_configuration(
                "NDLog", node_count=6, seed=1, compiled=compiled_best_path
            )
        assert isinstance(row, ExperimentRow)
        assert row.configuration == "NDLog"
        assert row.best_paths == 6 * 5
        assert row.query_bytes == 0
        assert "query_bytes" in row.as_dict()

    def test_run_network_records_sweep_coordinates(self, compiled_best_path):
        run = run_network("SeNDLog", 6, seed=3, compiled=compiled_best_path)
        assert run.configuration == "SeNDLog"
        assert run.node_count == 6
        assert run.seed == 3

    def test_custom_cost_model_passes_through(self, compiled_best_path):
        topology = random_topology(6, seed=0)
        with pytest.warns(DeprecationWarning):
            result = run_best_path(
                topology,
                "NDLog",
                compiled=compiled_best_path,
                cost_model=CostModel(seconds_per_rule_firing=0.0),
            )
        assert result.converged


class TestScenarioFacadeIntegration:
    def test_builders_return_networks(self):
        from repro.harness.scenarios import link_failure_scenario, run_scenario

        scenario, network = link_failure_scenario(node_count=10, seed=3)
        assert isinstance(network, Network)
        report = run_scenario(scenario, network)
        assert report.converged
        assert report.simulator is network.simulator
        for row in report.rows:
            assert row.query_messages == 0
            assert row.query_kilobytes == 0.0
            assert "query_messages" in row.as_dict()

    def test_run_scenario_accepts_bare_simulator(self):
        from repro.harness.scenarios import retraction_scenario, run_scenario

        scenario, network = retraction_scenario(node_count=4)
        report = run_scenario(scenario, network.simulator)
        assert report.converged

    def test_phase_row_reexported_from_api(self):
        import repro.api as api
        from repro.harness.scenarios import PhaseRow, ScenarioReport

        assert api.PhaseRow is PhaseRow
        assert api.ScenarioReport is ScenarioReport
        with pytest.raises(AttributeError):
            api.no_such_symbol


class TestSweepIntegration:
    def test_sweep_rows_are_run_results(self):
        from repro.harness.experiments import figure3_series, sweep

        result = sweep(node_counts=(6,), seeds=(0,), configurations=("NDLog",))
        assert len(result.rows) == 1
        assert isinstance(result.rows[0], RunResult)
        assert result.rows[0].configuration == "NDLog"
        series = figure3_series(result)
        assert set(series) == {"NDLog"}

    def test_sweep_accepts_batch_receive(self):
        from repro.harness.experiments import sweep

        result = sweep(
            node_counts=(6,),
            seeds=(0,),
            configurations=("NDLog",),
            batch_receive=False,
        )
        assert result.rows[0].converged
