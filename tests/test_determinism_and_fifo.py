"""Determinism guarantees: FIFO delta order, repeatable runs, backend parity.

The last class parametrizes a representative slice over
``backend="serial" | "sharded"``: the two execution backends must produce
identical derived facts, per-message sequence numbers and integer/byte
statistics (the sharded backend's core contract).
"""

from __future__ import annotations

import pytest

from repro.datalog import localize_program, parse_program
from repro.datalog.catalog import Catalog
from repro.datalog.planner import compile_program
from repro.engine.database import Database
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.seminaive import evaluate_program
from repro.engine.tuples import Fact
from repro.net.kernel import SimulationKernel
from repro.net.sharding import ShardedSimulator
from repro.net.stats import COORDINATION_KEYS
from repro.net.topology import random_topology
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode

REACH = """
    materialize(edge, infinity, infinity, keys(1,2)).
    materialize(reach, infinity, infinity, keys(1)).

    r1 reach(@X) :- edge(@Y, X), reach(@Y).
"""


def _reach_fixpoint():
    compiled = compile_program(localize_program(parse_program(REACH)))
    database = Database(Catalog.from_program(compiled.program))
    base = [
        Fact("edge", ("a", "b")),
        Fact("edge", ("a", "c")),
        Fact("edge", ("b", "d")),
        Fact("edge", ("c", "e")),
        Fact("edge", ("d", "f")),
        Fact("reach", ("a",)),
    ]
    return evaluate_program(compiled, database, base)


class TestFifoDeltaOrder:
    def test_derivations_appear_in_breadth_first_order(self):
        # FIFO draining means one-hop facts derive before two-hop facts: the
        # deque switch and same-relation batching must not reorder deltas.
        result = _reach_fixpoint()
        derived = [d.fact.values[0] for d in result.derivations if d.rule_label == "r1"]
        assert derived == ["b", "c", "d", "e", "f"]

    def test_back_to_back_fixpoints_are_identical(self):
        first = _reach_fixpoint()
        second = _reach_fixpoint()
        assert [str(d) for d in first.derivations] == [str(d) for d in second.derivations]
        assert first.iterations == second.iterations
        assert first.database.snapshot() == second.database.snapshot()


class RecordingSimulator(SimulationKernel):
    """SimulationKernel that records every delivered message's identifying data."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delivered = []

    def _deliver(self, message, deliver_at):
        self.delivered.append(
            (
                message.sequence,
                str(message.source),
                str(message.destination),
                tuple(fact.key() for fact in message.facts()),
            )
        )
        super()._deliver(message, deliver_at)


def _run_once():
    topology = random_topology(10, seed=3)
    simulator = RecordingSimulator(
        topology=topology,
        compiled=compile_best_path(),
        config=EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.NONE
        ),
    )
    result = simulator.run()
    assert result.converged
    return result, simulator.delivered


class TestSimulatorDeterminism:
    def test_identical_runs_in_one_process_match_exactly(self):
        # Two back-to-back runs must agree on every statistic AND on the
        # per-message sequence numbers: the sequence counter lives on the
        # SimulationKernel, not in process-global state.
        first_result, first_delivered = _run_once()
        second_result, second_delivered = _run_once()

        assert first_result.stats.summary() == second_result.stats.summary()
        assert first_delivered == second_delivered

        # Sequence numbering starts fresh for every run.
        assert first_delivered[0][0] == second_delivered[0][0]
        assert min(seq for seq, *_ in first_delivered) <= len(first_delivered)

    def test_runs_agree_on_stored_facts(self):
        first_result, _ = _run_once()
        second_result, _ = _run_once()
        for address, engine in first_result.engines.items():
            assert engine.database.snapshot() == (
                second_result.engines[address].database.snapshot()
            )


def _run_backend(backend: str, configuration: EngineConfig):
    """One Best-Path run plus its per-delivery records, on either backend."""
    topology = random_topology(10, seed=3)
    records = []
    original = SimulationKernel._deliver

    def patched(self, message, deliver_at):
        records.append(
            (
                message.sequence,
                str(message.source),
                str(message.destination),
                tuple(fact.key() for fact in message.facts()),
            )
        )
        return original(self, message, deliver_at)

    if backend == "serial":
        simulator = SimulationKernel(topology, compile_best_path(), configuration)
    else:
        simulator = ShardedSimulator(
            topology,
            compile_best_path(),
            configuration,
            shards=3,
            shard_mode="inline",
        )
    SimulationKernel._deliver = patched
    try:
        result = simulator.run()
    finally:
        SimulationKernel._deliver = original
    assert result.converged
    return result, records


class TestCrossBackendDeterminism:
    """backend="sharded" replays the exact serial schedule (satellite slice)."""

    @pytest.fixture(scope="class")
    def runs(self):
        def configuration():
            return EngineConfig(
                says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.NONE
            )

        return (
            _run_backend("serial", configuration()),
            _run_backend("sharded", configuration()),
        )

    def test_identical_integer_and_byte_stats(self, runs):
        (serial, _), (sharded, _) = runs
        left, right = serial.stats.summary(), sharded.stats.summary()
        for key in left:
            if key in COORDINATION_KEYS:
                continue  # the ledger measures coordination, not the network
            if key == "cpu_seconds":  # cross-node float sum: association only
                assert left[key] == pytest.approx(right[key], rel=1e-12)
            else:
                assert left[key] == right[key], key

    def test_identical_derived_facts(self, runs):
        (serial, _), (sharded, _) = runs
        for address, engine in serial.engines.items():
            assert engine.database.snapshot() == (
                sharded.engines[address].database.snapshot()
            )

    def test_identical_sequence_numbers_per_destination(self, runs):
        # Each node must see the same messages, from the same senders, with
        # the same per-sender sequence numbers, in the same order — the
        # backends differ only in how deliveries interleave *across* nodes.
        (_, serial_records), (_, sharded_records) = runs

        def per_destination(records):
            grouped = {}
            for sequence, source, destination, keys in records:
                grouped.setdefault(destination, []).append((sequence, source, keys))
            return grouped

        assert per_destination(serial_records) == per_destination(sharded_records)
        assert sorted(serial_records) == sorted(sharded_records)
