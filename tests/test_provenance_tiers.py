"""Tests for the tiered offline archive (hot tier + spill log).

Covers the forensics contract under eviction, crash and pickling; the
write-through discipline; deterministic LRU eviction; spill-record
round-tripping; storage accounting; and the satellite regression fixes in
:class:`OfflineProvenanceArchive` (index-aware ``storage_bytes`` and
query-pinned ``age_out``).
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.tuples import Derivation, Fact
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.store import OfflineProvenanceArchive, ProvenanceEntry
from repro.provenance.tiers import (
    DEFAULT_HOT_TIER_ENTRIES,
    LogSpillBackend,
    TieredProvenanceArchive,
    decode_entry,
    encode_entry,
)


def _derivation(relation, values, t=0.0, rule="r", antecedents=()):
    return Derivation(
        fact=Fact(relation, values),
        rule_label=rule,
        node="a",
        antecedents=tuple(Fact(rel, val) for rel, val in antecedents),
        timestamp=t,
    )


def _tiered(tmp_path, **kw):
    kw.setdefault("spill_dir", str(tmp_path))
    return TieredProvenanceArchive("a", **kw)


class TestSpillRecordCodec:
    def test_entry_round_trips_exactly(self):
        entry = ProvenanceEntry(
            key=("bestPath", ("a", "c", ("a", "b", "c"), 2.0)),
            rule_label="p4",
            node="a",
            antecedent_keys=(("link", ("a", "b")),),
            timestamp=3.5,
            expires_at=13.5,
            annotation=CondensedProvenance.from_source("link@a"),
        )
        assert decode_entry(encode_entry(entry)) == entry

    def test_entry_without_annotation_round_trips(self):
        entry = ProvenanceEntry(
            key=("link", ("a", "b")),
            rule_label="base",
            node="a",
            antecedent_keys=(),
            timestamp=0.0,
            expires_at=None,
        )
        assert decode_entry(encode_entry(entry)) == entry

    def test_interning_callback_shares_annotations(self):
        entry = ProvenanceEntry(
            key=("x", ("v",)),
            rule_label="r",
            node="a",
            antecedent_keys=(),
            timestamp=0.0,
            expires_at=None,
            annotation=CondensedProvenance.from_source("s"),
        )
        table = {}

        def intern(annotation):
            return table.setdefault(annotation.expression.monomials, annotation)

        first = decode_entry(encode_entry(entry), intern_annotation=intern)
        second = decode_entry(encode_entry(entry), intern_annotation=intern)
        assert first.annotation is second.annotation


class TestLogSpillBackend:
    def test_append_read_round_trip(self, tmp_path):
        backend = LogSpillBackend(str(tmp_path / "a.plog"))
        slot_one = backend.append(b"first\n")
        slot_two = backend.append(b"second\n")
        assert backend.read(*slot_one) == b"first\n"
        assert backend.read(*slot_two) == b"second\n"

    def test_pickle_drops_handles_and_appends_continue(self, tmp_path):
        backend = LogSpillBackend(str(tmp_path / "a.plog"))
        slot_one = backend.append(b"first\n")
        clone = pickle.loads(pickle.dumps(backend))
        slot_two = clone.append(b"second\n")
        assert clone.read(*slot_one) == b"first\n"
        assert clone.read(*slot_two) == b"second\n"

    def test_fresh_backend_truncates_stale_file(self, tmp_path):
        path = tmp_path / "a.plog"
        path.write_bytes(b"stale junk from an earlier run\n")
        backend = LogSpillBackend(str(path))
        slot = backend.append(b"fresh\n")
        assert slot == (0, 6)
        assert backend.read(*slot) == b"fresh\n"


class TestWriteThrough:
    def test_every_record_lands_in_the_log_before_caching(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=DEFAULT_HOT_TIER_ENTRIES)
        archive.record(_derivation("x", ("1",)))
        assert archive.spilled_bytes() > 0
        # The entry is also hot, so reading it back costs no spill read.
        assert archive.entries(("x", ("1",)))
        assert archive.spill_read_count() == 0

    def test_forensics_survive_any_capacity(self, tmp_path):
        for capacity in (0, 1, 2, 1000):
            archive = _tiered(tmp_path, hot_entries=capacity)
            for i in range(10):
                archive.record(_derivation("x", (str(i),), t=float(i)))
            got = {entry.key for entry in archive.entries()}
            assert got == {("x", (str(i),)) for i in range(10)}

    def test_zero_capacity_archive_reads_everything_from_disk(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=0)
        archive.record(_derivation("x", ("1",)))
        assert archive.resident_bytes() == 0
        assert archive.entries(("x", ("1",)))
        assert archive.spill_read_count() == 1


class TestLruEviction:
    def test_eviction_is_oldest_touch_first(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=2)
        archive.record(_derivation("x", ("1",)))
        archive.record(_derivation("x", ("2",)))
        # Touch key 1 so key 2 becomes the LRU victim.
        archive.entries(("x", ("1",)))
        archive.record(_derivation("x", ("3",)))
        archive.entries(("x", ("1",)))
        assert archive.spill_read_count() == 0  # still hot
        archive.entries(("x", ("2",)))
        assert archive.spill_read_count() == 1  # evicted, refetched

    def test_hot_count_never_exceeds_capacity(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=3)
        for i in range(20):
            archive.record(_derivation("x", (str(i),), t=float(i)))
            assert archive._hot_count <= 3

    def test_groups_are_cached_whole_or_not_at_all(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=10)
        for t in (0.0, 1.0, 2.0):
            archive.record(_derivation("x", ("1",), t=t))
        # Evict the group, then re-derive the key: the partial (new) entry
        # must not mask the two archived ones.
        archive.drop_cache()
        archive.record(_derivation("x", ("1",), t=3.0))
        entries = archive.entries(("x", ("1",)))
        assert [e.timestamp for e in entries] == [0.0, 1.0, 2.0, 3.0]

    def test_full_scans_do_not_thrash_the_lru(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=1)
        archive.record(_derivation("x", ("1",)))
        archive.record(_derivation("x", ("2",)))  # evicts key 1
        before = dict(archive._hot)
        archive.entries()  # full scan fetches key 1 from the log...
        assert dict(archive._hot) == before  # ...but does not cache it

    def test_resident_bytes_bounded_while_spill_grows(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=4)
        high_water = 0
        for i in range(200):
            archive.record(_derivation("x", (str(i),), t=float(i)))
            high_water = max(high_water, archive.resident_bytes())
        assert archive.resident_bytes() <= high_water
        # 200 near-identical entries: the hot payload stays around the
        # 4-entry mark while the log holds all 200.
        assert archive.spilled_bytes() > 20 * high_water


class TestCrashAndPickle:
    def test_drop_cache_loses_only_the_hot_tier(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=100)
        for i in range(5):
            archive.record(
                _derivation("x", (str(i),), antecedents=(("y", ("0",)),))
            )
        archive.drop_cache()
        assert archive.resident_bytes() == 0
        got = {entry.key for entry in archive.entries()}
        assert got == {("x", (str(i),)) for i in range(5)}
        assert archive.spill_read_count() == 5

    def test_archive_pickles_across_spawn_boundary(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=2)
        archive.record(_derivation("x", ("1",)))
        clone = pickle.loads(pickle.dumps(archive))
        clone.record(_derivation("x", ("2",)))
        got = {entry.key for entry in clone.entries()}
        assert got == {("x", ("1",)), ("x", ("2",))}

    def test_graph_reconstruction_matches_memory_oracle_after_crash(self, tmp_path):
        oracle = OfflineProvenanceArchive("a")
        tiered = _tiered(tmp_path, hot_entries=1)
        link = Fact("link", ("a", "b"))
        hop = Derivation(
            fact=Fact("hop", ("a", "b")),
            rule_label="h1",
            node="a",
            antecedents=(link,),
            timestamp=1.0,
        )
        path = Derivation(
            fact=Fact("path", ("a", "b")),
            rule_label="p1",
            node="a",
            antecedents=(Fact("hop", ("a", "b")),),
            timestamp=2.0,
        )
        for archive in (oracle, tiered):
            archive.record_base(link)
            archive.record(hop)
            archive.record(path)
        tiered.drop_cache()
        root = ("path", ("a", "b"))
        assert tiered.reconstruct_graph(root).same_structure(
            oracle.reconstruct_graph(root)
        )


class TestAnnotationSharing:
    def test_structurally_equal_annotations_share_one_object(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=10)
        note = CondensedProvenance.from_source("link@a")
        archive.record(_derivation("x", ("1",)), annotation=note)
        archive.record(_derivation("y", ("1",)), annotation=CondensedProvenance.from_source("link@a"))
        first = archive.annotation_of(("x", ("1",)))
        second = archive.annotation_of(("y", ("1",)))
        assert first is second

    def test_refetched_entries_reuse_interned_annotations(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=1)
        note = CondensedProvenance.from_source("s")
        archive.record(_derivation("x", ("1",)), annotation=note)
        archive.record(_derivation("y", ("1",)))  # evicts key x
        (entry,) = archive.entries(("x", ("1",)))  # refetched from the log
        assert entry.annotation is archive.annotation_of(("x", ("1",)))

    def test_merged_annotation_tracks_alternative_derivations(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=10)
        archive.record(
            _derivation("x", ("1",)), annotation=CondensedProvenance.from_source("p")
        )
        archive.record(
            _derivation("x", ("1",), t=1.0),
            annotation=CondensedProvenance.from_source("q"),
        )
        merged = archive.annotation_of(("x", ("1",)))
        assert merged.sources() == frozenset({"p", "q"})


class TestAgingAndPins:
    def test_age_out_drops_old_unpinned_entries(self, tmp_path):
        archive = _tiered(tmp_path, retention=10.0, hot_entries=10)
        archive.record(_derivation("x", ("old",), t=0.0))
        archive.record(_derivation("x", ("new",), t=95.0))
        assert archive.age_out(now=100.0) == 1
        assert not archive.knows(("x", ("old",)))
        assert archive.knows(("x", ("new",)))

    def test_pinned_entry_survives_aging(self, tmp_path):
        archive = _tiered(tmp_path, retention=10.0, hot_entries=10)
        entry_id = archive.record(_derivation("x", ("old",), t=0.0))
        archive.pin(entry_id)
        assert archive.age_out(now=100.0) == 0
        assert archive.knows(("x", ("old",)))

    def test_query_pin_blocks_aging_until_released(self, tmp_path):
        archive = _tiered(tmp_path, retention=10.0, hot_entries=10)
        key = ("x", ("old",))
        archive.record(_derivation("x", ("old",), t=0.0))
        archive.pin_key(key)
        archive.pin_key(key)  # two in-flight queries
        assert archive.age_out(now=100.0) == 0
        archive.release_key(key)
        assert archive.age_out(now=100.0) == 0  # one query still holds it
        archive.release_key(key)
        assert archive.age_out(now=100.0) == 1

    def test_aged_entries_leave_the_hot_tier(self, tmp_path):
        archive = _tiered(tmp_path, retention=10.0, hot_entries=10)
        archive.record(_derivation("x", ("old",), t=0.0))
        archive.age_out(now=100.0)
        assert archive.resident_bytes() == 0
        assert len(archive) == 0


class TestTieredStorageAccounting:
    def test_storage_bytes_exceeds_resident_bytes(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=2)
        for i in range(10):
            archive.record(_derivation("x", (str(i),), t=float(i)))
        # storage_bytes adds the per-key index and slot metadata, which
        # cover all 10 entries even though only 2 are resident.
        assert archive.storage_bytes() > archive.resident_bytes()

    def test_remote_and_base_metadata_counted(self, tmp_path):
        archive = _tiered(tmp_path, hot_entries=2)
        before = archive.storage_bytes()
        archive.record_base(Fact("link", ("a", "b")))
        archive.record_remote(Fact("route", ("b", "c")), origin="b")
        assert archive.storage_bytes() > before

    def test_invalid_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _tiered(tmp_path, hot_entries=-1)


class TestOfflineArchiveRegressions:
    """Satellite 1: storage accounting and query-pinned aging in the
    in-memory archive."""

    def test_storage_bytes_counts_index_and_annotations(self):
        archive = OfflineProvenanceArchive("a")
        archive.record(
            Derivation(
                fact=Fact("x", ("1",)),
                rule_label="r",
                node="a",
                antecedents=(),
                timestamp=0.0,
            ),
            annotation=CondensedProvenance.from_source("a-very-long-source-name"),
        )
        without_annotation = OfflineProvenanceArchive("a")
        without_annotation.record(
            Derivation(
                fact=Fact("x", ("1",)),
                rule_label="r",
                node="a",
                antecedents=(),
                timestamp=0.0,
            )
        )
        assert archive.storage_bytes() > without_annotation.storage_bytes()

    def test_storage_bytes_counts_base_and_origin_metadata(self):
        archive = OfflineProvenanceArchive("a")
        before = archive.storage_bytes()
        archive.record_base(Fact("link", ("a", "b")))
        archive.record_remote(Fact("route", ("b", "c")), origin="b")
        assert archive.storage_bytes() > before

    def test_age_out_refuses_query_pinned_keys(self):
        archive = OfflineProvenanceArchive("a", retention=10.0)
        key = ("x", ("old",))
        archive.record(
            Derivation(
                fact=Fact("x", ("old",)),
                rule_label="r",
                node="a",
                antecedents=(),
                timestamp=0.0,
            )
        )
        archive.pin_key(key)
        archive.age_out(now=100.0)
        assert archive.knows(key)
        archive.release_key(key)
        archive.age_out(now=100.0)
        assert not archive.knows(key)
