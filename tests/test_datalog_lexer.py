"""Tests for the NDlog / SeNDlog tokenizer."""

from __future__ import annotations

import pytest

from repro.datalog.errors import ParseError
from repro.datalog.lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, SYMBOL, VARIABLE, tokenize


def kinds(source: str):
    return [token.kind for token in tokenize(source)][:-1]  # drop EOF


def texts(source: str):
    return [token.text for token in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_lowercase_identifier(self):
        assert kinds("link") == [IDENT]

    def test_uppercase_identifier_is_variable(self):
        assert kinds("Source") == [VARIABLE]

    def test_underscore_identifier(self):
        assert kinds("f_concat") == [IDENT]

    def test_integer_number(self):
        tokens = tokenize("42")
        assert tokens[0].kind == NUMBER
        assert tokens[0].text == "42"

    def test_float_number(self):
        tokens = tokenize("3.25")
        assert tokens[0].kind == NUMBER
        assert tokens[0].text == "3.25"

    def test_double_quoted_string(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == STRING
        assert tokens[0].text == "hello world"

    def test_single_quoted_string(self):
        tokens = tokenize("'alice'")
        assert tokens[0].kind == STRING
        assert tokens[0].text == "alice"

    def test_keywords_are_case_insensitive(self):
        assert kinds("says At MATERIALIZE keys infinity") == [KEYWORD] * 5

    def test_keyword_text_is_lowercased(self):
        assert texts("At") == ["at"]


class TestSymbols:
    def test_rule_arrow(self):
        assert texts("p :- q.") == ["p", ":-", "q", "."]

    def test_assignment_symbol_not_split(self):
        assert ":=" in texts("C := 1")

    def test_comparison_operators(self):
        assert texts("<= >= == != < >") == ["<=", ">=", "==", "!=", "<", ">"]

    def test_location_specifier(self):
        assert texts("link(@S, D)") == ["link", "(", "@", "S", ",", "D", ")"]

    def test_arithmetic_symbols(self):
        assert texts("1 + 2 * 3") == ["1", "+", "2", "*", "3"]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("p :- q & r.")


class TestCommentsAndPositions:
    def test_hash_comment_skipped(self):
        assert texts("p. # this is a comment\nq.") == ["p", ".", "q", "."]

    def test_slash_slash_comment_skipped(self):
        assert texts("p. // also a comment\nq.") == ["p", ".", "q", "."]

    def test_line_numbers_advance(self):
        tokens = tokenize("p.\nq.")
        q_token = [t for t in tokens if t.text == "q"][0]
        assert q_token.line == 2

    def test_column_positions(self):
        tokens = tokenize("abc def")
        assert tokens[0].column == 1
        assert tokens[1].column == 5

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize('"never closed')

    def test_unterminated_string_across_newline_raises(self):
        with pytest.raises(ParseError):
            tokenize('"broken\nstring"')


class TestRealisticRules:
    def test_reachable_rule_token_count(self):
        tokens = tokenize("r1 reachable(@S, D) :- link(@S, D).")
        assert tokens[-1].kind == EOF
        assert len(tokens) == 18

    def test_says_rule(self):
        result = texts("s3 reachable(Z, Y)@Z :- Z says linkD(S, Z).")
        assert "says" in result
        assert result.count("@") == 1

    def test_aggregate_tokens(self):
        assert texts("min<C>") == ["min", "<", "C", ">"]
