"""Unit tests for NodeStats.merge / NetworkStats.merge.

The merge path is what reassembles per-shard statistics into one run record
(the sharded backend's ``finish``) and what aggregates repeated runs of one
sweep point; these tests pin the arithmetic: counters add, instants take the
maximum, histograms fold, and per-node entries combine by address.
"""

from __future__ import annotations

import pytest

from repro.net.stats import NetworkStats, NodeStats


def _node(address="n0", **overrides) -> NodeStats:
    stats = NodeStats(address=address)
    for name, value in overrides.items():
        setattr(stats, name, value)
    return stats


class TestNodeStatsMerge:
    def test_counters_add_and_busy_until_takes_max(self):
        first = _node(
            messages_sent=3,
            bytes_sent=300,
            tuples_sent=7,
            cpu_seconds=1.5,
            busy_until=4.0,
            facts_derived=11,
        )
        second = _node(
            messages_sent=2,
            bytes_sent=150,
            tuples_sent=4,
            cpu_seconds=0.5,
            busy_until=2.5,
            facts_derived=3,
        )
        first.merge(second)
        assert first.messages_sent == 5
        assert first.bytes_sent == 450
        assert first.tuples_sent == 11
        assert first.cpu_seconds == 2.0
        assert first.busy_until == 4.0  # an instant, not a quantity
        assert first.facts_derived == 14

    def test_batch_size_histograms_fold(self):
        first = _node(batch_sizes={1: 2, 3: 1})
        second = _node(batch_sizes={3: 4, 5: 1})
        first.merge(second)
        assert first.batch_sizes == {1: 2, 3: 5, 5: 1}

    def test_query_attribution_merges(self):
        first = _node(queries_issued=1, query_messages_sent=4, query_bytes_charged=900)
        second = _node(queries_issued=2, query_messages_sent=1, query_bytes_charged=100)
        first.merge(second)
        assert first.queries_issued == 3
        assert first.query_messages_sent == 5
        assert first.query_bytes_charged == 1000

    def test_refuses_to_merge_different_addresses(self):
        with pytest.raises(ValueError, match="n1"):
            _node("n0").merge(_node("n1"))


class TestNetworkStatsMerge:
    def test_disjoint_nodes_transfer(self):
        left = NetworkStats()
        left.node("n0").messages_sent = 2
        left.total_messages = 2
        right = NetworkStats()
        right.node("n1").messages_sent = 5
        right.total_messages = 5
        left.merge(right)
        assert set(left.nodes) == {"n0", "n1"}
        assert left.total_messages == 7
        assert left.total_bytes() == 0

    def test_shared_nodes_fold_by_address(self):
        left = NetworkStats()
        left.node("n0").bytes_sent = 100
        right = NetworkStats()
        right.node("n0").bytes_sent = 50
        left.merge(right)
        assert left.node("n0").bytes_sent == 150
        assert left.total_bytes() == 150

    def test_completion_time_takes_max_and_losses_add(self):
        left = NetworkStats(completion_time=3.0, messages_lost=1, messages_dropped=2)
        right = NetworkStats(completion_time=7.5, messages_lost=4, messages_dropped=0)
        left.merge(right)
        assert left.completion_time == 7.5
        assert left.messages_lost == 5
        assert left.messages_dropped == 2

    def test_merge_never_mutates_or_aliases_the_source(self):
        # Regression: merging must not adopt the other record's NodeStats
        # by reference — aggregating repeated runs of one topology (same
        # addresses) would otherwise corrupt the first run's statistics.
        run1, run2 = NetworkStats(), NetworkStats()
        run1.node("n0").messages_sent = 5
        run1.node("n0").batch_sizes[2] = 1
        run2.node("n0").messages_sent = 7
        combined = NetworkStats.merged([run1, run2])
        assert combined.node("n0").messages_sent == 12
        assert run1.node("n0").messages_sent == 5
        assert run2.node("n0").messages_sent == 7
        assert combined.node("n0") is not run1.node("n0")
        combined.node("n0").batch_sizes[2] = 99
        assert run1.node("n0").batch_sizes == {2: 1}

    def test_merged_classmethod_folds_many(self):
        parts = []
        for index in range(3):
            stats = NetworkStats()
            stats.node(f"n{index}").messages_sent = index + 1
            stats.total_messages = index + 1
            parts.append(stats)
        combined = NetworkStats.merged(parts)
        assert combined.total_messages == 6
        assert set(combined.nodes) == {"n0", "n1", "n2"}

    def test_summary_of_merged_equals_summary_of_whole(self):
        # Splitting one run's counters across two records and merging them
        # back must be invisible to every integer summary metric.
        whole = NetworkStats(total_messages=10)
        whole.node("a").messages_sent = 6
        whole.node("a").bytes_sent = 600
        whole.node("b").messages_sent = 4
        whole.node("b").bytes_sent = 400

        left = NetworkStats(total_messages=6)
        left.node("a").messages_sent = 6
        left.node("a").bytes_sent = 600
        right = NetworkStats(total_messages=4)
        right.node("b").messages_sent = 4
        right.node("b").bytes_sent = 400
        combined = NetworkStats.merged([left, right])
        assert combined.summary() == whole.summary()
