"""Tests for tools/check_invariants.py — the determinism-invariant checker."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL_PATH = REPO_ROOT / "tools" / "check_invariants.py"
SRC_ROOT = REPO_ROOT / "src" / "repro"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_invariants", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves the defining module through sys.modules, so the
    # tool must be registered before execution.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


tool = _load_tool()

MINIMAL_EVENTS = """\
DELIVERY_PRIORITY = 1


class SimulationEvent:
    pass


class MessageDelivery(SimulationEvent):
    priority = DELIVERY_PRIORITY


class RefreshHorizon(SimulationEvent):
    pass


class RefreshTimerFire(SimulationEvent):
    pass


def event_rank(event, stamp=None):
    if isinstance(event, MessageDelivery):
        return (0,)
    if isinstance(event, RefreshTimerFire):
        return (3, str(event.address))
    return (1, stamp)
"""


@pytest.fixture
def tree(tmp_path):
    """A minimal package tree with hot-path dirs and a rank-covered events.py."""
    (tmp_path / "net").mkdir()
    (tmp_path / "engine").mkdir()
    (tmp_path / "harness").mkdir()
    (tmp_path / "net" / "events.py").write_text(MINIMAL_EVENTS, encoding="utf-8")
    return tmp_path


def _rules(findings):
    return sorted({f.rule for f in findings})


class TestRealTreeIsClean:
    def test_src_repro_has_no_violations(self):
        findings = tool.check_tree(SRC_ROOT)
        assert findings == [], [f.render() for f in findings]


class TestWallClock:
    def test_time_time_in_hot_path_flagged(self, tree):
        (tree / "net" / "mod.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
        )
        findings = tool.check_tree(tree)
        assert "INV001" in _rules(findings)

    def test_datetime_now_in_hot_path_flagged(self, tree):
        (tree / "engine" / "mod.py").write_text(
            "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
            encoding="utf-8",
        )
        assert "INV001" in _rules(tool.check_tree(tree))

    def test_wall_clock_outside_hot_path_allowed(self, tree):
        (tree / "harness" / "mod.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
        )
        assert "INV001" not in _rules(tool.check_tree(tree))

    def test_time_time_in_service_flagged(self, tree):
        # The query service plane is hot path: token buckets and cache TTLs
        # run on simulated time only.
        (tree / "service").mkdir()
        (tree / "service" / "ratelimit.py").write_text(
            "import time\n\ndef refill():\n    return time.monotonic()\n",
            encoding="utf-8",
        )
        assert "INV001" in _rules(tool.check_tree(tree))

    def test_simulated_time_in_service_allowed(self, tree):
        (tree / "service").mkdir()
        (tree / "service" / "ratelimit.py").write_text(
            "def refill(bucket, now):\n"
            "    return min(bucket.burst, bucket.tokens + now - bucket.updated)\n",
            encoding="utf-8",
        )
        assert "INV001" not in _rules(tool.check_tree(tree))


class TestRandomness:
    def test_module_level_random_flagged_everywhere(self, tree):
        (tree / "harness" / "mod.py").write_text(
            "import random\n\ndef f():\n    return random.randint(0, 3)\n",
            encoding="utf-8",
        )
        assert "INV002" in _rules(tool.check_tree(tree))

    def test_unseeded_random_instance_flagged(self, tree):
        (tree / "net" / "mod.py").write_text(
            "import random\n\ndef f():\n    return random.Random()\n",
            encoding="utf-8",
        )
        assert "INV002" in _rules(tool.check_tree(tree))

    def test_seeded_random_instance_allowed(self, tree):
        (tree / "net" / "mod.py").write_text(
            "import random\n\ndef f(seed):\n    return random.Random(seed)\n",
            encoding="utf-8",
        )
        assert "INV002" not in _rules(tool.check_tree(tree))


class TestEventRankCoverage:
    def test_delivery_event_without_rank_branch_flagged(self, tree):
        (tree / "net" / "events.py").write_text(
            MINIMAL_EVENTS
            + "\n\nclass StrayDelivery(SimulationEvent):\n"
            "    priority = DELIVERY_PRIORITY\n",
            encoding="utf-8",
        )
        findings = [f for f in tool.check_tree(tree) if f.rule == "INV003"]
        assert findings and "StrayDelivery" in findings[0].message

    def test_event_subclass_outside_events_py_flagged(self, tree):
        (tree / "engine" / "rogue.py").write_text(
            "from repro.net.events import SimulationEvent\n\n\n"
            "class RogueEvent(SimulationEvent):\n    pass\n",
            encoding="utf-8",
        )
        findings = [f for f in tool.check_tree(tree) if f.rule == "INV003"]
        assert findings and "RogueEvent" in findings[0].message

    def test_covered_tree_is_clean(self, tree):
        # Includes the timer-wheel refresh plane events: RefreshHorizon is a
        # stamped control event, RefreshTimerFire carries a content rank.
        assert "INV003" not in _rules(tool.check_tree(tree))

    def test_anti_delta_wire_kind_as_delivery_needs_rank_branch(self, tree):
        # A hypothetical events.py that models anti-delta traffic as its own
        # delivery-priority event class (instead of a Message kind inside
        # MessageDelivery) must rank it, or retraction replay order would be
        # stamp-dependent.
        (tree / "net" / "events.py").write_text(
            MINIMAL_EVENTS
            + "\n\nclass AntiDeltaDelivery(SimulationEvent):\n"
            "    priority = DELIVERY_PRIORITY\n",
            encoding="utf-8",
        )
        findings = [f for f in tool.check_tree(tree) if f.rule == "INV003"]
        assert findings and "AntiDeltaDelivery" in findings[0].message

    def test_timer_fire_promoted_to_delivery_needs_rank_branch(self, tree):
        # If RefreshTimerFire were given delivery priority, its existing
        # content branch keeps the tree clean — remove the branch and the
        # checker must flag the class.
        promoted = MINIMAL_EVENTS.replace(
            "class RefreshTimerFire(SimulationEvent):\n    pass",
            "class RefreshTimerFire(SimulationEvent):\n"
            "    priority = DELIVERY_PRIORITY",
        )
        (tree / "net" / "events.py").write_text(promoted, encoding="utf-8")
        assert "INV003" not in _rules(tool.check_tree(tree))
        unranked = promoted.replace(
            "    if isinstance(event, RefreshTimerFire):\n"
            "        return (3, str(event.address))\n",
            "",
        )
        (tree / "net" / "events.py").write_text(unranked, encoding="utf-8")
        findings = [f for f in tool.check_tree(tree) if f.rule == "INV003"]
        assert findings and "RefreshTimerFire" in findings[0].message

    def test_timer_event_outside_events_py_flagged(self, tree):
        (tree / "net" / "rogue_timer.py").write_text(
            "from repro.net.events import SimulationEvent\n\n\n"
            "class StrayTimerFire(SimulationEvent):\n    pass\n",
            encoding="utf-8",
        )
        findings = [f for f in tool.check_tree(tree) if f.rule == "INV003"]
        assert findings and "StrayTimerFire" in findings[0].message


class TestSetIteration:
    def test_set_display_iteration_flagged(self, tree):
        (tree / "net" / "mod.py").write_text(
            "def f():\n    for x in {1, 2, 3}:\n        pass\n", encoding="utf-8"
        )
        assert "INV004" in _rules(tool.check_tree(tree))

    def test_set_call_in_comprehension_flagged(self, tree):
        (tree / "engine" / "mod.py").write_text(
            "def f(xs):\n    return [x for x in set(xs)]\n", encoding="utf-8"
        )
        assert "INV004" in _rules(tool.check_tree(tree))

    def test_sorted_wrapping_allowed(self, tree):
        (tree / "net" / "mod.py").write_text(
            "def f(xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        pass\n"
            "    return [x for x in sorted({1, 2})]\n",
            encoding="utf-8",
        )
        assert "INV004" not in _rules(tool.check_tree(tree))

    def test_set_iteration_outside_hot_path_allowed(self, tree):
        (tree / "harness" / "mod.py").write_text(
            "def f(xs):\n    return [x for x in set(xs)]\n", encoding="utf-8"
        )
        assert "INV004" not in _rules(tool.check_tree(tree))


class TestDeprecatedShims:
    def test_simulator_call_flagged(self, tree):
        (tree / "harness" / "mod.py").write_text(
            "from repro.net.simulator import Simulator\n\n\n"
            "def f(**kw):\n    return Simulator(**kw)\n",
            encoding="utf-8",
        )
        assert "INV005" in _rules(tool.check_tree(tree))

    def test_shim_call_in_defining_module_allowed(self, tree):
        (tree / "net" / "simulator.py").write_text(
            "class Simulator:\n    pass\n\n\ndef clone():\n    return Simulator()\n",
            encoding="utf-8",
        )
        assert "INV005" not in _rules(tool.check_tree(tree))

    def test_run_configuration_call_flagged(self, tree):
        (tree / "engine" / "mod.py").write_text(
            "from repro.harness.runner import run_configuration\n\n\n"
            "def f():\n    return run_configuration()\n",
            encoding="utf-8",
        )
        assert "INV005" in _rules(tool.check_tree(tree))


class TestModuleLevelCaches:
    def test_empty_dict_in_provenance_flagged(self, tree):
        (tree / "provenance").mkdir()
        (tree / "provenance" / "mod.py").write_text(
            "_CACHE = {}\n", encoding="utf-8"
        )
        assert "INV006" in _rules(tool.check_tree(tree))

    def test_empty_list_call_in_engine_flagged(self, tree):
        (tree / "engine" / "mod.py").write_text(
            "_PENDING = list()\n", encoding="utf-8"
        )
        assert "INV006" in _rules(tool.check_tree(tree))

    def test_annotated_empty_set_flagged(self, tree):
        (tree / "provenance").mkdir()
        (tree / "provenance" / "mod.py").write_text(
            "from typing import Set\n\n_SEEN: Set[str] = set()\n",
            encoding="utf-8",
        )
        assert "INV006" in _rules(tool.check_tree(tree))

    def test_nonempty_display_is_a_data_table(self, tree):
        (tree / "provenance").mkdir()
        (tree / "provenance" / "mod.py").write_text(
            "MODES = {'memory': 1, 'tiered': 2}\nNAMES = ['a', 'b']\n",
            encoding="utf-8",
        )
        assert "INV006" not in _rules(tool.check_tree(tree))

    def test_function_local_containers_allowed(self, tree):
        (tree / "engine" / "mod.py").write_text(
            "def f():\n    cache = {}\n    return cache\n", encoding="utf-8"
        )
        assert "INV006" not in _rules(tool.check_tree(tree))

    def test_class_attribute_containers_allowed(self, tree):
        # Class bodies are not module top-level statements; dataclass field
        # defaults and similar shapes stay out of scope for INV006.
        (tree / "provenance").mkdir()
        (tree / "provenance" / "mod.py").write_text(
            "class Archive:\n    defaults = {}\n", encoding="utf-8"
        )
        assert "INV006" not in _rules(tool.check_tree(tree))

    def test_empty_dict_outside_bounded_dirs_allowed(self, tree):
        (tree / "harness" / "mod.py").write_text(
            "_CACHE = {}\n", encoding="utf-8"
        )
        assert "INV006" not in _rules(tool.check_tree(tree))

    def test_module_level_memo_in_service_flagged(self, tree):
        # A module-global result memo would defeat the cache capacity/TTL
        # knobs the service plane exists to enforce.
        (tree / "service").mkdir()
        (tree / "service" / "cache.py").write_text(
            "_MEMO = {}\n", encoding="utf-8"
        )
        assert "INV006" in _rules(tool.check_tree(tree))

    def test_instance_held_cache_in_service_allowed(self, tree):
        (tree / "service").mkdir()
        (tree / "service" / "cache.py").write_text(
            "class ClosureCache:\n"
            "    def __init__(self, capacity):\n"
            "        self.capacity = capacity\n"
            "        self._entries = {}\n",
            encoding="utf-8",
        )
        assert "INV006" not in _rules(tool.check_tree(tree))

    def test_allow_comment_suppresses(self, tree):
        (tree / "provenance").mkdir()
        (tree / "provenance" / "mod.py").write_text(
            "_CACHE = {}  # invariant: ok(INV006)\n", encoding="utf-8"
        )
        assert "INV006" not in _rules(tool.check_tree(tree))


class TestAllowlist:
    def test_inline_comment_suppresses_matching_rule(self, tree):
        (tree / "net" / "mod.py").write_text(
            "import time\n\n\ndef f():\n"
            "    return time.time()  # invariant: ok(INV001)\n",
            encoding="utf-8",
        )
        assert "INV001" not in _rules(tool.check_tree(tree))

    def test_comment_for_other_rule_does_not_suppress(self, tree):
        (tree / "net" / "mod.py").write_text(
            "import time\n\n\ndef f():\n"
            "    return time.time()  # invariant: ok(INV004)\n",
            encoding="utf-8",
        )
        assert "INV001" in _rules(tool.check_tree(tree))


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert tool.main(["--list"]) == 0
        out = capsys.readouterr().out
        for rule in tool.RULES:
            assert rule in out

    def test_missing_root_is_usage_error(self, tmp_path, capsys):
        assert tool.main(["--root", str(tmp_path / "nope")]) == 2

    def test_clean_tree_exits_zero(self, tree, capsys):
        assert tool.main(["--root", str(tree)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violating_tree_exits_one(self, tree, capsys):
        (tree / "net" / "mod.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n", encoding="utf-8"
        )
        assert tool.main(["--root", str(tree)]) == 1
        assert "INV001" in capsys.readouterr().out

    def test_real_tree_via_cli(self, capsys):
        assert tool.main(["--root", str(SRC_ROOT)]) == 0
