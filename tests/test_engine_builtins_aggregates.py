"""Tests for built-in function symbols and aggregate evaluation."""

from __future__ import annotations

import pytest

from repro.datalog.errors import EvaluationError
from repro.engine.aggregates import AggregateState, aggregate_better, aggregate_init
from repro.engine.builtins import (
    call_builtin,
    f_append,
    f_concat,
    f_first,
    f_init,
    f_last,
    f_member,
    f_size,
)


class TestPathBuiltins:
    def test_f_init(self):
        assert f_init("a", "b") == ("a", "b")
        assert f_init("a") == ("a",)

    def test_f_concat_prepends(self):
        assert f_concat("s", ("z", "d")) == ("s", "z", "d")

    def test_f_concat_requires_path(self):
        with pytest.raises(EvaluationError):
            f_concat("s", "not-a-path")

    def test_f_append(self):
        assert f_append(("a", "b"), "c") == ("a", "b", "c")

    def test_f_member_positive_and_negative(self):
        assert f_member(("a", "b", "c"), "b") == 1
        assert f_member(("a", "b", "c"), "z") == 0

    def test_f_size(self):
        assert f_size(()) == 0
        assert f_size(("a", "b", "c")) == 3

    def test_f_first_and_last(self):
        assert f_first(("a", "b", "c")) == "a"
        assert f_last(("a", "b", "c")) == "c"

    def test_f_first_of_empty_raises(self):
        with pytest.raises(EvaluationError):
            f_first(())


class TestArithmeticBuiltins:
    def test_addition(self):
        assert call_builtin("+", [2, 3]) == 5

    def test_subtraction_multiplication_division(self):
        assert call_builtin("-", [7, 3]) == 4
        assert call_builtin("*", [4, 3]) == 12
        assert call_builtin("/", [9, 3]) == 3

    def test_float_arithmetic(self):
        assert call_builtin("+", [1.5, 2.5]) == 4.0

    def test_type_errors_become_evaluation_errors(self):
        with pytest.raises(EvaluationError):
            call_builtin("+", [1, ("a",)])

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            call_builtin("f_unknown", [1])

    def test_call_builtin_dispatches_path_functions(self):
        assert call_builtin("f_concat", ["s", ("d",)]) == ("s", "d")


class TestAggregateHelpers:
    def test_init_values(self):
        assert aggregate_init("count") == 0
        assert aggregate_init("sum") == 0
        assert aggregate_init("min") is None
        assert aggregate_init("max") is None

    def test_init_rejects_unknown(self):
        with pytest.raises(EvaluationError):
            aggregate_init("median")

    def test_better_for_min(self):
        assert aggregate_better("min", None, 5)
        assert aggregate_better("min", 5, 3)
        assert not aggregate_better("min", 3, 5)
        assert not aggregate_better("min", 3, 3)

    def test_better_for_max(self):
        assert aggregate_better("max", 3, 5)
        assert not aggregate_better("max", 5, 3)

    def test_better_rejects_count(self):
        with pytest.raises(EvaluationError):
            aggregate_better("count", 1, 2)


class TestAggregateState:
    def test_min_reports_only_improvements(self):
        state = AggregateState("min")
        assert state.update(("a", "b"), 10) == 10
        assert state.update(("a", "b"), 12) is None
        assert state.update(("a", "b"), 7) == 7
        assert state.value(("a", "b")) == 7

    def test_min_groups_are_independent(self):
        state = AggregateState("min")
        state.update(("a", "b"), 10)
        assert state.update(("a", "c"), 20) == 20
        assert state.value(("a", "b")) == 10

    def test_max(self):
        state = AggregateState("max")
        assert state.update(("g",), 1) == 1
        assert state.update(("g",), 5) == 5
        assert state.update(("g",), 3) is None

    def test_count_deduplicates_contributions(self):
        state = AggregateState("count")
        assert state.update(("g",), "e1", contribution_key=("e1",)) == 1
        assert state.update(("g",), "e2", contribution_key=("e2",)) == 2
        assert state.update(("g",), "e1", contribution_key=("e1",)) is None
        assert state.value(("g",)) == 2

    def test_sum(self):
        state = AggregateState("sum")
        assert state.update(("g",), 5, contribution_key=("x",)) == 5
        assert state.update(("g",), 7, contribution_key=("y",)) == 12

    def test_unknown_function_rejected(self):
        with pytest.raises(EvaluationError):
            AggregateState("stddev")

    def test_groups_listing(self):
        state = AggregateState("min")
        state.update(("a",), 1)
        state.update(("b",), 2)
        assert set(state.groups()) == {("a",), ("b",)}

    def test_value_of_unknown_group_is_none(self):
        assert AggregateState("min").value(("missing",)) is None
