"""Tests for the coordination frame codec and shared-memory ring.

The binary transport carries every hot-path payload between the shard
coordinator and its workers.  Its contract has three parts:

* **exactness** — decode(encode(x)) reconstructs every field the simulation
  reads, for every wire message and event shape (values outside the literal
  vocabulary fall back to pickle per item, invisibly);
* **determinism** — the same payload encodes to the same bytes, so the
  ``coordination_bytes`` ledger is reproducible and identical between
  inline and process shard modes;
* **compactness** — frames are smaller than the pickle baseline, and large
  frames deflate.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.tuples import Fact
from repro.net.events import (
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    QueryTimeout,
    SoftStateRefresh,
)
from repro.net.message import (
    BatchItem,
    Message,
    MessageBatch,
    QueryRequest,
    QueryResponse,
    QueryClosureEntry,
)
from repro.net.transport import (
    COMPRESS_MIN_BYTES,
    SHM_MIN_FRAME_BYTES,
    TRANSPORTS,
    BinaryCodec,
    PickleCodec,
    SharedMemoryRing,
    make_codec,
)
from repro.provenance.authenticated import SignedAnnotation
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.distributed import ProvenancePointer
from repro.provenance.polynomial import ProvenanceExpression


# ---------------------------------------------------------------------------
# Structural comparison (the wire classes use identity equality)
# ---------------------------------------------------------------------------

def _same_provenance(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if type(a) is not type(b):
        return False
    if isinstance(a, CondensedProvenance):
        return a.expression.monomials == b.expression.monomials
    if isinstance(a, SignedAnnotation):
        return (
            a.principal == b.principal
            and a.signature == b.signature
            and a.annotation.expression.monomials
            == b.annotation.expression.monomials
        )
    return a == b


def _same_fact(a: Fact, b: Fact) -> bool:
    return (
        a.relation == b.relation
        and a.values == b.values
        and a.timestamp == b.timestamp
        and a.ttl == b.ttl
        and a.asserted_by == b.asserted_by
        and a.signature == b.signature
        and a.origin == b.origin
        and _same_provenance(a.provenance, b.provenance)
    )


def _same_message(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Message):
        return (
            a.source == b.source
            and a.destination == b.destination
            and _same_fact(a.fact, b.fact)
            and a.security_bytes == b.security_bytes
            and a.provenance_bytes == b.provenance_bytes
            and a.sent_at == b.sent_at
            and a.sequence == b.sequence
        )
    if isinstance(a, MessageBatch):
        return (
            a.source == b.source
            and a.destination == b.destination
            and a.sent_at == b.sent_at
            and a.sequence == b.sequence
            and len(a.items) == len(b.items)
            and all(
                _same_fact(x.fact, y.fact)
                and x.security_bytes == y.security_bytes
                and x.provenance_bytes == y.provenance_bytes
                for x, y in zip(a.items, b.items)
            )
        )
    if isinstance(a, QueryRequest):
        return (
            a.source == b.source
            and a.destination == b.destination
            and a.key == b.key
            and a.query_id == b.query_id
            and a.request_id == b.request_id
            and a.mode == b.mode
            and a.condensed == b.condensed
            and a.authenticated == b.authenticated
            and a.sent_at == b.sent_at
            and a.sequence == b.sequence
        )
    if isinstance(a, QueryResponse):
        return (
            a.source == b.source
            and a.destination == b.destination
            and a.query_id == b.query_id
            and a.request_id == b.request_id
            and a.key == b.key
            and a.entries == b.entries
            and a.missing == b.missing
            and a.annotation_bytes == b.annotation_bytes
            and a.signature == b.signature
            and a.sent_at == b.sent_at
            and _same_provenance(a.annotation, b.annotation)
        )
    return a == b


def _assert_exports_round_trip(codec, exports) -> None:
    frame = codec.encode_exports(exports)
    decoded = codec.decode_exports(frame)
    assert len(decoded) == len(exports)
    for (t_a, m_a), (t_b, m_b) in zip(exports, decoded):
        assert t_a == t_b
        assert _same_message(m_a, m_b), (m_a, m_b)


# ---------------------------------------------------------------------------
# Hand-written shapes: one of everything
# ---------------------------------------------------------------------------

def _condensed() -> CondensedProvenance:
    return CondensedProvenance(
        expression=ProvenanceExpression(monomials=((("r1@n1", "r2@n2"), 2),))
    )


def _sample_exports():
    fact = Fact(
        "bestPath",
        ("n1", "n3", 2.5),
        timestamp=1.25,
        ttl=30.0,
        asserted_by="n1",
        signature=b"\x01\x02sig",
        provenance=_condensed(),
        origin="n1",
    )
    plain = Fact("link", ("n1", "n2"), timestamp=0.5)
    signed = SignedAnnotation(
        annotation=_condensed(), principal="n2", signature=b"\xffseal"
    )
    entry = QueryClosureEntry(
        key=("bestPath", ("n1", "n3", 2.5)),
        node="n2",
        is_base=False,
        pointers=(
            ProvenancePointer(
                output=("bestPath", ("n1", "n3", 2.5)),
                rule_label="bp2",
                node="n2",
                inputs=((("link", ("n1", "n2")), "n1"),),
                timestamp=0.75,
            ),
        ),
    )
    return [
        (0.001, Message(source="n1", destination="n2", fact=plain, sequence=7)),
        (
            0.002,
            MessageBatch(
                source="n2",
                destination="n3",
                items=(
                    BatchItem(fact=fact, security_bytes=112, provenance_bytes=40),
                    BatchItem(fact=plain),
                ),
                sent_at=0.0015,
                sequence=8,
            ),
        ),
        (
            0.003,
            QueryRequest(
                source="n3",
                destination="n1",
                key=("link", ("n1", "n2")),
                query_id=4,
                request_id=9,
                mode="offline",
                condensed=True,
                authenticated=True,
                sent_at=0.0025,
                sequence=9,
            ),
        ),
        (
            0.004,
            QueryResponse(
                source="n1",
                destination="n3",
                query_id=4,
                request_id=9,
                key=("link", ("n1", "n2")),
                entries=(entry,),
                missing=(("bestPath", ("n9", "n1", 1.0)),),
                annotation=signed,
                annotation_bytes=48,
                signature=b"resp-sig",
                sent_at=0.0035,
            ),
        ),
    ]


def _sample_events():
    facts = (Fact("link", ("n1", "n2"), ttl=30.0),)
    return [
        (FactInjection(time=0.0, address="n1", facts=facts), 1, True),
        (FactRetraction(time=0.5, address="n2", facts=facts), 2, True),
        (LinkDown(time=1.0, source="n1", destination="n2", retract=True), 3, False),
        (LinkUp(time=2.0, source="n1", destination="n2", facts=facts), 4, True),
        (NodeCrash(time=3.0, address="n3", clear_state=True), 5, True),
        (NodeRecover(time=4.0, address="n3", reinject=False), 6, False),
        (SoftStateRefresh(time=5.0), 7, True),
        (
            MessageDelivery(
                time=6.0,
                message=Message(source="n1", destination="n2", fact=facts[0]),
            ),
            8,
            True,
        ),
        (QueryTimeout(time=7.0, query_id=11, request_id=13), 9, False),
    ]


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_exports_round_trip_all_wire_kinds(transport):
    _assert_exports_round_trip(make_codec(transport), _sample_exports())


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_events_round_trip_all_kinds(transport):
    codec = make_codec(transport)
    batch = _sample_events()
    decoded = codec.decode_events(codec.encode_events(batch))
    assert len(decoded) == len(batch)
    for (ev_a, stamp_a, owned_a), (ev_b, stamp_b, owned_b) in zip(batch, decoded):
        assert (stamp_a, owned_a) == (stamp_b, owned_b)
        assert type(ev_a) is type(ev_b)
        assert ev_a.time == ev_b.time


def test_binary_frames_are_deterministic():
    codec = BinaryCodec()
    exports = _sample_exports()
    assert codec.encode_exports(exports) == codec.encode_exports(exports)
    events = _sample_events()
    assert codec.encode_events(events) == codec.encode_events(events)


def test_binary_beats_pickle_on_export_batches():
    exports = _sample_exports()
    binary = len(BinaryCodec().encode_exports(exports))
    pickled = len(PickleCodec().encode_exports(exports))
    assert binary < pickled


def test_large_frames_deflate():
    fact = Fact("bestPath", ("node-with-a-long-name-1", "node-2", 3.5), ttl=30.0)
    exports = [
        (0.001 * i, Message(source="n1", destination="n2", fact=fact, sequence=i))
        for i in range(200)
    ]
    codec = BinaryCodec()
    frame = codec.encode_exports(exports)
    assert frame[0:1] == b"\x01"  # compressed shape
    assert len(frame) >= COMPRESS_MIN_BYTES  # threshold is pre-compression
    _assert_exports_round_trip(codec, exports)


def test_small_frames_stay_raw():
    frame = BinaryCodec().encode_exports([])
    assert frame[0:1] == b"\x00"
    assert len(frame) < COMPRESS_MIN_BYTES


class Opaque:
    """A value outside the literal wire vocabulary (forces pickle fallback)."""

    def __init__(self, tag):
        self.tag = tag

    def __eq__(self, other):
        return isinstance(other, Opaque) and other.tag == self.tag

    def __hash__(self):
        return hash(self.tag)


def test_non_literal_values_fall_back_to_pickle():
    fact = Fact("weird", (Opaque("x"), float("inf"), -0.0))
    exports = [(0.5, Message(source="n1", destination="n2", fact=fact))]
    _assert_exports_round_trip(BinaryCodec(), exports)


def test_make_codec_rejects_unknown_transport():
    with pytest.raises(ValueError, match="unknown transport"):
        make_codec("carrier-pigeon")


# ---------------------------------------------------------------------------
# Property: arbitrary export batches round-trip exactly
# ---------------------------------------------------------------------------

_values = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.booleans(),
    st.binary(max_size=8),
    st.none(),
)

_addresses = st.sampled_from(["n1", "n2", "n3", "n4", "edge-router"])
_relations = st.sampled_from(["link", "bestPath", "reachable", "pathCost"])


@st.composite
def _facts(draw):
    provenance = None
    if draw(st.booleans()):
        monomial = tuple(sorted(draw(st.sets(st.text(max_size=6), max_size=3))))
        provenance = CondensedProvenance(
            expression=ProvenanceExpression(monomials=((monomial, 1),))
        )
    return Fact(
        draw(_relations),
        tuple(draw(st.lists(_values, max_size=4))),
        timestamp=draw(st.floats(min_value=0, max_value=1e6)),
        ttl=draw(st.one_of(st.none(), st.floats(min_value=0.001, max_value=1e3))),
        asserted_by=draw(st.one_of(st.none(), _addresses)),
        signature=draw(st.one_of(st.none(), st.binary(max_size=16))),
        provenance=provenance,
        origin=draw(st.one_of(st.none(), _addresses)),
    )


@st.composite
def _messages(draw):
    if draw(st.booleans()):
        return Message(
            source=draw(_addresses),
            destination=draw(_addresses),
            fact=draw(_facts()),
            security_bytes=draw(st.integers(min_value=0, max_value=512)),
            provenance_bytes=draw(st.integers(min_value=0, max_value=512)),
            sent_at=draw(st.floats(min_value=0, max_value=1e6)),
            sequence=draw(st.integers(min_value=0, max_value=2**32)),
        )
    items = tuple(
        BatchItem(
            fact=draw(_facts()),
            security_bytes=draw(st.integers(min_value=0, max_value=512)),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    return MessageBatch(
        source=draw(_addresses),
        destination=draw(_addresses),
        items=items,
        sent_at=draw(st.floats(min_value=0, max_value=1e6)),
        sequence=draw(st.integers(min_value=0, max_value=2**32)),
    )


@st.composite
def _export_batches(draw):
    return [
        (draw(st.floats(min_value=0, max_value=1e6)), draw(_messages()))
        for _ in range(draw(st.integers(min_value=0, max_value=6)))
    ]


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(exports=_export_batches())
def test_property_export_batches_round_trip(exports):
    codec = BinaryCodec()
    _assert_exports_round_trip(codec, exports)
    # Determinism: the ledger's byte counts must be reproducible.
    assert codec.encode_exports(exports) == codec.encode_exports(exports)


# ---------------------------------------------------------------------------
# Shared-memory ring
# ---------------------------------------------------------------------------

def test_shm_ring_round_trip_and_wrap():
    ring = SharedMemoryRing(capacity=1 << 12, create=True)
    try:
        peer = SharedMemoryRing(name=ring.name, capacity=1 << 12, create=False)
        try:
            payload = bytes(range(256)) * 8  # 2 KiB
            for _ in range(5):  # forces a wrap on the 4 KiB ring
                slot = ring.write(payload)
                assert slot is not None
                offset, length = slot
                assert peer.read(offset, length) == payload
        finally:
            peer.close()
    finally:
        ring.close()


def test_shm_ring_rejects_oversized_frames():
    ring = SharedMemoryRing(capacity=1 << 10, create=True)
    try:
        assert ring.write(b"x" * ((1 << 10) + 1)) is None
    finally:
        ring.close()


def test_shm_threshold_sane():
    assert SHM_MIN_FRAME_BYTES > COMPRESS_MIN_BYTES
