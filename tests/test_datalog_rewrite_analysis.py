"""Tests for the localization rewrite and static analysis."""

from __future__ import annotations

import pytest

from repro.datalog.analysis import (
    analyze_program,
    build_dependency_graph,
    check_safety,
    stratify,
)
from repro.datalog.ast import Variable
from repro.datalog.errors import SafetyError
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.rewrite import is_localized, localize_program, localize_rule
from repro.queries.best_path import BEST_PATH_NDLOG
from repro.queries.reachable import REACHABLE_NDLOG


class TestLocalization:
    def test_single_atom_rule_is_localized(self):
        rule = parse_rule("r1 reachable(@S, D) :- link(@S, D).")
        assert is_localized(rule)
        assert localize_rule(rule) == [rule]

    def test_two_location_rule_is_not_localized(self):
        rule = parse_rule("r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).")
        assert not is_localized(rule)

    def test_localizing_reachable_creates_intermediate(self):
        rule = parse_rule("r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).")
        rewritten = localize_rule(rule)
        assert len(rewritten) == 2
        intermediate = rewritten[0].head
        assert "_mid_" in intermediate.name
        assert intermediate.location_index == 0
        # The final rule's body is localized and re-derives the original head.
        assert rewritten[-1].head.name == "reachable"
        assert is_localized(rewritten[-1])

    def test_intermediate_carries_join_variables(self):
        rule = parse_rule("r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).")
        intermediate = localize_rule(rule)[0].head
        names = {str(t) for t in intermediate.terms}
        assert "Z" in names and "S" in names

    def test_every_localized_rule_passes_is_localized(self):
        program = localize_program(parse_program(BEST_PATH_NDLOG))
        assert all(is_localized(rule) for rule in program.rules)

    def test_best_path_rule_count_after_rewrite(self):
        program = localize_program(parse_program(BEST_PATH_NDLOG))
        # p2 splits into two rules, the rest stay.
        assert len(program.rules) == 5

    def test_expressions_moved_to_the_stage_where_bound(self):
        program = localize_program(parse_program(BEST_PATH_NDLOG))
        final_p2 = [rule for rule in program.rules if rule.label == "p2b"][0]
        rendered = str(final_p2)
        assert "f_concat" in rendered and "f_member" in rendered

    def test_localized_program_preserves_materialize_decls(self):
        program = localize_program(parse_program(BEST_PATH_NDLOG))
        assert {decl.name for decl in program.materialized} == {
            "link",
            "path",
            "bestPathCost",
            "bestPath",
        }

    def test_already_localized_program_unchanged(self):
        program = parse_program(REACHABLE_NDLOG)
        rewritten = localize_program(program)
        assert len(rewritten.rules) == 3  # r1 stays, r2 splits into two
        labels = [rule.label for rule in rewritten.rules]
        assert labels[0] == "r1"


class TestDependencyGraph:
    def test_edges_of_reachable(self):
        graph = build_dependency_graph(parse_program(REACHABLE_NDLOG))
        assert graph.depends_on("reachable") == {"link", "reachable"}

    def test_recursion_detection(self):
        graph = build_dependency_graph(parse_program(REACHABLE_NDLOG))
        assert graph.is_recursive("reachable")
        assert not graph.is_recursive("link")

    def test_best_path_mutual_recursion(self):
        graph = build_dependency_graph(parse_program(BEST_PATH_NDLOG))
        assert graph.is_recursive("path")
        assert graph.is_recursive("bestPath")
        assert graph.is_recursive("bestPathCost")

    def test_strongly_connected_components(self):
        graph = build_dependency_graph(parse_program(BEST_PATH_NDLOG))
        components = graph.strongly_connected_components()
        recursive_component = max(components, key=len)
        assert {"path", "bestPath", "bestPathCost"} <= set(recursive_component)

    def test_reachable_from(self):
        graph = build_dependency_graph(parse_program(BEST_PATH_NDLOG))
        assert "link" in graph.reachable_from("bestPath")


class TestStratification:
    def test_positive_program_single_stratum(self):
        strata = stratify(parse_program(REACHABLE_NDLOG))
        assert len(strata) == 1

    def test_negation_pushes_predicate_to_higher_stratum(self):
        program = parse_program(
            "r1 good(X) :- node(X), !bad(X).\nr2 bad(X) :- blacklisted(X)."
        )
        strata = stratify(program)
        levels = {name: i for i, level in enumerate(strata) for name in level}
        assert levels["good"] > levels["bad"]

    def test_negative_cycle_rejected(self):
        program = parse_program("r1 p(X) :- node(X), !q(X).\nr2 q(X) :- node(X), !p(X).")
        with pytest.raises(SafetyError):
            stratify(program)

    def test_analyze_program_summary(self):
        analysis = analyze_program(parse_program(BEST_PATH_NDLOG))
        assert analysis.base_predicates == {"link"}
        assert "bestPath" in analysis.recursive_predicates
        assert analysis.stratum_of("link") == 0


class TestSafety:
    def test_safe_rule_passes(self):
        check_safety(parse_rule("r p(X, Y) :- q(X), r(Y)."))

    def test_unbound_head_variable_rejected(self):
        with pytest.raises(SafetyError):
            check_safety(parse_rule("r p(X, Y) :- q(X)."))

    def test_assignment_binds_head_variable(self):
        check_safety(parse_rule("r p(X, C) :- q(X), C := 1 + 2."))

    def test_negated_atom_with_unbound_variable_rejected(self):
        with pytest.raises(SafetyError):
            check_safety(parse_rule("r p(X) :- q(X), !r(Y)."))

    def test_comparison_with_unbound_variable_rejected(self):
        with pytest.raises(SafetyError):
            check_safety(parse_rule("r p(X) :- q(X), Y < 3."))

    def test_unbound_ship_to_rejected(self):
        with pytest.raises(SafetyError):
            check_safety(parse_rule("r p(X)@Z :- q(X)."))

    def test_aggregate_head_variable_must_be_bound(self):
        check_safety(parse_rule("r best(@S, D, min<C>) :- path(@S, D, P, C)."))
        with pytest.raises(SafetyError):
            check_safety(parse_rule("r best(@S, D, min<C>) :- path(@S, D, P, C2)."))
