"""Tests for provenance semirings and polynomials."""

from __future__ import annotations

import pytest

from repro.provenance.polynomial import (
    ProvenanceExpression,
    p_one,
    p_product,
    p_sum,
    p_var,
    p_zero,
)
from repro.provenance.semiring import BOOLEAN, COUNTING, TRUST, TrustSemiring


class TestSemirings:
    def test_boolean_sum_and_product(self):
        assert BOOLEAN.sum([False, True]) is True
        assert BOOLEAN.sum([]) is False
        assert BOOLEAN.product([True, True]) is True
        assert BOOLEAN.product([True, False]) is False
        assert BOOLEAN.product([]) is True

    def test_counting_semiring(self):
        assert COUNTING.sum([1, 2, 3]) == 6
        assert COUNTING.product([2, 3]) == 6
        assert COUNTING.zero == 0 and COUNTING.one == 1

    def test_trust_semiring_max_min(self):
        assert TRUST.plus(2, 1) == 2
        assert TRUST.times(2, 1) == 1
        assert TRUST.sum([]) == TrustSemiring.UNTRUSTED
        assert TRUST.product([]) == TrustSemiring.FULLY_TRUSTED

    def test_paper_trust_example(self):
        # max(2, min(2, 1)) == 2
        value = TRUST.sum([2, TRUST.product([2, 1])])
        assert value == 2


class TestPolynomialAlgebra:
    def test_var_and_str(self):
        assert str(p_var("a")) == "<a>"

    def test_sum_renders_with_plus(self):
        assert p_sum(p_var("a"), p_var("b")).to_string() == "a+b"

    def test_product_renders_with_star(self):
        assert p_product(p_var("a"), p_var("b")).to_string() == "a*b"

    def test_zero_is_additive_identity(self):
        a = p_var("a")
        assert p_sum(a, p_zero()) == a

    def test_one_is_multiplicative_identity(self):
        a = p_var("a")
        assert p_product(a, p_one()) == a

    def test_zero_annihilates_product(self):
        assert p_product(p_var("a"), p_zero()).is_zero

    def test_addition_commutes(self):
        assert p_sum(p_var("a"), p_var("b")) == p_sum(p_var("b"), p_var("a"))

    def test_multiplication_commutes(self):
        assert p_product(p_var("a"), p_var("b")) == p_product(p_var("b"), p_var("a"))

    def test_distributivity(self):
        a, b, c = p_var("a"), p_var("b"), p_var("c")
        assert p_product(a, p_sum(b, c)) == p_sum(p_product(a, b), p_product(a, c))

    def test_multiplicities_tracked(self):
        doubled = p_sum(p_var("a"), p_var("a"))
        assert doubled.monomials[0][1] == 2

    def test_variables(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        assert expr.variables() == frozenset({"a", "b"})

    def test_degree(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b"), p_var("c")))
        assert expr.degree() == 3
        assert p_zero().degree() == 0


class TestCondensation:
    def test_paper_example_a_plus_ab_condenses_to_a(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        assert expr.condense() == p_var("a")

    def test_idempotent_power_collapses(self):
        expr = p_product(p_var("a"), p_var("a"))
        assert expr.condense() == p_var("a")

    def test_duplicate_monomials_collapse(self):
        expr = p_sum(p_var("a"), p_var("a"))
        assert expr.condense() == p_var("a")

    def test_incomparable_monomials_kept(self):
        expr = p_sum(p_product(p_var("a"), p_var("b")), p_product(p_var("a"), p_var("c")))
        condensed = expr.condense()
        assert len(condensed.monomials) == 2

    def test_condense_is_idempotent(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")), p_var("c"))
        assert expr.condense().condense() == expr.condense()

    def test_condensation_never_grows_serialized_size(self):
        expr = p_sum(
            p_var("a"),
            p_product(p_var("a"), p_var("b")),
            p_product(p_var("a"), p_var("b"), p_var("c")),
        )
        assert expr.condense().serialized_size() <= expr.serialized_size()


class TestEvaluation:
    def test_boolean_evaluation(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        assert expr.evaluate(BOOLEAN, {"a": True, "b": False}) is True
        assert expr.evaluate(BOOLEAN, {"a": False, "b": True}) is False

    def test_counting_evaluation_counts_derivations(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        assert expr.evaluate(COUNTING, {"a": 1, "b": 1}) == 2

    def test_counting_evaluation_respects_multiplicity(self):
        expr = p_sum(p_var("a"), p_var("a"))
        assert expr.evaluate(COUNTING, {"a": 1}) == 2

    def test_trust_evaluation_matches_paper(self):
        expr = p_sum(p_var("a"), p_product(p_var("a"), p_var("b")))
        assert expr.evaluate(TRUST, {"a": 2, "b": 1}) == 2

    def test_missing_variables_treated_as_one(self):
        expr = p_product(p_var("a"), p_var("b"))
        assert expr.evaluate(BOOLEAN, {"a": True}) is True

    def test_zero_polynomial_evaluates_to_zero(self):
        assert p_zero().evaluate(COUNTING, {}) == 0
        assert p_zero().evaluate(BOOLEAN, {}) is False

    def test_condensation_preserves_boolean_semantics(self):
        expr = p_sum(
            p_product(p_var("a"), p_var("b")),
            p_var("c"),
            p_product(p_var("c"), p_var("a")),
        )
        condensed = expr.condense()
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    assignment = {"a": a, "b": b, "c": c}
                    assert expr.evaluate(BOOLEAN, assignment) == condensed.evaluate(
                        BOOLEAN, assignment
                    )


class TestSerialization:
    def test_serialized_size_is_utf8_length(self):
        expr = p_sum(p_var("node1"), p_var("node2"))
        assert expr.serialized_size() == len("node1+node2")

    def test_zero_renders_as_zero(self):
        assert p_zero().to_string() == "0"

    def test_one_renders_as_one(self):
        assert p_one().to_string() == "1"

    def test_multiplicity_rendered(self):
        assert p_sum(p_var("a"), p_var("a")).to_string() == "2*a"
