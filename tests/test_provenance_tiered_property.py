"""Property test: the tiered archive is indistinguishable from the oracle.

Hypothesis drives random scripts of dynamics — retracting link failures,
node crashes and recoveries, quiet periods — against two identically-seeded
networks: one with the unbounded in-memory offline archive (the oracle) and
one with the tiered store at a hot-tier capacity drawn down to a single
entry.  After every script, every key the oracle ever archived must be
answerable offline under the tiered store with a structurally identical
derivation graph: eviction, spill reads and crash-driven cache loss must
never change a forensic answer.
"""

from __future__ import annotations

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Network
from repro.net.events import LinkDown, NodeCrash, NodeRecover
from repro.net.topology import line_topology

NODES = 4
ADDRESSES = tuple(f"n{i}" for i in range(NODES))
LINKS = tuple(
    (f"n{i}", f"n{i + 1}") for i in range(NODES - 1)
)

#: One scripted dynamic: (kind, operand index).
operations = st.lists(
    st.one_of(
        st.tuples(st.just("retract_link"), st.integers(0, len(LINKS) - 1)),
        st.tuples(st.just("crash"), st.integers(1, NODES - 2)),
        st.tuples(st.just("recover"), st.integers(1, NODES - 2)),
        st.tuples(st.just("settle"), st.just(0)),
    ),
    min_size=0,
    max_size=5,
)


def _build(**overrides):
    return Network.build(
        topology=line_topology(NODES),
        program="best-path",
        provenance="condensed",
        keep_offline_provenance=True,
        **overrides,
    )


def _apply(network, script):
    network.run()
    for kind, index in script:
        now = network.current_time()
        if kind == "retract_link":
            source, destination = LINKS[index]
            network.schedule(
                LinkDown(
                    time=now + 1.0,
                    source=source,
                    destination=destination,
                    retract=True,
                )
            )
        elif kind == "crash":
            network.schedule(
                NodeCrash(time=now + 1.0, address=f"n{index}")
            )
        elif kind == "recover":
            network.schedule(
                NodeRecover(time=now + 1.0, address=f"n{index}", reinject=False)
            )
        network.run_until_idle()
    network.finish()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=operations, hot_entries=st.sampled_from([1, 2, 4, 64]))
def test_tiered_forensics_match_memory_oracle(script, hot_entries):
    oracle = _build()
    tiered = _build(
        provenance_store="tiered",
        hot_tier_entries=hot_entries,
        spill_dir=tempfile.mkdtemp(prefix="repro-prop-"),
    )
    _apply(oracle, script)
    _apply(tiered, script)

    checked = 0
    for address in ADDRESSES:
        oracle_archive = oracle.simulator.engines[address].offline_provenance
        tiered_archive = tiered.simulator.engines[address].offline_provenance
        keys = {entry.key for entry in oracle_archive.entries()}
        for key in sorted(keys, key=str):
            assert tiered_archive.knows(key)
            assert tiered_archive.reconstruct_graph(key).same_structure(
                oracle_archive.reconstruct_graph(key)
            ), f"forensic divergence at {address} for {key}"
            checked += 1
    # The script must actually archive something, or the property is vacuous.
    assert checked > 0
