"""Unit tests for the query service plane (repro.service).

The saturation/backend-equality behaviour is covered by
``benchmarks/test_query_service.py`` and ``tests/test_sharding.py``; the
no-stale-answer guarantee by ``tests/test_service_cache_property.py``.
These tests pin the building blocks: the token bucket's simulated-time
refill, the closure cache's epoch/TTL/LRU discipline, workload
determinism, the SLO bucket math, the options plumbing and the facade's
``serve`` entry point.
"""

from __future__ import annotations

import pytest

from repro.api import Network
from repro.api.options import NetOptions
from repro.net.stats import bucket_percentile, bucket_upper_ms, latency_bucket
from repro.service import (
    AdmissionControl,
    CacheConfig,
    ClosureCache,
    QueryWorkload,
    TokenBucket,
    next_arrival,
    percentiles_ms,
)


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate=2.0, burst=3.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)

    def test_refills_on_simulated_time(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.1)
        # Half a second at 2/s accrues one token.
        assert bucket.try_acquire(0.6)

    def test_burst_caps_accrual(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert bucket.available(100.0) == 2.0

    def test_time_going_backwards_does_not_refill(self):
        # The scheduler never runs time backwards, but a same-instant burst
        # of arrivals must not mint tokens either.
        bucket = TokenBucket(rate=5.0, burst=1.0)
        assert bucket.try_acquire(1.0)
        assert not bucket.try_acquire(1.0)
        assert not bucket.try_acquire(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionControl:
    def test_bucket_defaults_burst_to_one_second_of_rate(self):
        assert AdmissionControl(rate=7.0).bucket().burst == 7.0
        assert AdmissionControl(rate=0.25).bucket().burst == 1.0
        assert AdmissionControl(rate=2.0, burst=9.0).bucket().burst == 9.0

    def test_validation_names_the_problem(self):
        with pytest.raises(ValueError, match="rate"):
            AdmissionControl(rate=-1.0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionControl(rate=1.0, policy="defer")
        with pytest.raises(ValueError, match="retries"):
            AdmissionControl(rate=1.0, retries=-1)
        with pytest.raises(ValueError, match="retry_delay"):
            AdmissionControl(rate=1.0, retry_delay=0.0)


class TestClosureCache:
    def test_hit_returns_value_and_age(self):
        cache = ClosureCache(capacity=4)
        cache.store("k", "v", epoch=1, now=10.0)
        hit, invalidated = cache.lookup("k", epoch=1, now=12.5)
        assert not invalidated
        assert hit == ("v", 2.5)

    def test_epoch_move_invalidates(self):
        cache = ClosureCache(capacity=4)
        cache.store("k", "v", epoch=1, now=0.0)
        hit, invalidated = cache.lookup("k", epoch=2, now=0.0)
        assert hit is None and invalidated
        # The stale entry is gone: the next probe is a plain miss.
        hit, invalidated = cache.lookup("k", epoch=2, now=0.0)
        assert hit is None and not invalidated

    def test_ttl_elapses(self):
        cache = ClosureCache(capacity=4, ttl=1.0)
        cache.store("k", "v", epoch=1, now=0.0)
        hit, invalidated = cache.lookup("k", epoch=1, now=0.5)
        assert hit is not None
        hit, invalidated = cache.lookup("k", epoch=1, now=2.0)
        assert hit is None and invalidated

    def test_lru_eviction_counts(self):
        cache = ClosureCache(capacity=2)
        assert cache.store("a", 1, epoch=0, now=0.0) == 0
        assert cache.store("b", 2, epoch=0, now=0.0) == 0
        # Touch "a" so "b" is the least recently used.
        cache.lookup("a", epoch=0, now=0.0)
        assert cache.store("c", 3, epoch=0, now=0.0) == 1
        assert cache.lookup("b", epoch=0, now=0.0) == (None, False)
        assert cache.lookup("a", epoch=0, now=0.0)[0] is not None

    def test_clear_reports_count(self):
        cache = ClosureCache(capacity=8)
        cache.store("a", 1, epoch=0, now=0.0)
        cache.store("b", 2, epoch=0, now=0.0)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_config_validation_and_build(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity=0)
        with pytest.raises(ValueError):
            CacheConfig(ttl=-1.0)
        cache = CacheConfig(capacity=3, ttl=0.0).build()
        assert cache.capacity == 3 and cache.ttl is None
        assert CacheConfig(ttl=2.0).build().ttl == 2.0


class TestQueryWorkload:
    def test_schedule_is_deterministic(self):
        workload = QueryWorkload(rate=5.0, clients=2, duration=4.0, seed=9)
        nodes = ("n2", "n0", "n1")
        def shape(events):
            # QueryArrival is identity-compared (eq=False, like every
            # simulation event); compare the scheduled content instead.
            return [
                (e.time, e.address, e.draw, e.client, e.arrival_id)
                for e in events
            ]

        first = workload.events(nodes, start=1.0)
        second = workload.events(tuple(reversed(nodes)), start=1.0)
        assert shape(first) == shape(second)
        assert first  # non-empty at this rate/duration

    def test_open_loop_respects_window(self):
        workload = QueryWorkload(rate=20.0, duration=2.0, seed=0)
        events = workload.events(("a", "b"), start=5.0)
        assert all(5.0 < event.time < 7.0 for event in events)
        assert all(event.client == -1 for event in events)
        assert [event.arrival_id for event in events] == list(
            range(len(events))
        )

    def test_closed_loop_pins_clients(self):
        workload = QueryWorkload(clients=3, think_time=0.5, duration=4.0)
        events = workload.events(("b", "a"), start=0.0)
        assert [event.client for event in events] == [0, 1, 2]
        assert [event.address for event in events] == ["a", "b", "a"]
        assert all(0.0 <= event.time <= 0.5 for event in events)

    def test_next_arrival_is_pure_and_advances(self):
        workload = QueryWorkload(clients=1, think_time=0.5, duration=10.0)
        [first] = workload.events(("a",), start=0.0)
        follow = next_arrival(first, at=2.0)
        again = next_arrival(first, at=2.0)
        assert follow.draw == again.draw  # content-derived, not RNG state
        assert follow.arrival_id == 1 and follow.time == 2.0
        assert follow.client == first.client and follow.attempt == 0
        assert 0 <= follow.draw < first.pool

    def test_validation(self):
        with pytest.raises(ValueError, match="open loop"):
            QueryWorkload()
        with pytest.raises(ValueError, match="rate"):
            QueryWorkload(rate=-1.0)
        with pytest.raises(ValueError, match="duration"):
            QueryWorkload(rate=1.0, duration=0.0)
        with pytest.raises(ValueError, match="pool"):
            QueryWorkload(rate=1.0, pool=0)
        with pytest.raises(ValueError, match="mode"):
            QueryWorkload(rate=1.0, mode="psychic")
        with pytest.raises(ValueError, match="at least one node"):
            QueryWorkload(rate=1.0).events((), start=0.0)


class TestSloMath:
    def test_latency_bucket_edges(self):
        assert latency_bucket(0.0) == 0
        assert latency_bucket(0.0000009) == 0  # under a microsecond
        assert latency_bucket(0.000001) == 1
        assert latency_bucket(0.001) == 10  # 1000 us -> bucket 10
        assert bucket_upper_ms(10) == 1.024

    def test_percentiles_are_bucket_upper_edges(self):
        histogram = {5: 90, 10: 9, 15: 1}
        assert bucket_percentile(histogram, 0.50) == bucket_upper_ms(5)
        assert bucket_percentile(histogram, 0.95) == bucket_upper_ms(10)
        # Rank 99 of 100 still lands in the second bucket; only the full
        # tail reaches the outlier.
        assert bucket_percentile(histogram, 0.99) == bucket_upper_ms(10)
        assert bucket_percentile(histogram, 1.0) == bucket_upper_ms(15)
        assert bucket_percentile({}, 0.95) == 0.0

    def test_percentiles_ms_covers_the_slo_points(self):
        spread = percentiles_ms({3: 100})
        assert set(spread) == {0.50, 0.95, 0.99}
        assert all(value == bucket_upper_ms(3) for value in spread.values())


class TestNetOptionsService:
    def test_admission_fields_validated(self):
        with pytest.raises(ValueError, match="admission_rate"):
            NetOptions(admission_rate=-1.0)
        with pytest.raises(ValueError, match="admission_policy"):
            NetOptions(admission_policy="defer")
        with pytest.raises(ValueError, match="query_cache_entries"):
            NetOptions(query_cache_entries=0)
        with pytest.raises(ValueError, match="query_cache_ttl"):
            NetOptions(query_cache_ttl=-0.5)

    def test_service_factories(self):
        off = NetOptions()
        assert off.service_admission() is None
        assert off.service_cache() is None
        on = NetOptions(
            admission_rate=3.0,
            admission_policy="retry",
            query_cache=True,
            query_cache_entries=16,
            query_cache_ttl=2.0,
        )
        admission = on.service_admission()
        assert admission is not None and admission.rate == 3.0
        assert admission.policy == "retry"
        cache = on.service_cache()
        assert cache == CacheConfig(capacity=16, ttl=2.0)


class TestNetworkServe:
    def _network(self, **overrides):
        return Network.build(
            topology=8,
            program="best-path",
            provenance="condensed",
            options=NetOptions(key_bits=128, seed=2, **overrides),
        )

    def test_serve_reports_slo(self):
        network = self._network(query_cache=True)
        result = network.serve(QueryWorkload(rate=4.0, duration=6.0, seed=1))
        assert result.offered > 0
        assert result.queries_completed > 0
        assert result.cache_hit_ratio > 0.0
        report = result.service()
        assert report is not None
        assert report.completed == result.queries_completed
        assert report.goodput == pytest.approx(report.completed / 6.0)
        assert report.p95_ms >= report.p50_ms
        row = result.as_dict()
        assert row["service_offered"] == result.offered
        assert row["queries_completed"] == result.queries_completed
        # The cache served hits, so their staleness-age spread is visible
        # and ordered like any percentile family.
        assert report.staleness_p99_ms >= report.staleness_p95_ms
        assert report.staleness_p95_ms >= report.staleness_p50_ms
        assert report.staleness_p95_ms > 0.0
        assert report.as_dict()["staleness_p95_ms"] == report.staleness_p95_ms

    def test_cold_cache_reports_zero_staleness(self):
        network = self._network()  # no query_cache: nothing is ever a hit
        result = network.serve(QueryWorkload(rate=2.0, duration=4.0, seed=1))
        report = result.service()
        assert report is not None
        assert report.cache_hits == 0
        assert report.staleness_p50_ms == 0.0
        assert report.staleness_p99_ms == 0.0

    def test_admission_drop_sheds_over_rate(self):
        network = self._network(admission_rate=0.5, admission_burst=1.0)
        result = network.serve(QueryWorkload(rate=8.0, duration=4.0, seed=1))
        assert result.queries_rejected > 0
        # Drop policy: every denial permanently sheds the arrival.
        assert result.queries_shed == result.queries_rejected
        assert (
            result.queries_completed + result.queries_shed == result.offered
        )

    def test_unanswerable_config_sheds_everything(self):
        # The ndlog preset maintains no provenance: the service plane must
        # shed (not hang or crash) every arrival.
        network = Network.build(
            topology=6,
            program="best-path",
            provenance="ndlog",
            options=NetOptions(key_bits=128),
        )
        result = network.serve(QueryWorkload(rate=3.0, duration=4.0, seed=0))
        assert result.queries_completed == 0
        assert result.queries_shed == result.offered

    def test_plain_run_has_no_service_report(self):
        result = self._network().run()
        assert result.service() is None
        assert "service_offered" not in result.as_dict()


class TestScenarioServiceColumns:
    def test_link_failure_reports_service_columns(self):
        from repro.harness.scenarios import link_failure_scenario, run_scenario

        scenario, network = link_failure_scenario(
            node_count=8, query_rate=3.0, clients=1, admission=2.0
        )
        report = run_scenario(scenario, network)
        assert report.converged
        served = [row for row in report.rows if row.phase != "converge"]
        assert any(row.query_p95_ms > 0 for row in served)
        assert any(row.cache_hit_pct > 0 for row in served)
        assert sum(row.rejected for row in served) > 0
        rendered = report.render()
        assert "p95ms" in rendered and "hit%" in rendered and "rej" in rendered
