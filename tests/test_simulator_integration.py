"""Integration tests: full distributed runs on the simulator.

These are the end-to-end checks that the reproduction actually computes what
the paper's system computes: all-pairs reachability, all-pairs best paths,
identical results across the three evaluated configurations, the expected
overhead ordering, and provenance that matches the Section 4 example.
"""

from __future__ import annotations

import pytest

from repro.datalog import localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.link import Link
from repro.net.kernel import CostModel, SimulationKernel
from repro.net.topology import Topology, line_topology, random_topology
from repro.queries.best_path import compile_best_path
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode

import networkx as nx


def reference_shortest_paths(topology: Topology):
    """Dijkstra via networkx as an independent oracle for best-path costs."""
    graph = nx.DiGraph()
    for link in topology.links:
        graph.add_edge(link.source, link.destination, weight=link.cost)
    return dict(nx.all_pairs_dijkstra_path_length(graph))


@pytest.fixture(scope="module")
def compiled_reachable():
    return compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


class TestReachabilityEndToEnd:
    def test_all_pairs_reachability_on_ring(self, compiled_reachable):
        topology = line_topology(4)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        base = {
            node: [
                Fact("link", (link.source, link.destination))
                for link in topology.outgoing(node)
            ]
            for node in topology.nodes
        }
        result = simulator.run(base)
        assert result.converged
        reachable = {
            (fact.values[0], fact.values[1]) for fact in result.all_facts("reachable")
        }
        # A bidirectional 4-node chain: every ordered pair is reachable.
        expected = {(a, b) for a in topology.nodes for b in topology.nodes if a != b}
        assert expected <= reachable

    def test_tuples_stored_at_their_location(self, compiled_reachable):
        topology = line_topology(3)
        simulator = SimulationKernel(topology, compiled_reachable, EngineConfig())
        base = {
            node: [
                Fact("link", (link.source, link.destination))
                for link in topology.outgoing(node)
            ]
            for node in topology.nodes
        }
        result = simulator.run(base)
        for address, engine in result.engines.items():
            for fact in engine.facts("reachable"):
                assert fact.values[0] == address


class TestBestPathEndToEnd:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_costs_match_dijkstra(self, compiled_best_path, seed):
        topology = random_topology(9, seed=seed)
        simulator = SimulationKernel(topology, compiled_best_path, EngineConfig())
        result = simulator.run()
        assert result.converged
        oracle = reference_shortest_paths(topology)
        for address, engine in result.engines.items():
            for fact in engine.facts("bestPath"):
                source, destination, path, cost = fact.values
                assert source == address
                assert cost == pytest.approx(oracle[source][destination])
                # The reported path must really have the reported cost.
                hops = list(path)
                total = sum(
                    topology.link_between(hops[i], hops[i + 1]).cost
                    for i in range(len(hops) - 1)
                )
                assert total == pytest.approx(cost)

    def test_every_reachable_pair_gets_a_best_path(self, compiled_best_path):
        topology = random_topology(8, seed=5)
        result = SimulationKernel(topology, compiled_best_path, EngineConfig()).run()
        oracle = reference_shortest_paths(topology)
        expected_pairs = {
            (s, d) for s, targets in oracle.items() for d in targets if s != d
        }
        computed_pairs = {
            (fact.values[0], fact.values[1]) for fact in result.all_facts("bestPath")
        }
        assert computed_pairs == expected_pairs

    def test_all_three_configurations_compute_identical_best_paths(self, compiled_best_path):
        topology = random_topology(7, seed=9)
        outcomes = {}
        for name, config in (
            ("ndlog", EngineConfig()),
            ("sendlog", EngineConfig(says_mode=SaysMode.SIGNED)),
            (
                "sendlogprov",
                EngineConfig(
                    says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
                ),
            ),
        ):
            result = SimulationKernel(topology, compiled_best_path, config).run()
            outcomes[name] = {
                (f.values[0], f.values[1], f.values[3]) for f in result.all_facts("bestPath")
            }
        assert outcomes["ndlog"] == outcomes["sendlog"] == outcomes["sendlogprov"]

    def test_overhead_ordering_matches_paper(self, compiled_best_path):
        """NDlog < SeNDlog < SeNDlogProv in both completion time and bandwidth."""
        topology = random_topology(10, seed=4)
        summaries = {}
        for name, config in (
            ("ndlog", EngineConfig()),
            ("sendlog", EngineConfig(says_mode=SaysMode.SIGNED)),
            (
                "sendlogprov",
                EngineConfig(
                    says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
                ),
            ),
        ):
            summaries[name] = SimulationKernel(topology, compiled_best_path, config).run().stats.summary()
        assert (
            summaries["ndlog"]["completion_time_s"]
            < summaries["sendlog"]["completion_time_s"]
            < summaries["sendlogprov"]["completion_time_s"]
        )
        assert (
            summaries["ndlog"]["bandwidth_mb"]
            < summaries["sendlog"]["bandwidth_mb"]
            < summaries["sendlogprov"]["bandwidth_mb"]
        )

    def test_determinism_of_a_full_run(self, compiled_best_path):
        topology = random_topology(8, seed=2)
        config = EngineConfig(says_mode=SaysMode.SIGNED)
        first = SimulationKernel(topology, compiled_best_path, config).run().stats.summary()
        second = SimulationKernel(topology, compiled_best_path, config).run().stats.summary()
        assert first == second

    def test_cost_model_scales_completion_time(self, compiled_best_path):
        topology = random_topology(6, seed=2)
        slow = CostModel(seconds_per_rule_firing=10e-3)
        fast = CostModel(seconds_per_rule_firing=0.1e-3)
        slow_time = (
            SimulationKernel(topology, compiled_best_path, EngineConfig(), cost_model=slow)
            .run()
            .stats.completion_time
        )
        fast_time = (
            SimulationKernel(topology, compiled_best_path, EngineConfig(), cost_model=fast)
            .run()
            .stats.completion_time
        )
        assert slow_time > fast_time

    def test_max_events_guard_reports_non_convergence(self, compiled_best_path):
        topology = random_topology(8, seed=2)
        simulator = SimulationKernel(topology, compiled_best_path, EngineConfig(), max_events=10)
        result = simulator.run()
        assert not result.converged


class TestProvenanceEndToEnd:
    def test_paper_example_network_provenance(self, compiled_reachable):
        """Figure 1 / 2: reachable(a, c) over links a->b, a->c, b->c condenses to <a>."""
        topology = Topology(
            nodes=("a", "b", "c"),
            links=(
                Link(source="a", destination="b", cost=1.0),
                Link(source="a", destination="c", cost=1.0),
                Link(source="b", destination="c", cost=1.0),
            ),
        )
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        simulator = SimulationKernel(topology, compiled_reachable, config, key_bits=128)
        base = {
            node: [
                Fact("link", (link.source, link.destination))
                for link in topology.outgoing(node)
            ]
            for node in topology.nodes
        }
        result = simulator.run(base)
        engine_a = result.engines["a"]
        reach_ac = next(
            fact for fact in engine_a.facts("reachable") if fact.values == ("a", "c")
        )
        annotation = engine_a.provenance_of(reach_ac)
        # The paper's condensation example: <a + a*b> collapses to <a>.
        assert annotation.acceptable({"a"})
        assert not annotation.acceptable({"b"})
        assert str(annotation) == "<a>"

    def test_provenance_sources_lie_on_the_best_path(self, compiled_best_path):
        topology = line_topology(5)
        config = EngineConfig(
            says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
        )
        result = SimulationKernel(topology, compiled_best_path, config, key_bits=128).run()
        engine = result.engines["n0"]
        fact = next(
            f for f in engine.facts("bestPath") if f.values[0] == "n0" and f.values[1] == "n4"
        )
        sources = engine.provenance_of(fact).sources()
        # Every principal contributing to the derivation lies on the path.
        assert sources <= set(fact.values[2])

    def test_offline_archives_cover_all_nodes(self, compiled_best_path):
        topology = line_topology(4)
        config = EngineConfig(
            says_mode=SaysMode.SIGNED,
            provenance_mode=ProvenanceMode.CONDENSED,
            keep_offline_provenance=True,
        )
        result = SimulationKernel(topology, compiled_best_path, config, key_bits=128).run()
        assert all(len(e.offline_provenance) > 0 for e in result.engines.values())

    def test_distributed_traceback_after_distributed_run(self, compiled_best_path):
        from repro.provenance.distributed import traceback

        topology = line_topology(4)
        config = EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED)
        result = SimulationKernel(topology, compiled_best_path, config).run()
        engine = result.engines["n0"]
        target = next(
            f for f in engine.facts("bestPath") if f.values[0] == "n0" and f.values[1] == "n3"
        )
        stores = {a: e.distributed_provenance for a, e in result.engines.items()}
        walk = traceback(target.key(), "n0", stores.get)
        assert walk.complete
        # The reconstruction reaches the base link tuples along the chain.
        base_relations = {key[0] for key in walk.graph.base_tuples(target.key())}
        assert base_relations == {"link"}
