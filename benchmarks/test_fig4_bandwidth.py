"""Figure 4: bandwidth utilisation for the Best-Path query.

Same sweep as Figure 3, measuring the total combined bandwidth usage (MB)
across all nodes for the three configurations.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import figure4_series, render_series
from repro.harness.runner import run_network
from repro.queries.best_path import compile_best_path

from conftest import bench_sizes

CONFIGURATIONS = ("NDLog", "SeNDLog", "SeNDLogProv")
BENCH_N = bench_sizes()[-1]


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_fig4_bandwidth(benchmark, configuration):
    """One Figure 4 data point per configuration at the largest benchmarked N."""
    compiled = compile_best_path()

    def run():
        return run_network(configuration, BENCH_N, seed=0, compiled=compiled)

    row = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert row.converged
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["node_count"] = BENCH_N
    benchmark.extra_info["bandwidth_mb"] = row.bandwidth_mb
    benchmark.extra_info["total_messages"] = row.total_messages
    benchmark.extra_info["security_bytes"] = row.security_bytes
    benchmark.extra_info["provenance_bytes"] = row.provenance_bytes


def test_fig4_report(benchmark, evaluation_sweep, capsys):
    """Print the full Figure 4 series (bandwidth vs N, three configurations)."""
    series = benchmark(figure4_series, evaluation_sweep)
    text = render_series(
        series,
        "Figure 4: bandwidth utilisation (MB) for the Best-Path query",
        "total MB across all nodes",
        precision=3,
    )
    with capsys.disabled():
        print("\n" + text)
    for index in range(len(series["NDLog"])):
        assert (
            series["NDLog"][index][1]
            < series["SeNDLog"][index][1]
            < series["SeNDLogProv"][index][1]
        )
