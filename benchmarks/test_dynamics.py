"""Churn convergence: one-fixpoint deletions vs soft-state decay.

The measurement the tentpole exists for.  An 8-node line running the
localized reachability program is split by retracting its middle link:

* **one-fixpoint** (``rederivation=True``): the retraction's anti-delta
  flood deletes every cross-half tuple in a single distributed fixpoint —
  simulated convergence is link-latency-paced, well under a second;
* **decay baseline** (``rederivation=False``): stale cross-half tuples
  survive until their soft-state TTL runs out while periodic refresh
  rounds keep re-deriving (and re-shipping) the surviving half — the
  paper-era convergence story, paced by ``ttl`` not by computation.

Convergence is *measured*, not assumed: after the retraction the network
state is probed against a from-scratch oracle (a fresh network fed only
the surviving base tuples), advancing simulated time second by second in
the decay case until the two agree.  The one-fixpoint run must beat the
baseline by ``REPRO_DYN_TARGET`` (default 5x — the acceptance floor).

A second test pins the new ledger across backends: the six churn-plane
counters (rederivations, anti-delta messages/bytes, refresh
messages/bytes, timer events) must be byte-identical between the serial
backend and the sharded backend at 2 and 4 shards.

Both tests append their measurements to ``BENCH_dynamics.json`` in the
working directory, unconditionally.

Environment knobs::

    REPRO_DYN_N=8           line length (even; the bridge is the middle link)
    REPRO_DYN_TARGET=5.0    required convergence-time improvement
"""

from __future__ import annotations

import json
import os

from repro.api.network import Network
from repro.api.options import NetOptions
from repro.datalog import localize_program, parse_program
from repro.datalog.planner import compile_program
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.events import FactInjection, FactRetraction, SoftStateRefresh
from repro.net.topology import line_topology
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode

#: Soft-state TTL: the decay baseline's convergence currency.
TTL = 30.0

#: Rounds-mode refresh cadence for the decay baseline.
REFRESH_INTERVAL = 10.0

#: Measurement artifact, written unconditionally in the working directory.
ARTIFACT = "BENCH_dynamics.json"

COUNTERS = (
    "rederivations",
    "anti_delta_messages",
    "anti_delta_bytes",
    "refresh_messages",
    "refresh_bytes",
    "timer_events",
)

_COMPILED = compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


def dyn_n() -> int:
    return int(os.environ.get("REPRO_DYN_N", "8"))


def dyn_target() -> float:
    return float(os.environ.get("REPRO_DYN_TARGET", "5.0"))


def _write_artifact(section: str, payload) -> None:
    data = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _build(topology, rederivation: bool, **net_kwargs):
    return Network.build(
        topology=topology,
        program=_COMPILED,
        config=EngineConfig(
            default_ttl=TTL,
            track_dependencies=True,
            provenance_mode=ProvenanceMode.CONDENSED,
            says_mode=SaysMode.NONE,
            rederivation=rederivation,
        ),
        options=NetOptions(**net_kwargs),
    )


def _inject_links(simulator, topology) -> None:
    for node in topology.nodes:
        facts = tuple(
            Fact("link", (link.source, link.destination))
            for link in sorted(topology.outgoing(node), key=lambda l: l.destination)
        )
        simulator.schedule(FactInjection(time=0.0, address=node, facts=facts))


def _state(simulator):
    return {
        address: frozenset(fact.values for fact in engine.facts("reachable"))
        for address, engine in simulator.engines.items()
    }


def _split_oracle(topology, bridge):
    """A fresh network over the same topology minus the bridge's tuples."""
    network = _build(topology, rederivation=True)
    simulator = network.simulator
    for node in topology.nodes:
        facts = tuple(
            Fact("link", (link.source, link.destination))
            for link in sorted(topology.outgoing(node), key=lambda l: l.destination)
            if (link.source, link.destination) not in bridge
        )
        if facts:
            simulator.schedule(FactInjection(time=0.0, address=node, facts=facts))
    assert simulator.run_until_idle()
    return _state(simulator)


def _retract_bridge(simulator, bridge, at: float) -> None:
    for source, destination in sorted(bridge):
        simulator.schedule(
            FactRetraction(
                time=at,
                address=source,
                facts=(Fact("link", (source, destination)),),
            )
        )


def test_bridge_retraction_convergence():
    nodes = dyn_n()
    topology = line_topology(nodes)
    left, right = topology.nodes[nodes // 2 - 1], topology.nodes[nodes // 2]
    bridge = {(left, right), (right, left)}
    oracle = _split_oracle(topology, bridge)

    # --- one-fixpoint: anti-delta repair at computation speed -------------
    network = _build(topology, rederivation=True)
    simulator = network.simulator
    _inject_links(simulator, topology)
    assert simulator.run_until_idle()
    retract_at = simulator.current_time() + 1.0
    bytes_before = simulator.stats.summary()["total_bytes"]
    _retract_bridge(simulator, bridge, retract_at)
    assert simulator.run_until_idle()
    assert _state(simulator) == oracle
    fixpoint_time = simulator.current_time() - retract_at
    fixpoint_summary = simulator.stats.summary()
    fixpoint_bytes = fixpoint_summary["total_bytes"] - bytes_before
    assert fixpoint_summary["anti_delta_messages"] > 0

    # --- decay baseline: over-deletion only, repair by TTL + refresh ------
    network = _build(topology, rederivation=False)
    simulator = network.simulator
    _inject_links(simulator, topology)
    assert simulator.run_until_idle()
    retract_at = simulator.current_time() + 1.0
    bytes_before = simulator.stats.summary()["total_bytes"]
    _retract_bridge(simulator, bridge, retract_at)
    assert simulator.run_until_idle()
    assert simulator.stats.summary()["anti_delta_messages"] == 0
    # Decay-paced repair, exactly the old retraction scenario's script: a
    # rounds-mode refresh only bumps TTLs at the owner — a duplicate
    # re-injection of a live base tuple produces no delta, so remote
    # derived state cannot be patched in place.  The network has to sit
    # through a full TTL of decay (stale and surviving tuples alike), and
    # the next lockstep refresh round rebuilds the surviving halves from
    # the remembered base.  Convergence is the first probed instant the
    # live state equals the oracle.
    decay_time = None
    for step in range(1, int(TTL + 2 * REFRESH_INTERVAL) + 1):
        now = retract_at + float(step)
        simulator.expire_all(now)
        if step == int(TTL + REFRESH_INTERVAL):
            simulator.schedule(SoftStateRefresh(time=now))
            assert simulator.run_until_idle()
        if _state(simulator) == oracle:
            decay_time = float(step)
            break
    assert decay_time is not None, "decay baseline never reached the oracle"
    decay_bytes = simulator.stats.summary()["total_bytes"] - bytes_before

    improvement = decay_time / fixpoint_time if fixpoint_time else float("inf")
    record = {
        "node_count": nodes,
        "ttl_s": TTL,
        "refresh_interval_s": REFRESH_INTERVAL,
        "fixpoint_convergence_s": round(fixpoint_time, 3),
        "decay_convergence_s": round(decay_time, 3),
        "improvement": round(improvement, 2),
        "target": dyn_target(),
        "fixpoint_repair_bytes": int(fixpoint_bytes),
        "decay_repair_bytes": int(decay_bytes),
        "anti_delta_messages": int(fixpoint_summary["anti_delta_messages"]),
        "anti_delta_bytes": int(fixpoint_summary["anti_delta_bytes"]),
    }
    _write_artifact("bridge_retraction", record)
    print(
        f"\nbridge retraction N={nodes}: one-fixpoint {fixpoint_time:.3f}s "
        f"vs decay {decay_time:.1f}s ({improvement:.1f}x, target "
        f"{dyn_target()}x); repair bytes {int(fixpoint_bytes)} vs "
        f"{int(decay_bytes)}"
    )
    assert improvement >= dyn_target(), record


def _drive_wheel_retraction(backend: str, shards: int = 2):
    """Converge, refresh past TTL on the wheel, retract the bridge."""
    nodes = dyn_n()
    topology = line_topology(nodes)
    left, right = topology.nodes[nodes // 2 - 1], topology.nodes[nodes // 2]
    options = dict(refresh_mode="wheel", refresh_interval=REFRESH_INTERVAL)
    if backend == "sharded":
        options.update(backend="sharded", shards=shards, shard_mode="inline")
    network = _build(topology, rederivation=True, **options)
    simulator = network.simulator
    _inject_links(simulator, topology)
    assert simulator.run_until_idle()
    # Advance the wheel horizon past the TTL: per-tuple timers keep the
    # derived state alive without lockstep refresh rounds.
    simulator.schedule(SoftStateRefresh(time=TTL + 5.0))
    assert simulator.run_until_idle()
    at = max(simulator.current_time(), TTL + 5.0) + 1.0
    _retract_bridge(simulator, {(left, right), (right, left)}, at)
    assert simulator.run_until_idle()
    return {key: int(simulator.stats.summary()[key]) for key in COUNTERS}


def test_churn_ledger_identical_across_backends():
    serial = _drive_wheel_retraction("serial")
    rows = {"serial": serial}
    for shards in (2, 4):
        sharded = _drive_wheel_retraction("sharded", shards=shards)
        rows[f"sharded_{shards}"] = sharded
        assert sharded == serial, shards
    for key in COUNTERS:
        assert serial[key] > 0, key
    _write_artifact(
        "churn_ledger", {"node_count": dyn_n(), "counters": rows}
    )
    print(f"\nchurn ledger N={dyn_n()}: {serial} (identical at 2 and 4 shards)")
