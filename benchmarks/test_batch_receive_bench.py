"""Benchmark: batch-level engine receive vs the per-tuple path.

ROADMAP listed batch-level ``NodeEngine.receive`` — amortizing the
per-tuple report/result objects of every incoming wire message — as a top
remaining lever.  This benchmark runs the same Best-Path workload with the
engine-side batch receive on and off (the wire format is batched in both
runs) and records both wall clocks, asserting the two paths computed
identical results.

Knobs (environment variables):

* ``REPRO_BENCH_RECEIVE_N`` — node count, default 60 (the equivalence
  assertion runs the workload twice, so the default stays moderate; the
  headline N=100 comparison lives in ROADMAP's performance notes).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.runner import run_network
from repro.net.topology import random_topology
from repro.queries.best_path import compile_best_path


def receive_bench_n() -> int:
    return int(os.environ.get("REPRO_BENCH_RECEIVE_N", "60"))


@pytest.mark.parametrize("batch_receive", (True, False), ids=("batch", "per-tuple"))
def test_receive_path(benchmark, batch_receive):
    node_count = receive_bench_n()
    topology = random_topology(node_count, seed=0)
    compiled = compile_best_path()

    def run():
        return run_network(
            "NDLog", topology, compiled=compiled, batch_receive=batch_receive
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.converged
    assert len(result.all_facts("bestPath")) == node_count * (node_count - 1)
    benchmark.extra_info["node_count"] = node_count
    benchmark.extra_info["batch_receive"] = batch_receive
    benchmark.extra_info["total_messages"] = result.stats.total_messages
    benchmark.extra_info["simulated_completion_time_s"] = result.stats.completion_time
