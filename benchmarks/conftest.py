"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts
(Figure 3, Figure 4, the Section 6 overhead percentages, plus two ablations).
The node-count sweep defaults to a subset of the paper's 10..100 so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes; set

    REPRO_BENCH_SIZES=10,20,30,40,50,60,70,80,90,100

to run the full sweep the paper uses.
"""

from __future__ import annotations

import os
from typing import Tuple

import pytest

from repro.harness.experiments import sweep

#: Node counts benchmarked by default (subset of the paper's sweep).
DEFAULT_BENCH_SIZES: Tuple[int, ...] = (10, 20, 30)


def bench_sizes() -> Tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SIZES")
    if not raw:
        return DEFAULT_BENCH_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


@pytest.fixture(scope="session")
def evaluation_sweep():
    """One full sweep shared by the figure/overhead benchmarks' reporting."""
    return sweep(node_counts=bench_sizes(), seeds=(0,))
