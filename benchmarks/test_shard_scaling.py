"""Serial vs sharded wall clock at scale (the sharded backend's raison d'être).

Runs the Best-Path NDlog workload once on ``backend="serial"`` and once on
``backend="sharded"`` (multiprocessing workers) over the same ≥200-node
topology, records both wall clocks and the speedup, and — always — asserts
the backends' contract: identical derived-fact counts and identical
integer/byte statistics.

The speedup target (≥1.8x at 4 shards) is asserted only where it is
physically attainable: the workers are real OS processes, so the machine
must have at least as many cores as shards.  On smaller machines (or with
``REPRO_SHARD_ASSERT=0``) the benchmark still runs both backends and checks
equivalence, reporting the measured ratio as ``extra_info``.

Environment knobs::

    REPRO_SCALE_N=200        topology size (the scaling-benchmark default)
    REPRO_SHARD_COUNT=4      shard / worker count
    REPRO_SHARD_ASSERT=1     force the speedup assertion on (0 forces off)
    REPRO_SHARD_TARGET=1.8   required speedup

The topology uses 50 ms link latency (a WAN-ish figure) for both link and
default latency: the conservative lookahead window is the minimum
cross-shard latency, so the latency scale sets how much parallel work fits
between barriers.  Simulated *results* are latency-scaled but
backend-identical either way.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine.node_engine import EngineConfig
from repro.net.kernel import SimulationKernel
from repro.net.sharding import ShardedSimulator
from repro.net.topology import random_topology
from repro.queries.best_path import compile_best_path

#: Latency used for links and linkless (reverse-link) sends: the lookahead
#: window.  50 ms of simulated latency per hop — results scale, equality
#: between backends does not depend on it.
BENCH_LATENCY = 0.05


def scale_n() -> int:
    return int(os.environ.get("REPRO_SCALE_N", "200"))


def shard_count() -> int:
    return int(os.environ.get("REPRO_SHARD_COUNT", "4"))


def speedup_target() -> float:
    return float(os.environ.get("REPRO_SHARD_TARGET", "1.8"))


def assert_speedup() -> bool:
    forced = os.environ.get("REPRO_SHARD_ASSERT")
    if forced is not None:
        return forced not in ("", "0")
    return (os.cpu_count() or 1) >= shard_count()


def test_shard_scaling(benchmark):
    node_count = scale_n()
    shards = shard_count()
    topology = random_topology(node_count, seed=0, latency=BENCH_LATENCY)
    compiled = compile_best_path()

    started = time.perf_counter()
    serial = SimulationKernel(
        topology, compiled, EngineConfig(), default_latency=BENCH_LATENCY
    ).run()
    serial_seconds = time.perf_counter() - started
    assert serial.converged

    def run_sharded():
        return ShardedSimulator(
            topology,
            compiled,
            EngineConfig(),
            default_latency=BENCH_LATENCY,
            shards=shards,
            shard_mode="processes",
        ).run()

    started = time.perf_counter()
    sharded = benchmark.pedantic(run_sharded, rounds=1, iterations=1, warmup_rounds=0)
    sharded_seconds = time.perf_counter() - started
    assert sharded.converged

    # The backends' contract, always enforced: identical facts and
    # integer/byte statistics (floats agree up to summation order).
    serial_summary, sharded_summary = serial.stats.summary(), sharded.stats.summary()
    for key in serial_summary:
        if key == "cpu_seconds":
            assert serial_summary[key] == pytest.approx(
                sharded_summary[key], rel=1e-12
            )
        else:
            assert serial_summary[key] == sharded_summary[key], key
    expected_paths = node_count * (node_count - 1)
    assert len(serial.all_facts("bestPath")) == expected_paths
    assert len(sharded.all_facts("bestPath")) == expected_paths

    speedup = serial_seconds / sharded_seconds if sharded_seconds else float("inf")
    benchmark.extra_info["node_count"] = node_count
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_wall_s"] = round(serial_seconds, 3)
    benchmark.extra_info["sharded_wall_s"] = round(sharded_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["speedup_asserted"] = assert_speedup()
    print(
        f"\nshard scaling N={node_count} shards={shards}: "
        f"serial {serial_seconds:.2f}s, sharded {sharded_seconds:.2f}s, "
        f"speedup {speedup:.2f}x (cores: {os.cpu_count()})"
    )

    if assert_speedup():
        assert speedup >= speedup_target(), (
            f"sharded backend reached only {speedup:.2f}x over serial at "
            f"N={node_count}, shards={shards} (target {speedup_target()}x); "
            "set REPRO_SHARD_ASSERT=0 to measure without asserting"
        )
