"""Serial vs sharded wall clock, and the coordination ledger, at 1 ms links.

Two axes, one artifact:

* **Wall clock** (``test_shard_scaling``): the Best-Path NDlog workload once
  on ``backend="serial"`` and once on ``backend="sharded"`` (multiprocessing
  workers, pipelined barriers, binary transport) over the same ≥200-node
  topology at the default 1 ms link latency — the regime where per-window
  coordination used to eat the speedup.  Equivalence (identical derived-fact
  counts, identical integer/byte statistics) is asserted always; the speedup
  target only where it is physically attainable (enough cores, or
  ``REPRO_SHARD_ASSERT=1``).

* **Coordination** (``test_coordination_ledger``): strict-barrier pickle
  (the pre-pipeline status quo) vs pipelined binary on the same
  converge-then-query workload, inline (single core is fine — the ledger is
  deterministic).  Asserts ``coordination_rounds`` and
  ``coordination_bytes`` drop ≥3x at the most coordination-bound grid point,
  and that every grid point's results stay byte-identical to serial.

Both tests append their measurements to ``BENCH_shard.json`` in the working
directory, unconditionally.

Environment knobs::

    REPRO_SCALE_N=200        wall-clock topology size
    REPRO_SHARD_COUNT=4      wall-clock shard / worker count
    REPRO_SHARD_ASSERT=1     force the speedup assertion on (0 forces off)
    REPRO_SHARD_TARGET=1.5   required speedup
    REPRO_COORD_N=12,16      coordination-grid topology sizes
    REPRO_COORD_SHARDS=8     coordination-grid shard count
    REPRO_COORD_TARGET=3.0   required rounds and bytes improvement

The 1 ms latency makes the conservative lookahead window — and with it the
number of barrier windows — 50x tighter than the old 50 ms WAN figure;
simulated *results* are latency-scaled but backend-identical either way.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.kernel import SimulationKernel
from repro.net.sharding import ShardedSimulator
from repro.net.stats import COORDINATION_KEYS
from repro.net.topology import random_topology
from repro.queries.best_path import compile_best_path

#: Link and linkless (reverse-link) latency: the conservative lookahead
#: window.  1 ms — the coordination-bound regime this benchmark measures.
BENCH_LATENCY = 0.001

#: Measurement artifact, written unconditionally in the working directory.
ARTIFACT = "BENCH_shard.json"


def scale_n() -> int:
    return int(os.environ.get("REPRO_SCALE_N", "200"))


def shard_count() -> int:
    return int(os.environ.get("REPRO_SHARD_COUNT", "4"))


def speedup_target() -> float:
    return float(os.environ.get("REPRO_SHARD_TARGET", "1.5"))


def coord_sizes() -> tuple:
    raw = os.environ.get("REPRO_COORD_N", "12,16")
    return tuple(int(part) for part in raw.split(",") if part)


def coord_shards() -> int:
    return int(os.environ.get("REPRO_COORD_SHARDS", "8"))


def coord_target() -> float:
    return float(os.environ.get("REPRO_COORD_TARGET", "3.0"))


def assert_speedup() -> bool:
    forced = os.environ.get("REPRO_SHARD_ASSERT")
    if forced is not None:
        return forced not in ("", "0")
    return (os.cpu_count() or 1) >= shard_count()


def _write_artifact(section: str, payload) -> None:
    data = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _assert_summaries_equal(serial, sharded) -> None:
    serial_summary, sharded_summary = serial.summary(), sharded.summary()
    for key in serial_summary:
        if key in COORDINATION_KEYS:
            continue  # the ledger describes coordination, not the network
        if key == "completion_time_s" and serial_summary[key] != sharded_summary[key]:
            continue  # live snapshots carry it only after finish()
        if key == "cpu_seconds":
            assert serial_summary[key] == pytest.approx(
                sharded_summary[key], rel=1e-12
            )
        else:
            assert serial_summary[key] == sharded_summary[key], key


# ---------------------------------------------------------------------------
# Axis 1: wall clock (parallel workers, pipelined, binary frames)
# ---------------------------------------------------------------------------

def test_shard_scaling(benchmark):
    node_count = scale_n()
    shards = shard_count()
    topology = random_topology(node_count, seed=0, latency=BENCH_LATENCY)
    compiled = compile_best_path()

    started = time.perf_counter()
    serial = SimulationKernel(
        topology, compiled, EngineConfig(), default_latency=BENCH_LATENCY
    ).run()
    serial_seconds = time.perf_counter() - started
    assert serial.converged

    def run_sharded():
        return ShardedSimulator(
            topology,
            compiled,
            EngineConfig(),
            default_latency=BENCH_LATENCY,
            shards=shards,
            shard_mode="processes",
            shard_pipeline=True,
            transport="binary",
        ).run()

    started = time.perf_counter()
    sharded = benchmark.pedantic(run_sharded, rounds=1, iterations=1, warmup_rounds=0)
    sharded_seconds = time.perf_counter() - started
    assert sharded.converged

    # The backends' contract, always enforced: identical facts and
    # integer/byte statistics (floats agree up to summation order).
    _assert_summaries_equal(serial.stats, sharded.stats)
    expected_paths = node_count * (node_count - 1)
    assert len(serial.all_facts("bestPath")) == expected_paths
    assert len(sharded.all_facts("bestPath")) == expected_paths

    speedup = serial_seconds / sharded_seconds if sharded_seconds else float("inf")
    ledger = {
        key: int(sharded.stats.summary()[key]) for key in sorted(COORDINATION_KEYS)
    }
    record = {
        "node_count": node_count,
        "shards": shards,
        "cpu_count": os.cpu_count(),
        "latency_s": BENCH_LATENCY,
        "serial_wall_s": round(serial_seconds, 3),
        "sharded_wall_s": round(sharded_seconds, 3),
        "speedup": round(speedup, 3),
        "speedup_asserted": assert_speedup(),
        "ledger": ledger,
    }
    benchmark.extra_info.update(record)
    _write_artifact("wall_clock", record)
    print(
        f"\nshard scaling N={node_count} shards={shards} latency=1ms: "
        f"serial {serial_seconds:.2f}s, sharded {sharded_seconds:.2f}s, "
        f"speedup {speedup:.2f}x (cores: {os.cpu_count()}), "
        f"rounds={ledger['coordination_rounds']} "
        f"coalesced={ledger['windows_coalesced']}"
    )

    if assert_speedup():
        assert speedup >= speedup_target(), (
            f"sharded backend reached only {speedup:.2f}x over serial at "
            f"N={node_count}, shards={shards} (target {speedup_target()}x); "
            "set REPRO_SHARD_ASSERT=0 to measure without asserting"
        )


# ---------------------------------------------------------------------------
# Axis 2: the coordination ledger (deterministic; single core is enough)
# ---------------------------------------------------------------------------

def _run_coordination_point(topology, pipeline: bool, transport: str):
    """One converge-then-query run; returns (simulator, result)."""
    simulator = ShardedSimulator(
        topology,
        compile_best_path(),
        EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
        key_bits=128,
        default_latency=BENCH_LATENCY,
        shards=coord_shards(),
        shard_mode="inline",
        shard_pipeline=pipeline,
        transport=transport,
    )
    result = simulator.run()
    assert result.converged
    # The paper's evaluation centerpiece: query the converged network, one
    # provenance traceback per node.  Query traffic is localized, which is
    # exactly where per-shard horizons beat lockstep barriers.
    for address in topology.nodes:
        facts = sorted(
            (
                fact
                for fact in simulator.engines[address].facts("bestPath")
                if fact.values[0] == address
            ),
            key=lambda fact: fact.values,
        )
        if facts:
            simulator.query(facts[0], at=address)
    return simulator


def _serial_oracle(topology):
    kernel = SimulationKernel(
        topology,
        compile_best_path(),
        EngineConfig(provenance_mode=ProvenanceMode.DISTRIBUTED),
        key_bits=128,
        default_latency=BENCH_LATENCY,
    )
    kernel.run()
    for address in topology.nodes:
        facts = sorted(
            (
                fact
                for fact in kernel.engines[address].facts("bestPath")
                if fact.values[0] == address
            ),
            key=lambda fact: fact.values,
        )
        if facts:
            kernel.query(facts[0], at=address)
    return kernel


def test_coordination_ledger():
    rows = []
    best = None
    for node_count in coord_sizes():
        topology = random_topology(node_count, seed=2, latency=BENCH_LATENCY)
        serial = _serial_oracle(topology)
        strict = _run_coordination_point(topology, pipeline=False, transport="pickle")
        pipelined = _run_coordination_point(topology, pipeline=True, transport="binary")
        # Same workload, same results: both modes match the serial oracle
        # node for node, floats included.
        for simulator in (strict, pipelined):
            _assert_summaries_equal(serial.stats, simulator.stats)
            assert simulator.current_time() == pytest.approx(
                serial.current_time(), rel=1e-12
            )
            for address in topology.nodes:
                mine = serial.stats.node(address)
                other = simulator.stats.node(address)
                for field in dataclasses.fields(mine):
                    assert getattr(mine, field.name) == getattr(
                        other, field.name
                    ), (address, field.name)
        row = {
            "node_count": node_count,
            "shards": coord_shards(),
            "latency_s": BENCH_LATENCY,
            "workload": "converge+query",
            "strict_rounds": strict._coordination_rounds,
            "pipelined_rounds": pipelined._coordination_rounds,
            "strict_bytes": strict._coordination_bytes,
            "pipelined_bytes": pipelined._coordination_bytes,
            "windows_coalesced": pipelined._windows_coalesced,
            "rounds_improvement": round(
                strict._coordination_rounds / pipelined._coordination_rounds, 2
            ),
            "bytes_improvement": round(
                strict._coordination_bytes / pipelined._coordination_bytes, 2
            ),
        }
        rows.append(row)
        if best is None or row["rounds_improvement"] > best["rounds_improvement"]:
            best = row
        print(
            f"\ncoordination N={node_count} shards={coord_shards()}: "
            f"rounds {row['strict_rounds']} -> {row['pipelined_rounds']} "
            f"({row['rounds_improvement']}x), "
            f"bytes {row['strict_bytes']} -> {row['pipelined_bytes']} "
            f"({row['bytes_improvement']}x)"
        )
    _write_artifact(
        "coordination", {"rows": rows, "target": coord_target()}
    )
    # The ≥3x contract holds at the most coordination-bound grid point: the
    # strict barrier pays every shard every window; per-shard horizons pay
    # only the busy ones, in frames a fraction of the pickles' size.
    assert best is not None
    assert best["rounds_improvement"] >= coord_target(), best
    assert best["bytes_improvement"] >= coord_target(), best
