"""Ablation E6: local versus distributed provenance (Section 4.1).

The trade-off the paper describes: local provenance piggy-backs provenance on
every shipped tuple (communication overhead during normal operation, cheap
queries), while distributed provenance stores only pointers (no shipping
overhead, but answering a provenance query requires a recursive traceback
across nodes).

The benchmark runs the same workload in both modes and reports:

* extra bandwidth the local (condensed, piggy-backed) mode spends up front;
* remote lookups a traceback needs per queried tuple in the distributed mode.
"""

from __future__ import annotations

import pytest

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.kernel import SimulationKernel
from repro.net.topology import random_topology
from repro.provenance.distributed import traceback
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode

NODE_COUNT = 15
SEED = 0


def _run(provenance_mode: ProvenanceMode):
    topology = random_topology(NODE_COUNT, seed=SEED)
    config = EngineConfig(says_mode=SaysMode.NONE, provenance_mode=provenance_mode)
    return SimulationKernel(topology, compile_best_path(), config).run()


def test_local_vs_distributed_provenance(benchmark, capsys):
    def run_both():
        return _run(ProvenanceMode.CONDENSED), _run(ProvenanceMode.DISTRIBUTED)

    local_result, distributed_result = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Local provenance pays communication up front.
    local_bytes = local_result.stats.total_bytes()
    distributed_bytes = distributed_result.stats.total_bytes()
    shipping_overhead = local_result.stats.provenance_overhead_bytes()
    assert shipping_overhead > 0
    assert distributed_result.stats.provenance_overhead_bytes() == 0
    assert local_bytes > distributed_bytes

    # Distributed provenance pays at query time: count remote lookups needed
    # to reconstruct the provenance of every best path at one node.
    stores = {
        address: engine.distributed_provenance
        for address, engine in distributed_result.engines.items()
    }
    source = "n0"
    engine = distributed_result.engines[source]
    lookups = []
    for fact in engine.facts("bestPath"):
        walk = traceback(fact.key(), source, stores.get)
        assert walk.complete
        lookups.append(walk.remote_lookups)
    average_lookups = sum(lookups) / len(lookups)

    benchmark.extra_info.update(
        {
            "local_total_bytes": local_bytes,
            "distributed_total_bytes": distributed_bytes,
            "piggyback_overhead_bytes": shipping_overhead,
            "avg_remote_lookups_per_query": round(average_lookups, 2),
            "queried_tuples": len(lookups),
        }
    )
    with capsys.disabled():
        print(
            "\nAblation: local provenance ships "
            f"{shipping_overhead} extra bytes up front "
            f"({100 * (local_bytes / distributed_bytes - 1):.0f}% more bandwidth); "
            f"distributed provenance instead needs {average_lookups:.1f} remote "
            f"lookups per provenance query ({len(lookups)} queries measured)."
        )

    # The trade-off must actually be a trade-off: queries are not free in the
    # distributed mode.
    assert average_lookups >= 1.0
