"""Ablation E5: how much does condensation (Section 4.4) actually save?

The design choice under test: shipping BDD-condensed provenance expressions
instead of raw provenance polynomials (or full derivation trees).  The
benchmark runs the Best-Path query with provenance enabled, collects the
provenance of every best-path tuple at every node, and compares the
serialized sizes of

* the raw (uncondensed) polynomial,
* the condensed polynomial (what SeNDlogProv ships), and
* the full rendered derivation tree (what naive local provenance would ship).
"""

from __future__ import annotations

import pytest

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.kernel import SimulationKernel
from repro.net.topology import random_topology
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode


def _provenance_sizes(node_count: int = 15, seed: int = 0):
    topology = random_topology(node_count, seed=seed)
    config = EngineConfig(says_mode=SaysMode.NONE, provenance_mode=ProvenanceMode.CONDENSED)
    result = SimulationKernel(topology, compile_best_path(), config).run()

    raw_bytes = 0
    condensed_bytes = 0
    tree_bytes = 0
    tuples = 0
    for address, engine in result.engines.items():
        store = engine.local_provenance
        for fact in engine.facts("bestPath"):
            key = fact.key()
            raw = store.graph.to_expression(key)
            condensed = store.annotation(key)
            tuples += 1
            raw_bytes += raw.serialized_size()
            condensed_bytes += condensed.serialized_size()
            tree_bytes += len(store.render(key).encode("utf-8"))
    return {
        "tuples": tuples,
        "raw_bytes": raw_bytes,
        "condensed_bytes": condensed_bytes,
        "tree_bytes": tree_bytes,
    }


def test_condensation_ablation(benchmark, capsys):
    sizes = benchmark.pedantic(_provenance_sizes, rounds=1, iterations=1)
    assert sizes["tuples"] > 0
    # Condensed annotations never exceed the raw polynomial, and are far
    # smaller than shipping the whole derivation tree.
    assert sizes["condensed_bytes"] <= sizes["raw_bytes"]
    assert sizes["condensed_bytes"] < sizes["tree_bytes"] / 2

    benchmark.extra_info.update(
        {
            "tuples": sizes["tuples"],
            "avg_condensed_bytes": round(sizes["condensed_bytes"] / sizes["tuples"], 1),
            "avg_raw_bytes": round(sizes["raw_bytes"] / sizes["tuples"], 1),
            "avg_tree_bytes": round(sizes["tree_bytes"] / sizes["tuples"], 1),
        }
    )
    with capsys.disabled():
        per = sizes["tuples"]
        print(
            "\nAblation: per-tuple provenance size (bytes) — "
            f"condensed {sizes['condensed_bytes'] / per:.1f}, "
            f"raw polynomial {sizes['raw_bytes'] / per:.1f}, "
            f"full derivation tree {sizes['tree_bytes'] / per:.1f}"
        )
