"""Section 6 text: the SeNDlog and condensed-provenance overhead percentages.

The paper reports, for the Best-Path sweep:

* SeNDlog vs NDlog      — on average 53% longer completion time and 36% more
  bandwidth; 44% and 17% at N = 100;
* SeNDlogProv vs SeNDlog — 41% longer completion time and 54% more bandwidth;
  6% and 10% at N = 100.

``test_overhead_report`` regenerates the measured table side by side with the
paper's numbers; the benchmark itself measures the cost of computing the
table from a sweep (cheap) so the expensive sweep is shared via the fixture.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import overhead_table, render_overhead_table


def test_overhead_table_benchmark(benchmark, evaluation_sweep):
    table = benchmark(overhead_table, evaluation_sweep)
    assert set(table) == {"SeNDLog_vs_NDLog", "SeNDLogProv_vs_SeNDLog"}
    for label, row in table.items():
        benchmark.extra_info[f"{label}_avg_time_pct"] = round(row["avg_time_overhead_pct"], 1)
        benchmark.extra_info[f"{label}_avg_bw_pct"] = round(
            row["avg_bandwidth_overhead_pct"], 1
        )


def test_overhead_report(benchmark, evaluation_sweep, capsys):
    """Print measured overheads next to the numbers quoted in the paper."""
    table = benchmark(overhead_table, evaluation_sweep)
    with capsys.disabled():
        print("\n" + render_overhead_table(table))

    sendlog = table["SeNDLog_vs_NDLog"]
    provenance = table["SeNDLogProv_vs_SeNDLog"]
    # Qualitative checks: authentication and provenance both cost extra, and
    # the overheads are tens of percent (not 2x-10x blowups, not negligible).
    assert 10 <= sendlog["avg_time_overhead_pct"] <= 120
    assert 5 <= sendlog["avg_bandwidth_overhead_pct"] <= 100
    assert 10 <= provenance["avg_time_overhead_pct"] <= 120
    assert 5 <= provenance["avg_bandwidth_overhead_pct"] <= 100
