"""Scaling benchmark: Best-Path on >=200-node grid and random topologies.

The paper's evaluation stops at 100 nodes; the ROADMAP asks for larger
topologies.  This benchmark runs the Best-Path query over a ~200-node random
topology (the paper's workload shape: average outdegree three, costs 1..10)
and a ~200-node grid, across the three evaluated configurations, asserting
that each run reaches the distributed fixpoint without hitting the
simulator's ``max_events`` safety valve.

Knobs (environment variables):

* ``REPRO_SCALE_N`` — node count, default 200.
* ``REPRO_SCALE_FULL`` — set to 1 to also run the signed configurations on
  the grid topology.  Grid all-pairs runs generate ~3x the events of random
  topologies of the same size (long diameters mean each pair's best cost is
  improved several times as wavefronts meet), so the two most expensive
  combinations are opt-in to keep the default suite runtime bounded.

The grid uses deterministic per-link costs drawn from 1..10 rather than unit
costs: a unit-cost grid has combinatorially many equal-cost shortest paths,
and every tie churns a ``bestPath`` replacement that re-triggers the
recursive rule at the neighbours.  Varied costs make shortest paths
essentially unique, so the benchmark measures topology scale rather than
tie-breaking pathology.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.net.link import Link
from repro.net.topology import Topology, grid_topology, random_topology
from repro.harness.runner import run_network
from repro.queries.best_path import compile_best_path

CONFIGURATIONS = ("NDLog", "SeNDLog", "SeNDLogProv")


def scale_n() -> int:
    return int(os.environ.get("REPRO_SCALE_N", "200"))


def full_matrix() -> bool:
    return os.environ.get("REPRO_SCALE_FULL", "") not in ("", "0")


def _grid_shape(node_count: int):
    rows = max(2, int(node_count ** 0.5))
    columns = (node_count + rows - 1) // rows
    return rows, columns


def scaling_grid(node_count: int, seed: int = 0) -> Topology:
    """A near-square grid of >= *node_count* nodes with varied link costs."""
    rows, columns = _grid_shape(node_count)
    base = grid_topology(rows, columns)
    rng = random.Random(seed)
    links = tuple(
        Link(
            source=link.source,
            destination=link.destination,
            cost=float(rng.randint(1, 10)),
            latency=link.latency,
            bandwidth=link.bandwidth,
        )
        for link in base.links
    )
    return Topology(nodes=base.nodes, links=links)


def scaling_random(node_count: int, seed: int = 0) -> Topology:
    """The paper's random workload shape, scaled past its 100-node sweep."""
    return random_topology(node_count, seed=seed)


TOPOLOGIES = {"random": scaling_random, "grid": scaling_grid}


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("kind", ("random", "grid"))
def test_scaling_topology(benchmark, kind, configuration):
    if kind == "grid" and configuration != "NDLog" and not full_matrix():
        pytest.skip(
            "signed grid runs are the two most expensive combinations; "
            "set REPRO_SCALE_FULL=1 to include them"
        )
    topology = TOPOLOGIES[kind](scale_n())
    compiled = compile_best_path()

    def run():
        return run_network(configuration, topology, compiled=compiled)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.converged, (
        f"{kind}/{configuration} hit max_events before the distributed fixpoint"
    )
    # Every ordered pair of distinct nodes ends up with exactly one best path.
    node_count = topology.node_count
    assert len(result.all_facts("bestPath")) == node_count * (node_count - 1)
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["topology"] = kind
    benchmark.extra_info["node_count"] = node_count
    benchmark.extra_info["events_processed"] = result.events_processed
    benchmark.extra_info["total_messages"] = result.stats.total_messages
    benchmark.extra_info["batches_sent"] = result.stats.total_batches()
    benchmark.extra_info["tuples_sent"] = result.stats.total_tuples_sent()
    benchmark.extra_info["mean_tuples_per_batch"] = round(
        result.stats.mean_tuples_per_batch(), 3
    )
    benchmark.extra_info["simulated_completion_time_s"] = result.stats.completion_time
