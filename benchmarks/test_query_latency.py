"""Query latency and overhead: the benchmark axis the paper's Section 6 implies.

Distributed provenance defers its cost from *maintenance* time to *query*
time; until this PR the repo could only measure the maintenance side.  For
each benchmarked node count this runs Best-Path to the fixpoint over the
evaluation workload (condensed provenance, offline archives on), then issues
in-network tracebacks for the longest route at every node, recording

* simulated query latency (issue -> last response),
* query messages / bytes per traceback,
* the query-vs-maintenance byte split (``query_bytes`` over
  ``maintenance_bytes`` — the tabulated comparison the paper motivates).

Knobs: ``REPRO_BENCH_SIZES`` (shared with the figure benchmarks) selects the
node counts; the report test prints the per-N table.
"""

from __future__ import annotations

import pytest

from repro.api import Network

from conftest import bench_sizes


def build_and_run(node_count: int) -> Network:
    network = Network.build(
        topology=node_count,
        program="best-path",
        provenance="condensed",
        keep_offline_provenance=True,
        seed=0,
    )
    network.run()
    return network


def query_all_nodes(network: Network):
    """One traceback per node: each asks about its longest best path."""
    results = []
    for address in network.topology.nodes:
        facts = network.node(address).facts("bestPath")
        if not facts:
            continue
        target = max(facts, key=lambda f: len(f.values[2]))
        results.append(network.query(target, at=address))
    return results


@pytest.mark.parametrize("node_count", bench_sizes())
def test_query_latency(benchmark, node_count):
    """Wall-clock of the full query sweep; simulated metrics in extra_info."""
    network = build_and_run(node_count)

    def run():
        return query_all_nodes(network)

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert results
    # Re-querying an already-queried network is idempotent in structure, but
    # only the first sweep's stats matter for the split below.
    complete = [r for r in results if r.complete]
    assert len(complete) == len(results), "static-topology queries must complete"
    latencies = [r.latency for r in results if r.messages]
    summary = network.stats.summary()
    benchmark.extra_info["node_count"] = node_count
    benchmark.extra_info["queries"] = len(results)
    benchmark.extra_info["mean_latency_ms"] = (
        1000.0 * sum(latencies) / len(latencies) if latencies else 0.0
    )
    benchmark.extra_info["max_latency_ms"] = (
        1000.0 * max(latencies) if latencies else 0.0
    )
    benchmark.extra_info["mean_messages_per_query"] = sum(
        r.messages for r in results
    ) / len(results)
    benchmark.extra_info["query_bytes"] = summary["query_bytes"]
    benchmark.extra_info["query_overhead_pct"] = (
        100.0 * summary["query_bytes"] / (summary["total_bytes"] - summary["query_bytes"])
        if summary["total_bytes"] > summary["query_bytes"]
        else 0.0
    )


def test_query_latency_report(capsys):
    """The per-N table: latency, wire cost and query-vs-maintenance split."""
    lines = [
        f"{'N':>5s}{'queries':>9s}{'mean ms':>9s}{'max ms':>9s}"
        f"{'msgs/q':>8s}{'query kB':>10s}{'maint kB':>10s}{'overhead':>10s}"
    ]
    for node_count in bench_sizes():
        network = build_and_run(node_count)
        results = query_all_nodes(network)
        assert results and all(r.complete for r in results)
        latencies = [r.latency for r in results if r.messages]
        summary = network.stats.summary()
        maintenance = summary["total_bytes"] - summary["query_bytes"]
        lines.append(
            f"{node_count:>5d}{len(results):>9d}"
            f"{1000.0 * sum(latencies) / max(len(latencies), 1):>9.2f}"
            f"{1000.0 * max(latencies, default=0.0):>9.2f}"
            f"{sum(r.messages for r in results) / len(results):>8.1f}"
            f"{summary['query_bytes'] / 1000.0:>10.1f}"
            f"{maintenance / 1000.0:>10.1f}"
            f"{100.0 * summary['query_bytes'] / maintenance:>9.1f}%"
        )
    with capsys.disabled():
        print()
        print("In-network provenance query latency/overhead (Best-Path, condensed)")
        print("\n".join(lines))
