"""The query service plane under open-loop load: saturation and equivalence.

Two axes, one artifact:

* **Saturation** (``test_open_loop_saturation``): a converged Best-Path
  network serves an open-loop Poisson traceback workload at a ladder of
  offered rates while admission control (token bucket, drop policy) and the
  per-node result cache are armed.  Query CPU costs are deliberately
  inflated (``SERVICE_COST``) so the service plane — not the network RTT —
  is the bottleneck, which is the regime the ladder is meant to exercise.
  The classic open-loop signature is asserted, not just plotted: rejection
  rate and p95 latency rise monotonically with offered load, goodput grows
  sublinearly past the knee (the plateau), the cache serves an increasing
  share of probes, and per point the admission ledger conserves queries
  (``completed + shed == offered``).

* **Equivalence** (``test_service_backend_equivalence``): the most
  saturated grid point once on the serial kernel and once on the sharded
  backend — identical SLO report, field for field, because every service
  counter is an integer on simulated time.

Both tests append their measurements to ``BENCH_service.json`` in the
working directory, unconditionally.

Environment knobs::

    REPRO_SERVICE_RATES=2,5,10,20,40   offered query rates (per second)
    REPRO_SERVICE_N=10                 topology size
    REPRO_SERVICE_DURATION=10          open-loop window (simulated seconds)
"""

from __future__ import annotations

import json
import os

from repro.api import NetOptions, Network
from repro.net.kernel import CostModel
from repro.net.topology import random_topology
from repro.service.workload import QueryWorkload

#: Measurement artifact, written unconditionally in the working directory.
ARTIFACT = "BENCH_service.json"

#: Inflated query-plane costs: with the default model the 1 ms-scale network
#: RTT dominates and p95 is flat at every offered rate; these constants make
#: answering a traceback cost tens of simulated milliseconds of CPU, so
#: queueing — and with it the latency knee — shows up inside the ladder.
SERVICE_COST = CostModel(
    seconds_per_query_lookup=25e-3, seconds_per_query_byte=2e-4
)

#: Admission control for every grid point: one query per second per node of
#: sustained budget, with enough burst that the low-rate points sail through
#: unrejected and the high-rate points shed the overload.
ADMISSION_RATE = 1.0
ADMISSION_BURST = 8.0

TOPOLOGY_SEED = 4
WORKLOAD_SEED = 7


def service_rates() -> tuple:
    raw = os.environ.get("REPRO_SERVICE_RATES", "2,5,10,20,40")
    return tuple(float(part) for part in raw.split(",") if part)


def service_n() -> int:
    return int(os.environ.get("REPRO_SERVICE_N", "10"))


def service_duration() -> float:
    return float(os.environ.get("REPRO_SERVICE_DURATION", "10"))


def _write_artifact(section: str, payload) -> None:
    data = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _serve_point(rate: float, **option_overrides) -> dict:
    """One grid point: build, converge, serve, return the SLO report dict."""
    options = NetOptions(
        seed=TOPOLOGY_SEED,
        query_cache=True,
        admission_rate=ADMISSION_RATE,
        admission_burst=ADMISSION_BURST,
        cost_model=SERVICE_COST,
        **option_overrides,
    )
    network = Network.build(
        topology=random_topology(service_n(), seed=TOPOLOGY_SEED),
        program="best-path",
        provenance="condensed",
        options=options,
    )
    workload = QueryWorkload(
        rate=rate, duration=service_duration(), seed=WORKLOAD_SEED
    )
    result = network.serve(workload)
    report = result.service()
    assert report is not None
    return report.as_dict()


def test_open_loop_saturation(benchmark):
    rates = service_rates()
    assert len(rates) >= 3, "the ladder needs a below-knee and an above-knee point"

    def sweep():
        return [_serve_point(rate) for rate in rates]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    for rate, row in zip(rates, rows):
        row["offered_rate_target"] = rate
        print(
            f"\nservice N={service_n()} rate={rate:g}/s: "
            f"offered={row['offered']:g} goodput={row['goodput_qps']:.2f}/s "
            f"rej={row['rejection_rate']:.3f} p95={row['p95_ms']:.1f}ms "
            f"hit={row['cache_hit_ratio']:.3f}"
        )

    record = {
        "node_count": service_n(),
        "duration_s": service_duration(),
        "admission_rate": ADMISSION_RATE,
        "admission_burst": ADMISSION_BURST,
        "seconds_per_query_lookup": SERVICE_COST.seconds_per_query_lookup,
        "rows": rows,
    }
    benchmark.extra_info.update(
        {"node_count": service_n(), "rates": list(rates)}
    )
    _write_artifact("saturation", record)

    # The admission ledger conserves queries at every point: whatever was
    # offered either completed or was shed, and under the drop policy every
    # rejection is terminal.
    for row in rows:
        assert row["completed"] + row["shed"] == row["offered"], row
        assert row["shed"] == row["rejected"], row
        assert row["cache_hit_ratio"] > 0.0, row

    rejections = [row["rejection_rate"] for row in rows]
    p95s = [row["p95_ms"] for row in rows]
    goodputs = [row["goodput_qps"] for row in rows]

    # Open-loop saturation signature.  Rejection and tail latency rise
    # monotonically with offered load and strictly overall ...
    assert rejections == sorted(rejections), rejections
    assert rejections[-1] > rejections[0], rejections
    assert p95s == sorted(p95s), p95s
    assert p95s[-1] > p95s[0], p95s
    # ... while goodput's final step grows strictly slower than offered
    # load (the plateau: admission and queueing cap useful throughput) ...
    offered_gain = rows[-1]["offered"] / rows[-2]["offered"]
    goodput_gain = goodputs[-1] / goodputs[-2]
    assert goodputs == sorted(goodputs), goodputs
    assert goodput_gain < offered_gain, (goodput_gain, offered_gain)
    # ... and the cache carries a growing share of the repeated keys.
    assert rows[-1]["cache_hit_ratio"] > rows[0]["cache_hit_ratio"], rows


def test_service_backend_equivalence():
    rate = max(service_rates())
    serial = _serve_point(rate)
    sharded = _serve_point(
        rate, backend="sharded", shards=2, shard_mode="inline"
    )
    # Every service counter is an integer on simulated time, so the whole
    # SLO report — percentiles and ratios included — matches exactly.
    assert serial == sharded
    _write_artifact(
        "backend_equivalence",
        {
            "rate": rate,
            "node_count": service_n(),
            "shards": 2,
            "serial": serial,
            "identical": True,
        },
    )
    print(
        f"\nservice equivalence N={service_n()} rate={rate:g}/s: "
        f"serial == sharded(2) on all {len(serial)} report fields"
    )
