"""Provenance memory: the benchmark axis the storage tiers exist for.

The offline archive buys the paper's forensics contract — every derivation
ever made, including retracted and expired ones, stays answerable — and its
cost is memory that grows with *run length*, not network size.  This module
measures that cost and demonstrates the tiered store bounding it:

* ``test_bytes_per_derived_tuple`` — archived bytes per derived tuple as the
  node count sweeps ``REPRO_BENCH_SIZES``, memory vs tiered resident
  footprint side by side;
* ``test_resident_bytes_bounded_by_run_length`` — repeated link-retraction
  churn rounds at ``REPRO_SCALE_N`` nodes: the in-memory archive's footprint
  grows with every round while the tiered store's resident gauge stays flat
  at the hot-tier capacity (history keeps accumulating in the spill log, and
  offline tracebacks of retracted routes still answer — through spill reads).

Knobs: ``REPRO_BENCH_SIZES`` (node sweep), ``REPRO_SCALE_N`` (churn network
size, default 100), ``REPRO_BENCH_CHURN_ROUNDS`` (default 6).
"""

from __future__ import annotations

import os

import pytest

from repro.api import Network
from repro.net.events import LinkDown, LinkUp, SoftStateRefresh

from conftest import bench_sizes

#: Soft-state TTL for the churn runs: short enough that every churn round
#: decays and rebuilds the remote derived state (the growth mechanism the
#: archive pays for), long enough that convergence completes within it.
CHURN_TTL = 10.0


def scale_n() -> int:
    # Every churn round decays and rebuilds the whole network (that is the
    # point), so the default stays below the other scale tests' N: at
    # N=100 a single round costs ~1 CPU-minute.  The acceptance-level run
    # is REPRO_SCALE_N=100 (hot tier 256, see ROADMAP "Storage tiers").
    return int(os.environ.get("REPRO_SCALE_N", "48"))


def churn_rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_CHURN_ROUNDS", "3"))


def build_and_run(
    node_count: int, tmp_path, store: str, hot: int = 256, **extra
) -> Network:
    options = dict(
        topology=node_count,
        program="best-path",
        provenance="condensed",
        keep_offline_provenance=True,
        seed=0,
        **extra,
    )
    if store == "tiered":
        options.update(
            provenance_store="tiered",
            hot_tier_entries=hot,
            spill_dir=str(tmp_path / f"spill-{node_count}"),
        )
    network = Network.build(**options)
    network.run()
    return network


def archived_entries(network: Network) -> int:
    return sum(
        len(engine.offline_provenance)
        for engine in network.simulator.engines.values()
    )


def churn(network: Network, rounds: int) -> None:
    """Retract-and-restore one link per round, then decay and rebuild.

    Each round retracts a link's base tuple (cascading invalidation),
    restores it, lets the soft state decay past its TTL and fires one
    refresh round — re-deriving (and re-archiving) the network's derived
    state.  This is the run-length growth mechanism the offline archive
    pays for: archived entries scale with rounds, live state does not.
    """
    link = network.topology.links[0]
    for _ in range(rounds):
        now = network.current_time()
        network.schedule(
            LinkDown(
                time=now + 1.0,
                source=link.source,
                destination=link.destination,
                retract=True,
            )
        )
        network.run_until_idle()
        now = network.current_time()
        network.schedule(
            LinkUp(time=now + 1.0, source=link.source, destination=link.destination)
        )
        network.schedule(SoftStateRefresh(time=now + CHURN_TTL + 2.0))
        network.run_until_idle()


@pytest.mark.parametrize("node_count", bench_sizes())
def test_bytes_per_derived_tuple(benchmark, tmp_path, node_count):
    """Archived bytes per derived tuple, memory vs tiered residency."""

    def run():
        memory = build_and_run(node_count, tmp_path, "memory")
        tiered = build_and_run(node_count, tmp_path, "tiered")
        return memory, tiered

    memory, tiered = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    entries = archived_entries(memory)
    assert entries > 0
    assert archived_entries(tiered) == entries

    memory_bytes = memory.stats.summary()["provenance_bytes_resident"]
    tiered_summary = tiered.stats.summary()
    assert memory_bytes > 0
    assert tiered_summary["provenance_bytes_spilled"] > 0

    benchmark.extra_info["node_count"] = node_count
    benchmark.extra_info["derived_entries"] = entries
    benchmark.extra_info["memory_bytes_per_entry"] = memory_bytes / entries
    benchmark.extra_info["tiered_resident_bytes_per_entry"] = (
        tiered_summary["provenance_bytes_resident"] / entries
    )
    benchmark.extra_info["tiered_spilled_bytes_per_entry"] = (
        tiered_summary["provenance_bytes_spilled"] / entries
    )


def test_resident_bytes_bounded_by_run_length(benchmark, tmp_path):
    """Churn grows the in-memory archive but not the tiered resident gauge."""
    nodes = scale_n()
    rounds = churn_rounds()
    memory = build_and_run(nodes, tmp_path, "memory", default_ttl=CHURN_TTL)
    tiered = build_and_run(
        nodes, tmp_path, "tiered", hot=256, default_ttl=CHURN_TTL
    )

    baseline_memory = memory.stats.summary()["provenance_bytes_resident"]
    baseline_tiered = tiered.stats.summary()["provenance_bytes_resident"]

    def run():
        churn(memory, rounds)
        churn(tiered, rounds)

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    memory_summary = memory.stats.summary()
    tiered_summary = tiered.stats.summary()

    # The unbounded archive pays for history in memory ...
    assert memory_summary["provenance_bytes_resident"] > baseline_memory
    # ... the tiered store pays for it in the spill log: the resident gauge
    # stays within a small factor of its converged baseline (the hot tier
    # turned over, it did not grow with run length).
    assert tiered_summary["provenance_bytes_resident"] <= 2 * baseline_tiered
    assert (
        tiered_summary["provenance_bytes_spilled"]
        > tiered_summary["provenance_bytes_resident"]
    )

    # The history is still answerable: every route at the churned link's
    # source — all retracted and re-derived each round — must trace back
    # offline structurally identical to the unbounded oracle, and the
    # answers must come (at least partly) from the spill log.
    source = memory.topology.links[0].source
    reads_before = tiered.stats.summary()["spill_reads"]
    routes = sorted(memory.node(source).facts("bestPath"), key=lambda f: f.values)
    assert routes
    for target in routes:
        answer = tiered.query(target, at=source, mode="offline")
        oracle = memory.query(target, at=source, mode="offline")
        assert answer.complete and oracle.complete
        assert answer.graph.same_structure(oracle.graph), target
    assert tiered.stats.summary()["spill_reads"] > reads_before

    benchmark.extra_info["node_count"] = nodes
    benchmark.extra_info["churn_rounds"] = rounds
    benchmark.extra_info["memory_resident_bytes"] = memory_summary[
        "provenance_bytes_resident"
    ]
    benchmark.extra_info["tiered_resident_bytes"] = tiered_summary[
        "provenance_bytes_resident"
    ]
    benchmark.extra_info["tiered_spilled_bytes"] = tiered_summary[
        "provenance_bytes_spilled"
    ]
    benchmark.extra_info["spill_reads"] = tiered.stats.summary()["spill_reads"]
