"""Figure 3: query completion time for the Best-Path query.

For each configuration (NDlog, SeNDlog, SeNDlogProv) the benchmark runs the
Best-Path query over the evaluation workload and records the *simulated*
query completion time (the paper's metric) in ``extra_info``, alongside the
wall-clock time pytest-benchmark measures for the simulation itself.

The full per-N series — the actual Figure 3 data — is printed by
``test_fig3_report`` at the end of the run.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import figure3_series, render_series
from repro.harness.runner import run_network
from repro.queries.best_path import compile_best_path

from conftest import bench_sizes

CONFIGURATIONS = ("NDLog", "SeNDLog", "SeNDLogProv")
BENCH_N = bench_sizes()[-1]


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_fig3_completion_time(benchmark, configuration):
    """One Figure 3 data point per configuration at the largest benchmarked N."""
    compiled = compile_best_path()

    def run():
        return run_network(configuration, BENCH_N, seed=0, compiled=compiled)

    row = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert row.converged
    benchmark.extra_info["configuration"] = configuration
    benchmark.extra_info["node_count"] = BENCH_N
    benchmark.extra_info["simulated_completion_time_s"] = row.completion_time_s
    benchmark.extra_info["best_paths"] = row.count("bestPath")


def test_fig3_report(benchmark, evaluation_sweep, capsys):
    """Print the full Figure 3 series (completion time vs N, three configurations)."""
    series = benchmark(figure3_series, evaluation_sweep)
    text = render_series(
        series,
        "Figure 3: query completion time (s) for the Best-Path query",
        "simulated seconds to distributed fixpoint",
    )
    with capsys.disabled():
        print("\n" + text)
    # The paper's qualitative result: NDlog < SeNDlog < SeNDlogProv at every N.
    for index in range(len(series["NDLog"])):
        assert (
            series["NDLog"][index][1]
            < series["SeNDLog"][index][1]
            < series["SeNDLogProv"][index][1]
        )
