#!/usr/bin/env python
"""Determinism-invariant checker for the repro runtime.

ROADMAP.md pins the properties that make simulation runs reproducible and
the serial and sharded backends byte-identical; this tool enforces the
mechanically checkable ones over ``src/repro`` with Python's ``ast`` so a
regression fails ``make lint`` instead of surfacing as a flaky experiment.

Rules
-----
INV001  no wall-clock reads (``time.time``, ``time.monotonic``,
        ``datetime.now`` ...) inside the simulation hot path
        (``net/``, ``engine/``, ``service/``); simulated time is the only
        clock — the service plane's token buckets, cache TTLs and latency
        percentiles are all functions of it.
INV002  no unseeded randomness anywhere in ``src/repro``: module-level
        ``random.<fn>()`` calls and argument-less ``random.Random()``
        draw from process-global, seed-unknown state.
INV003  event ordering stays content-based: every event class with
        ``DELIVERY_PRIORITY`` must be ranked by an ``isinstance`` branch of
        ``event_rank``, and every ``SimulationEvent`` subclass must live in
        ``net/events.py`` where the rank function can see it.
INV004  no direct iteration over set displays / ``set(...)`` calls in
        ``net/`` or ``engine/`` unless wrapped in ``sorted(...)``; set
        order is hash-seed dependent and must never feed ``schedule()`` or
        outgoing-message construction.
INV005  no internal calls to the deprecated shims (``Simulator(...)``,
        ``run_best_path``, ``run_configuration``, ``ExperimentRow``)
        outside the modules that define them; internal code uses the
        ``Network`` facade / ``run_network``.
INV006  no unbounded module-level dict/list/set caches in ``provenance/``,
        ``engine/`` or ``service/``: an empty mutable container assigned at
        module scope
        (``_CACHE = {}``, ``x = list()`` ...) is process-global state that
        grows for the life of the interpreter, defeating the storage-tier
        residency bounds.  Put caches on instances (sized and crash-scoped)
        or audit the exception with the allow comment.

A finding on a line ending with ``# invariant: ok(INVxxx)`` is suppressed —
the comment is the audit trail for deliberate exceptions.

Usage: ``python tools/check_invariants.py [--root src/repro] [--list]``
Exit status: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

RULES: Dict[str, str] = {
    "INV001": "wall-clock read in the simulation hot path",
    "INV002": "unseeded randomness",
    "INV003": "event class escapes the content-based rank",
    "INV004": "iteration over unordered set in the hot path",
    "INV005": "internal call to a deprecated shim",
    "INV006": "unbounded module-level cache in provenance/engine/service",
}

#: Directories whose code runs inside the simulation loop.  The service
#: plane (``service/``) is hot path: admission buckets refill and cache
#: entries expire on the simulated clock, inside event handlers.
HOT_PATH_PARTS = ("net", "engine", "service")

#: Directories where module-level mutable caches defeat the storage tiers.
#: ``service/`` is here too — the query-result cache is the very thing the
#: capacity/TTL knobs bound, so a module-global memo would defeat it.
BOUNDED_STATE_PARTS = ("provenance", "engine", "service")

#: Attribute calls that read the host clock.
WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Deprecated shim -> module allowed to define (and self-reference) it.
DEPRECATED_SHIMS = {
    "Simulator": "net/simulator.py",
    "run_best_path": "harness/runner.py",
    "run_configuration": "harness/runner.py",
    "ExperimentRow": "harness/runner.py",
}

ALLOW_PATTERN = re.compile(r"#\s*invariant:\s*ok\((INV\d{3})\)")


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    column: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.column, self.rule)


def _attribute_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a plain chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_hot_path(relative: str) -> bool:
    head = relative.split("/", 1)[0]
    return head in HOT_PATH_PARTS


def _is_bounded_state_path(relative: str) -> bool:
    head = relative.split("/", 1)[0]
    return head in BOUNDED_STATE_PARTS


def _is_empty_mutable_container(value: ast.AST) -> Optional[str]:
    """Name of the container type when *value* builds an empty dict/list/set.

    Only empty containers are flagged: a non-empty display is a data table
    (fixed contents), while an empty one at module scope is almost always a
    cache waiting to grow without bound.
    """
    if isinstance(value, ast.Dict) and not value.keys:
        return "dict"
    if isinstance(value, ast.List) and not value.elts:
        return "list"
    if isinstance(value, ast.Set) and not value.elts:
        return "set"
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("dict", "list", "set")
        and not value.args
        and not value.keywords
    ):
        return value.func.id
    return None


class FileChecker(ast.NodeVisitor):
    """Per-file visitor emitting INV001 / INV002 / INV004 / INV005 findings."""

    def __init__(self, relative: str, allowed: Dict[int, Set[str]]) -> None:
        self.relative = relative
        self.allowed = allowed
        self.findings: List[Finding] = []
        self.hot = _is_hot_path(relative)
        self.bounded = _is_bounded_state_path(relative)

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if rule in self.allowed.get(line, set()):
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.relative,
                line=line,
                column=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    # -- INV006 --------------------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        if self.bounded:
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    value = statement.value
                elif isinstance(statement, ast.AnnAssign) and statement.value:
                    value = statement.value
                else:
                    continue
                container = _is_empty_mutable_container(value)
                if container is not None:
                    self._emit(
                        "INV006",
                        statement,
                        f"module-level empty {container} is an unbounded "
                        "process-global cache; hold it on an instance so the "
                        "tier capacity knobs (and crash recovery) bound it",
                    )
        self.generic_visit(node)

    # -- INV001 / INV002 / INV005 -------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if chain:
            head, tail = chain[0], chain[-1]
            if self.hot and len(chain) >= 2:
                for module, attr in WALL_CLOCK:
                    if tail == attr and module in chain[:-1]:
                        self._emit(
                            "INV001",
                            node,
                            f"{'.'.join(chain)}() reads the host clock; use "
                            "simulated time (the kernel's clock) instead",
                        )
                        break
            if head == "random" and len(chain) == 2:
                if tail == "Random":
                    if not node.args and not node.keywords:
                        self._emit(
                            "INV002",
                            node,
                            "random.Random() without a seed; pass an explicit "
                            "seed so runs are reproducible",
                        )
                elif tail not in ("seed",):
                    self._emit(
                        "INV002",
                        node,
                        f"random.{tail}() draws from the process-global RNG; "
                        "use a seeded random.Random instance",
                    )
            name = chain[-1] if len(chain) <= 2 else None
            if name in DEPRECATED_SHIMS and not self.relative.endswith(
                DEPRECATED_SHIMS[name]
            ):
                self._emit(
                    "INV005",
                    node,
                    f"call to deprecated shim {name}(); internal code uses "
                    "the Network facade / run_network",
                )
        self.generic_visit(node)

    # -- INV004 --------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self.hot:
            self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self.hot:
            self._check_iterable(node.iter)
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.AST) -> None:
        unordered: Optional[str] = None
        if isinstance(iterable, ast.Set) or isinstance(iterable, ast.SetComp):
            unordered = "a set display"
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        ):
            unordered = f"{iterable.func.id}(...)"
        elif isinstance(iterable, ast.BinOp) and isinstance(
            iterable.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            # Set algebra (a | b, a & b, a - b) over sets is the common way
            # an unordered iterable sneaks into the loop header.
            if any(
                isinstance(side, (ast.Set, ast.SetComp))
                or (
                    isinstance(side, ast.Call)
                    and isinstance(side.func, ast.Name)
                    and side.func.id in ("set", "frozenset")
                )
                for side in (iterable.left, iterable.right)
            ):
                unordered = "set algebra"
        if unordered is not None:
            self._emit(
                "INV004",
                iterable,
                f"iterating {unordered} directly; wrap it in sorted(...) so "
                "the order cannot depend on the hash seed",
            )


def _event_findings(root: Path, rel_prefix: str) -> Iterator[Finding]:
    """INV003: rank coverage inside net/events.py and subclass containment."""
    events_path = root / "net" / "events.py"
    ranked: Set[str] = set()
    delivery_classes: Set[str] = set()
    event_classes: Set[str] = {"SimulationEvent"}

    if events_path.exists():
        tree = ast.parse(events_path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
                if bases & event_classes:
                    event_classes.add(node.name)
                    for statement in node.body:
                        if (
                            isinstance(statement, ast.Assign)
                            and any(
                                isinstance(t, ast.Name) and t.id == "priority"
                                for t in statement.targets
                            )
                            and isinstance(statement.value, ast.Name)
                            and statement.value.id == "DELIVERY_PRIORITY"
                        ):
                            delivery_classes.add(node.name)
            if isinstance(node, ast.FunctionDef) and node.name == "event_rank":
                for call in ast.walk(node):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Name)
                        and call.func.id == "isinstance"
                        and len(call.args) == 2
                    ):
                        target = call.args[1]
                        names = (
                            target.elts if isinstance(target, ast.Tuple) else [target]
                        )
                        ranked.update(
                            n.id for n in names if isinstance(n, ast.Name)
                        )
        for name in sorted(delivery_classes - ranked):
            yield Finding(
                rule="INV003",
                path=f"{rel_prefix}net/events.py",
                line=1,
                column=1,
                message=(
                    f"event class {name} has DELIVERY_PRIORITY but no "
                    "isinstance branch in event_rank; its deliveries would "
                    "fall back to scheduling order, which is backend-dependent"
                ),
            )

    # SimulationEvent subclasses defined anywhere else escape the rank.
    for path in sorted(root.rglob("*.py")):
        if path == events_path:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                isinstance(base, ast.Name) and base.id in event_classes
                for base in node.bases
            ):
                yield Finding(
                    rule="INV003",
                    path=f"{rel_prefix}{path.relative_to(root).as_posix()}",
                    line=node.lineno,
                    column=node.col_offset + 1,
                    message=(
                        f"SimulationEvent subclass {node.name} defined outside "
                        "net/events.py; define it there so event_rank covers it"
                    ),
                )


def _allowed_lines(source: str) -> Dict[int, Set[str]]:
    allowed: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        for match in ALLOW_PATTERN.finditer(line):
            allowed.setdefault(number, set()).add(match.group(1))
    return allowed


def check_tree(root: Path, rel_prefix: str = "") -> List[Finding]:
    """All findings over the package tree rooted at *root*."""
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        relative = path.relative_to(root).as_posix()
        checker = FileChecker(relative, _allowed_lines(source))
        checker.relative = f"{rel_prefix}{relative}"
        checker.visit(ast.parse(source, filename=str(path)))
        findings.extend(checker.findings)
    findings.extend(_event_findings(root, rel_prefix))
    return sorted(findings, key=Finding.sort_key)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/check_invariants.py",
        description="Enforce the ROADMAP determinism invariants over src/repro.",
    )
    parser.add_argument(
        "--root",
        default="src/repro",
        help="package directory to check (default: src/repro)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the rule table and exit"
    )
    options = parser.parse_args(argv)

    if options.list:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    root = Path(options.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    try:
        findings = check_tree(root, rel_prefix=f"{root.as_posix()}/")
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} invariant violation(s)")
        return 1
    print("invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
