"""First-class network API: build, run and query provenance-aware networks.

Everything user-facing lives behind two objects:

* :class:`Network` — ``Network.build(topology=..., program=...,
  provenance="sendlog-prov", **options)`` assembles a validated network,
  ``network.run()`` drives it to the distributed fixpoint and returns a
  unified :class:`RunResult`;
* in-network provenance queries — ``network.query(key, at=node,
  mode="online" | "offline", ...)`` answers tracebacks *over the network*,
  paying per-message bytes and latency attributed to the ``query_bytes`` /
  ``query_messages`` statistics category.

``PhaseRow`` / ``ScenarioReport`` (per-phase rows of the dynamic-network
scenario scripts) and the scenario helpers are re-exported here lazily so
the harness can depend on this package without an import cycle.
"""

from repro.api.network import Network
from repro.api.options import BACKENDS, PROVENANCE_PRESETS, NetOptions, resolve_preset
from repro.api.results import RunResult
from repro.net.query import ProvenanceQuery, QueryResult

__all__ = [
    "BACKENDS",
    "Network",
    "NetOptions",
    "PROVENANCE_PRESETS",
    "PhaseRow",
    "ProvenanceQuery",
    "QueryResult",
    "RunResult",
    "ScenarioReport",
    "resolve_preset",
]

_LAZY = {"PhaseRow", "ScenarioReport"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.harness import scenarios

        return getattr(scenarios, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
