"""Validated options and provenance presets for the :class:`~repro.api.Network` facade.

The facade replaces the kwarg sprawl of assembling ``Topology`` +
``CompiledProgram`` + ``EngineConfig`` + keystore into a 13-parameter
``Simulator`` with two arguments: a **provenance preset** naming the paper
configuration (``"sendlog-prov"`` etc.) and a :class:`NetOptions` record of
everything else, validated up front with errors that name their field.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

from repro.datalog.lint import LINT_MODES
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.kernel import CostModel
from repro.net.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from repro.net.query import DEFAULT_QUERY_TIMEOUT
from repro.net.sharding import SHARD_MODES
from repro.net.transport import TRANSPORTS
from repro.provenance.pruning import MaintenanceMode, ProvenanceSampler
from repro.provenance.tiers import PROVENANCE_STORES
from repro.security.says import SaysMode
from repro.service.cache import CacheConfig
from repro.service.ratelimit import ADMISSION_POLICIES, AdmissionControl

#: The execution backends ``Network.build(backend=...)`` accepts.
BACKENDS = ("serial", "sharded")

#: Provenance presets: the paper's three evaluated configurations plus the
#: other maintained representations, keyed by kebab-case name.  Legacy
#: harness spellings (``NDLog`` / ``SeNDLog`` / ``SeNDLogProv``) resolve to
#: the same entries case-insensitively.
PROVENANCE_PRESETS: Dict[str, Tuple[SaysMode, ProvenanceMode]] = {
    "ndlog": (SaysMode.NONE, ProvenanceMode.NONE),
    "sendlog": (SaysMode.SIGNED, ProvenanceMode.NONE),
    "sendlog-prov": (SaysMode.SIGNED, ProvenanceMode.CONDENSED),
    "condensed": (SaysMode.NONE, ProvenanceMode.CONDENSED),
    "full-local": (SaysMode.NONE, ProvenanceMode.FULL_LOCAL),
    "distributed": (SaysMode.NONE, ProvenanceMode.DISTRIBUTED),
    "sendlog-distributed": (SaysMode.SIGNED, ProvenanceMode.DISTRIBUTED),
}

#: Legacy configuration names from the Section 6 harness.
_PRESET_ALIASES: Dict[str, str] = {
    "ndlog": "ndlog",
    "sendlog": "sendlog",
    "sendlogprov": "sendlog-prov",
}


def resolve_preset(name: str) -> str:
    """Canonicalize a provenance preset name; raise for unknown names."""
    if name in PROVENANCE_PRESETS:
        return name
    folded = name.lower()
    if folded in PROVENANCE_PRESETS:
        return folded
    alias = _PRESET_ALIASES.get(folded.replace("-", "").replace("_", ""))
    if alias is not None:
        return alias
    raise ValueError(
        f"unknown provenance preset {name!r}; expected one of "
        f"{sorted(PROVENANCE_PRESETS)} (legacy names NDLog / SeNDLog / "
        "SeNDLogProv are accepted too)"
    )


@dataclass(frozen=True)
class NetOptions:
    """Everything about a network run that is not topology / program / preset.

    ``None`` values for the engine-side fields mean "the preset's default";
    set them to override what the named configuration would do (for example
    ``keep_offline_provenance=True`` to archive derivations for forensics).
    """

    #: Execution backend: ``"serial"`` replays the whole network in one
    #: event loop; ``"sharded"`` partitions the topology into ``shards``
    #: groups of nodes and runs one kernel per group in parallel, with
    #: deterministic barrier synchronization — derived facts and every
    #: integer/byte statistic are identical between the two (floats agree
    #: up to summation order).
    backend: str = "serial"
    #: Shard count for ``backend="sharded"``; 0 picks one shard per
    #: available core, capped at 4 and floored at 2 — asking for the
    #: sharded backend always shards (the results do not depend on the
    #: count, only wall-clock time does).
    shards: int = 0
    #: ``"processes"`` runs each shard in a spawned worker (the parallel
    #: path); ``"inline"`` runs every shard kernel in-process — same
    #: windows, same results — for debugging and mid-run inspection.
    shard_mode: str = "processes"
    #: Pipelined shard coordination: instead of lockstep barrier windows,
    #: each shard is granted its own horizon bounded by every other shard's
    #: conservative floor, so export-empty stretches coalesce into
    #: multi-window leases and shards compute while earlier replies route.
    #: Results are byte-identical either way (a worker-side export cap
    #: falls back to strict pacing exactly when feedback could matter);
    #: the coordination ledger in ``NetworkStats.summary()`` shows the
    #: saved rounds/bytes.  Off by default — the strict barrier remains
    #: the measured baseline.
    shard_pipeline: bool = False
    #: Coordination encoding between the coordinator and shard workers:
    #: ``"binary"`` (compact deterministic frames, the default),
    #: ``"pickle"`` (legacy baseline), or ``"shm"`` (binary frames with a
    #: zero-copy shared-memory ring for large frames in process mode).
    transport: str = "binary"
    #: Wire format: one batch per destination per delta round (real-P2
    #: amortization) vs the paper's per-tuple shipping.
    batching: bool = True
    #: Engine receive path: one ``receive_batch`` call per incoming wire
    #: batch vs one ``receive`` per tuple (identical facts and stats).
    batch_receive: bool = True
    key_bits: int = 256
    max_events: int = 5_000_000
    default_latency: float = DEFAULT_LATENCY
    default_bandwidth: float = DEFAULT_BANDWIDTH
    link_relation: str = "link"
    #: Static-analysis mode applied to the program by ``Network.build``:
    #: ``"error"`` raises :class:`~repro.datalog.errors.LintError` on
    #: error-severity diagnostics (warnings stay silent), ``"warn"`` emits
    #: every diagnostic as a :class:`~repro.datalog.diagnostics.LintWarning`,
    #: ``"off"`` skips linting.
    lint: str = "error"
    #: Seconds an in-network provenance query waits on one request.
    query_timeout: float = DEFAULT_QUERY_TIMEOUT
    # -- query service plane (repro.service) ---------------------------------
    #: Per-node admission rate for service-plane query arrivals, in queries
    #: per simulated second; ``0.0`` disables admission control (every
    #: arrival is admitted).
    admission_rate: float = 0.0
    #: Token-bucket burst capacity; ``0.0`` defaults to one second of rate
    #: (at least 1 token).
    admission_burst: float = 0.0
    #: What a denied arrival does: ``"drop"`` sheds it immediately,
    #: ``"retry"`` re-schedules it up to ``admission_retries`` times after
    #: ``admission_retry_delay`` simulated seconds.
    admission_policy: str = "drop"
    admission_retries: int = 3
    admission_retry_delay: float = 0.05
    #: Arm the per-node query-result cache (memoized closure walks, epoch-
    #: and TTL-invalidated).  Off by default: caching changes the query
    #: path's CPU accounting, so runs that never opted in are unaffected.
    query_cache: bool = False
    #: Per-node cache capacity in memoized closures.
    query_cache_entries: int = 256
    #: Maximum cache-entry age in simulated seconds; ``0.0`` = no TTL bound
    #: (the provenance epoch still invalidates on every store mutation).
    query_cache_ttl: float = 0.0
    cost_model: Optional[CostModel] = None
    #: Seed used when the topology is given as a bare node count.
    seed: int = 0
    # -- soft-state dynamics (repro.net.kernel / repro.net.timers) -----------
    #: How soft state is kept alive: ``"rounds"`` (the default) relies on
    #: explicit :class:`~repro.net.events.SoftStateRefresh` events the
    #: driving code schedules; ``"wheel"`` arms a per-tuple refresh timer at
    #: each owner in a hierarchical timer wheel, re-asserting every
    #: remembered base tuple each ``refresh_interval`` as a continuous
    #: trickle (deterministic and byte-identical across backends).
    refresh_mode: str = "rounds"
    #: Seconds between one base tuple's refreshes (``refresh_mode="wheel"``).
    refresh_interval: float = 10.0
    #: Refresh-wave rate limit, tuples per simulated second per node; ``0``
    #: disables the limiter (every due timer fires immediately).
    refresh_rate: float = 0.0
    #: Token-bucket burst for the refresh-wave limiter (tuples).
    refresh_burst: float = 1.0
    # -- engine configuration overrides (None = preset default) --------------
    #: One-fixpoint deletions: maintain base-support polynomials so a
    #: retraction (or link failure) converges in a single distributed
    #: fixpoint — surviving alternatives are kept (``rederivations``), dead
    #: tuples are chased across nodes with ranked anti-delta messages —
    #: instead of waiting out ``ttl + refresh_interval`` of soft-state
    #: decay.  ``None`` defers to the preset (off).
    rederivation: Optional[bool] = None
    default_ttl: Optional[float] = None
    track_dependencies: Optional[bool] = None
    keep_online_provenance: Optional[bool] = None
    keep_offline_provenance: Optional[bool] = None
    offline_retention: Optional[float] = None
    sampler: Optional[ProvenanceSampler] = None
    maintenance_mode: Optional[MaintenanceMode] = None
    #: Offline-archive representation: ``"memory"`` (unbounded, the preset
    #: default) or ``"tiered"`` (bounded hot tier over a spill log; see
    #: ``repro/provenance/tiers.py`` and the ROADMAP "Storage tiers" section).
    provenance_store: Optional[str] = None
    #: Hot-tier capacity in archived entries (``provenance_store="tiered"``).
    hot_tier_entries: Optional[int] = None
    #: Directory for the tiered archive's per-node spill logs; ``None``
    #: defers to a per-process directory under the system tempdir.
    spill_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.shards < 0:
            raise ValueError(f"shards must be >= 0 (0 = auto), got {self.shards}")
        if self.shard_mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_mode {self.shard_mode!r}; expected one of "
                f"{SHARD_MODES}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; expected one of "
                f"{TRANSPORTS}"
            )
        if self.key_bits < 16:
            raise ValueError(f"key_bits must be >= 16, got {self.key_bits}")
        if self.max_events <= 0:
            raise ValueError(f"max_events must be positive, got {self.max_events}")
        if self.default_latency < 0:
            raise ValueError(
                f"default_latency must be >= 0, got {self.default_latency}"
            )
        if self.default_bandwidth <= 0:
            raise ValueError(
                f"default_bandwidth must be positive, got {self.default_bandwidth}"
            )
        if self.query_timeout <= 0:
            raise ValueError(
                f"query_timeout must be positive, got {self.query_timeout}"
            )
        if self.default_ttl is not None and self.default_ttl <= 0:
            raise ValueError(f"default_ttl must be positive, got {self.default_ttl}")
        if self.offline_retention is not None and self.offline_retention <= 0:
            raise ValueError(
                f"offline_retention must be positive, got {self.offline_retention}"
            )
        if self.provenance_store is not None and (
            self.provenance_store not in PROVENANCE_STORES
        ):
            raise ValueError(
                f"unknown provenance_store {self.provenance_store!r}; "
                f"expected one of {PROVENANCE_STORES}"
            )
        if self.hot_tier_entries is not None and self.hot_tier_entries < 1:
            raise ValueError(
                f"hot_tier_entries must be >= 1, got {self.hot_tier_entries}"
            )
        if self.spill_dir is not None and not self.spill_dir:
            raise ValueError("spill_dir must be a non-empty directory path")
        if not self.link_relation:
            raise ValueError("link_relation must be a non-empty relation name")
        if self.lint not in LINT_MODES:
            raise ValueError(
                f"lint must be one of {LINT_MODES}, got {self.lint!r}"
            )
        if self.admission_rate < 0:
            raise ValueError(
                f"admission_rate must be >= 0 (0 disables admission "
                f"control), got {self.admission_rate}"
            )
        if self.admission_burst < 0:
            raise ValueError(
                f"admission_burst must be >= 0 (0 = one second of rate), "
                f"got {self.admission_burst}"
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission_policy {self.admission_policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if self.admission_retries < 0:
            raise ValueError(
                f"admission_retries must be >= 0, got {self.admission_retries}"
            )
        if self.admission_retry_delay <= 0:
            raise ValueError(
                f"admission_retry_delay must be positive, got "
                f"{self.admission_retry_delay}"
            )
        if self.query_cache_entries < 1:
            raise ValueError(
                f"query_cache_entries must be >= 1, got "
                f"{self.query_cache_entries}"
            )
        if self.query_cache_ttl < 0:
            raise ValueError(
                f"query_cache_ttl must be >= 0 (0 = no TTL bound), got "
                f"{self.query_cache_ttl}"
            )
        if self.refresh_mode not in ("rounds", "wheel"):
            raise ValueError(
                f"unknown refresh_mode {self.refresh_mode!r}; expected "
                "'rounds' or 'wheel'"
            )
        if self.refresh_interval <= 0:
            raise ValueError(
                f"refresh_interval must be positive, got {self.refresh_interval}"
            )
        if self.refresh_rate < 0:
            raise ValueError(
                f"refresh_rate must be >= 0 (0 disables the refresh-wave "
                f"limiter), got {self.refresh_rate}"
            )
        if self.refresh_burst <= 0:
            raise ValueError(
                f"refresh_burst must be positive, got {self.refresh_burst}"
            )

    def resolved_shards(self) -> int:
        """The effective shard count: explicit, or one per core, clamped to
        [2, 4] — choosing ``backend="sharded"`` always actually shards.

        The sharded backend produces identical derived facts and integer
        statistics for *any* shard count, so auto-sizing to the machine is
        safe — it changes wall-clock time, never results.
        """
        if self.shards:
            return self.shards
        return max(2, min(4, os.cpu_count() or 1))

    def service_admission(self) -> Optional[AdmissionControl]:
        """The per-node admission controller these options describe, or
        ``None`` when ``admission_rate == 0`` (every arrival admitted)."""
        if self.admission_rate <= 0:
            return None
        return AdmissionControl(
            rate=self.admission_rate,
            burst=self.admission_burst,
            policy=self.admission_policy,
            retries=self.admission_retries,
            retry_delay=self.admission_retry_delay,
        )

    def service_cache(self) -> Optional[CacheConfig]:
        """The per-node query-result cache config, or ``None`` when the
        cache is not armed."""
        if not self.query_cache:
            return None
        return CacheConfig(
            capacity=self.query_cache_entries, ttl=self.query_cache_ttl
        )

    def merged(self, **overrides: object) -> "NetOptions":
        """A copy with *overrides* applied; unknown names raise with the list
        of valid fields (this is what catches facade typos early)."""
        if not overrides:
            return self
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown NetOptions field(s) {unknown}; valid fields: "
                f"{sorted(valid)}"
            )
        return replace(self, **overrides)

    def engine_overrides(self) -> Dict[str, object]:
        """The engine-side fields that were explicitly set (not None).

        ``Network.build(config=...)`` refuses to proceed when any of these
        are set: a hand-built :class:`EngineConfig` replaces the preset
        wholesale, so silently dropping the overrides would contradict the
        validated-options contract.
        """
        fields_ = (
            "rederivation",
            "default_ttl",
            "track_dependencies",
            "keep_online_provenance",
            "keep_offline_provenance",
            "offline_retention",
            "sampler",
            "maintenance_mode",
            "provenance_store",
            "hot_tier_entries",
            "spill_dir",
        )
        return {
            name: getattr(self, name)
            for name in fields_
            if getattr(self, name) is not None
        }

    def engine_config(self, provenance: str) -> EngineConfig:
        """The :class:`EngineConfig` for preset *provenance* plus overrides."""
        says_mode, provenance_mode = PROVENANCE_PRESETS[resolve_preset(provenance)]
        config = EngineConfig(says_mode=says_mode, provenance_mode=provenance_mode)
        if self.rederivation is not None:
            config.rederivation = self.rederivation
        if self.default_ttl is not None:
            config.default_ttl = self.default_ttl
        if self.track_dependencies is not None:
            config.track_dependencies = self.track_dependencies
        if self.keep_online_provenance is not None:
            config.keep_online_provenance = self.keep_online_provenance
        if self.keep_offline_provenance is not None:
            config.keep_offline_provenance = self.keep_offline_provenance
        if self.offline_retention is not None:
            config.offline_retention = self.offline_retention
        if self.sampler is not None:
            config.sampler = self.sampler
        if self.maintenance_mode is not None:
            config.maintenance_mode = self.maintenance_mode
        if self.provenance_store is not None:
            config.provenance_store = self.provenance_store
        if self.hot_tier_entries is not None:
            config.hot_tier_entries = self.hot_tier_entries
        if self.spill_dir is not None:
            config.spill_dir = self.spill_dir
        return config
