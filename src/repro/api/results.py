"""Unified result objects shared by the facade, harness, scenarios and benchmarks.

A :class:`RunResult` is what every way of running a network returns — the
facade's ``network.run()``, the harness sweeps, the benchmark helpers.  It
carries the raw simulation outcome (stats, per-node engines, convergence)
plus the sweep coordinates (configuration, node count, seed) and exposes
every headline metric as a flat attribute, so tables and sweep aggregation
read ``row.completion_time_s`` regardless of which entry point produced the
row.  Scenario phases report :class:`~repro.harness.scenarios.PhaseRow`
objects, re-exported beside this class from :mod:`repro.api`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.node_engine import NodeEngine, collect_facts, facts_by_node
from repro.engine.tuples import Fact
from repro.net.address import Address
from repro.net.stats import NetworkStats
from repro.service.slo import ServiceLevelReport, service_report


@dataclass
class RunResult:
    """Outcome of one network run, with its sweep coordinates."""

    stats: NetworkStats
    engines: Dict[Address, NodeEngine]
    converged: bool
    events_processed: int
    #: Provenance preset (or legacy configuration name) the run used.
    configuration: str = ""
    node_count: int = 0
    seed: int = 0
    #: Service-plane serve window (``Network.serve``): arrivals the
    #: workload generator scheduled and the window's simulated length.
    #: Zero for plain ``run()`` results.
    offered: int = 0
    serve_duration: float = 0.0

    # -- stored facts ----------------------------------------------------------

    def facts(self, relation: str) -> Dict[Address, Tuple[Fact, ...]]:
        """All stored facts of *relation*, per node."""
        return facts_by_node(self.engines, relation)

    def all_facts(self, relation: str) -> Tuple[Fact, ...]:
        return collect_facts(self.engines, relation)

    def count(self, relation: str) -> int:
        """Global stored-tuple count of *relation* across all nodes."""
        return sum(len(engine.facts(relation)) for engine in self.engines.values())

    # -- headline metrics (flat, for sweep tables) -----------------------------

    @property
    def completion_time_s(self) -> float:
        return self.stats.completion_time

    @property
    def bandwidth_mb(self) -> float:
        return self.stats.total_bandwidth_mb()

    @property
    def total_messages(self) -> int:
        return self.stats.total_messages

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes()

    @property
    def security_bytes(self) -> int:
        return self.stats.security_overhead_bytes()

    @property
    def provenance_bytes(self) -> int:
        return self.stats.provenance_overhead_bytes()

    @property
    def query_bytes(self) -> int:
        return self.stats.total_query_bytes()

    @property
    def query_messages(self) -> int:
        return self.stats.total_query_messages()

    @property
    def batches_sent(self) -> int:
        return self.stats.total_batches()

    @property
    def tuples_sent(self) -> int:
        return self.stats.total_tuples_sent()

    @property
    def facts_derived(self) -> int:
        return self.stats.total_facts_derived()

    # -- service-plane metrics (Network.serve) ---------------------------------

    @property
    def queries_completed(self) -> int:
        return self.stats.total_queries_completed()

    @property
    def queries_rejected(self) -> int:
        return self.stats.total_queries_rejected()

    @property
    def queries_shed(self) -> int:
        return self.stats.total_queries_shed()

    @property
    def cache_hit_ratio(self) -> float:
        return self.stats.cache_hit_ratio()

    @property
    def query_p50_ms(self) -> float:
        return self.stats.query_latency_ms(0.50)

    @property
    def query_p95_ms(self) -> float:
        return self.stats.query_latency_ms(0.95)

    @property
    def query_p99_ms(self) -> float:
        return self.stats.query_latency_ms(0.99)

    def service(self) -> Optional[ServiceLevelReport]:
        """The SLO report for this result's serve window, or ``None`` for a
        result that did not come from :meth:`Network.serve`."""
        if not self.offered:
            return None
        return service_report(self.stats, self.serve_duration, self.offered)

    def summary(self) -> Dict[str, float]:
        """The stats summary dictionary (query traffic itemized)."""
        return self.stats.summary()

    def as_dict(self) -> Dict[str, object]:
        """One flat row: sweep coordinates plus every summary metric."""
        row: Dict[str, object] = {
            "configuration": self.configuration,
            "node_count": self.node_count,
            "seed": self.seed,
            "converged": self.converged,
            "events": self.events_processed,
        }
        row.update(self.stats.summary())
        report = self.service()
        if report is not None:
            for key, value in report.as_dict().items():
                row[f"service_{key}"] = value
        return row
