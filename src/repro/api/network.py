"""The :class:`Network` facade: one object that builds, runs and queries.

Before this facade, a run meant hand-wiring ``Topology`` +
``CompiledProgram`` + ``EngineConfig`` + keystore into a many-parameter
``Simulator``, and every provenance question went out-of-band through
Python-level resolvers.  ``Network.build`` collapses construction to::

    from repro.api import Network

    network = Network.build(topology=20, program="best-path",
                            provenance="sendlog-prov")
    result = network.run()                 # RunResult
    target = result.all_facts("bestPath")[0]
    answer = network.query(target, at=target.values[0])   # pays real messages

and ``network.query`` is the paper's claim made executable: provenance is
network state, queried *over the network*, with the query traffic itemized
in the same statistics as maintenance traffic.

The facade deliberately stays a thin veneer over the simulator — every
simulator attribute is reachable by delegation, so scenario scripts and
tests written against ``Simulator`` keep working when handed a ``Network``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.datalog import check_program, localize_program, parse_program
from repro.datalog.planner import CompiledProgram, compile_program
from repro.engine.node_engine import EngineConfig, collect_facts, facts_by_node
from repro.engine.tuples import Fact, FactKey, as_fact_key
from repro.net.address import Address
from repro.net.events import FactInjection, SimulationEvent
from repro.net.kernel import SimulationKernel, SimulationResult
from repro.net.query import PendingQuery, ProvenanceQuery, QueryResult
from repro.net.sharding import ShardedSimulator
from repro.net.simulator import Simulator
from repro.net.topology import Topology, random_topology
from repro.queries import PROGRAMS, compile_named
from repro.service.workload import QueryWorkload
from repro.api.options import NetOptions, resolve_preset
from repro.api.results import RunResult

#: The workload shape of the paper's evaluation (average out-degree three),
#: used when the topology is given as a bare node count.
DEFAULT_AVERAGE_OUTDEGREE = 3.0

TopologyLike = Union[Topology, int]
ProgramLike = Union[CompiledProgram, str]


def _resolve_topology(topology: TopologyLike, seed: int) -> Topology:
    if isinstance(topology, Topology):
        return topology
    if isinstance(topology, int):
        if topology < 2:
            raise ValueError(f"a network needs at least 2 nodes, got {topology}")
        return random_topology(
            node_count=topology,
            average_outdegree=DEFAULT_AVERAGE_OUTDEGREE,
            seed=seed,
        )
    raise TypeError(
        f"topology must be a Topology or a node count, got {type(topology).__name__}"
    )


def _resolve_program(
    program: ProgramLike,
    lint: str = "error",
    link_relation: str = "link",
) -> CompiledProgram:
    """Resolve *program* to a :class:`CompiledProgram`, linting on the way.

    Source text is linted pre-localization (diagnostics carry the author's
    line/column); named and pre-compiled programs are linted in their
    post-localization form, which the analyzer equally accepts.
    """
    if isinstance(program, CompiledProgram):
        check_program(
            program.program, lint, link_relation=link_relation
        )
        return program
    if isinstance(program, str):
        if ":-" in program or "materialize" in program:
            # NDlog source text: parse, lint, localize, compile.
            parsed = parse_program(program)
            check_program(parsed, lint, link_relation=link_relation)
            return compile_program(localize_program(parsed))
        compiled = compile_named(program)
        check_program(
            compiled.program, lint, link_relation=link_relation
        )
        return compiled
    raise TypeError(
        f"program must be a CompiledProgram, a registered name "
        f"({sorted(PROGRAMS)}) or NDlog source text, got {type(program).__name__}"
    )


SimulatorLike = Union[Simulator, SimulationKernel, ShardedSimulator]


class Network:
    """A running declarative network: topology + program + provenance preset."""

    def __init__(
        self,
        simulator: SimulatorLike,
        configuration: str = "custom",
        options: Optional[NetOptions] = None,
    ) -> None:
        self.simulator = simulator
        self.configuration = configuration
        self.options = options or NetOptions()

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        topology: TopologyLike,
        program: ProgramLike = "best-path",
        provenance: str = "sendlog-prov",
        *,
        config: Optional[EngineConfig] = None,
        options: Optional[NetOptions] = None,
        **overrides: object,
    ) -> "Network":
        """Assemble a network from high-level parts.

        ``topology`` is a :class:`Topology` or a node count (the paper's
        random workload shape); ``program`` a registered name, NDlog source
        text or a :class:`CompiledProgram`; ``provenance`` a preset from
        :data:`~repro.api.options.PROVENANCE_PRESETS`.  Extra keyword
        arguments override :class:`NetOptions` fields; pass ``config`` to
        substitute a hand-built :class:`EngineConfig` for the preset — in
        that case ``provenance`` is ignored and engine-side option
        overrides are rejected (set them on the config itself).

        The execution backend is an option like any other:
        ``backend="serial"`` (the default) replays the run in one event
        loop; ``backend="sharded", shards=K`` partitions the topology into
        K parallel per-shard kernels with deterministic cross-shard
        synchronization — derived facts and all integer/byte statistics
        are identical between backends (floats up to summation order), so
        sharding is purely a wall-clock choice.  ``shard_mode="inline"``
        keeps the shard kernels in-process for debugging.

        The program is statically analyzed before compilation according to
        ``lint`` (``"error"`` — the default — raises
        :class:`~repro.datalog.errors.LintError` on error-severity
        diagnostics; ``"warn"`` turns every diagnostic into a
        :class:`~repro.datalog.diagnostics.LintWarning`; ``"off"`` skips
        the analyzer).
        """
        merged = (options or NetOptions()).merged(**overrides)
        if config is not None:
            ignored = merged.engine_overrides()
            if ignored:
                raise ValueError(
                    "config= replaces the provenance preset wholesale, so "
                    f"NetOptions engine override(s) {sorted(ignored)} would "
                    "be silently ignored; set them on the EngineConfig "
                    "instead"
                )
            configuration = "custom"
            engine_config = config
        else:
            configuration = resolve_preset(provenance)
            engine_config = merged.engine_config(provenance)
        resolved = _resolve_topology(topology, merged.seed)
        compiled = _resolve_program(
            program, lint=merged.lint, link_relation=merged.link_relation
        )
        shared = dict(
            topology=resolved,
            compiled=compiled,
            config=engine_config,
            cost_model=merged.cost_model,
            key_bits=merged.key_bits,
            max_events=merged.max_events,
            default_latency=merged.default_latency,
            default_bandwidth=merged.default_bandwidth,
            batching=merged.batching,
            batch_receive=merged.batch_receive,
            link_relation=merged.link_relation,
            query_timeout=merged.query_timeout,
            admission=merged.service_admission(),
            query_cache=merged.service_cache(),
            refresh_mode=merged.refresh_mode,
            refresh_interval=merged.refresh_interval,
            refresh_rate=merged.refresh_rate,
            refresh_burst=merged.refresh_burst,
        )
        if merged.backend == "sharded":
            simulator = ShardedSimulator(
                shards=merged.resolved_shards(),
                shard_mode=merged.shard_mode,
                shard_seed=merged.seed,
                shard_pipeline=merged.shard_pipeline,
                transport=merged.transport,
                **shared,
            )
        else:
            simulator = SimulationKernel(**shared)
        return cls(simulator, configuration=configuration, options=merged)

    @classmethod
    def from_simulator(
        cls, simulator: SimulatorLike, configuration: str = "custom"
    ) -> "Network":
        """Wrap an existing simulator or kernel (migration path for
        hand-built runs; sharded coordinators wrap the same way)."""
        return cls(simulator, configuration=configuration)

    # -- delegation ---------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self.simulator.topology

    @property
    def engines(self):
        return self.simulator.engines

    @property
    def stats(self):
        # The serial kernel holds its engines in-process: refresh the
        # storage-tier gauges so a mid-run read matches what the sharded
        # coordinator's stats request would report.
        refresh = getattr(self.simulator, "refresh_provenance_stats", None)
        if refresh is not None:
            refresh()
        return self.simulator.stats

    @property
    def scheduler(self):
        return self.simulator.scheduler

    @property
    def config(self) -> EngineConfig:
        return self.simulator.config

    @property
    def node_count(self) -> int:
        return self.simulator.topology.node_count

    def node(self, address: Address):
        """The per-node engine at *address*."""
        return self.simulator.engines[address]

    def __getattr__(self, name: str):
        # Everything else — schedule, run_until_idle, live_base_facts,
        # link_is_up, ... — is the simulator's surface; the facade adds,
        # it does not hide.
        return getattr(self.simulator, name)

    # -- workload -----------------------------------------------------------------

    def base_facts(self) -> Dict[Address, List[Fact]]:
        """The link base tuples implied by the topology, shaped for the program.

        Delegates to :meth:`Simulator.link_facts`, which consults the
        compiled catalog for the link relation's arity — so the facade's
        default workload and a bare ``Simulator.run()`` inject the same
        tuples for the same program.
        """
        return self.simulator.link_facts()

    # -- running ------------------------------------------------------------------

    def run(
        self,
        base_facts: Optional[Dict[Address, List[Fact]]] = None,
        start_time: float = 0.0,
    ) -> RunResult:
        """Inject base facts, run to the distributed fixpoint, return the row."""
        injected = base_facts if base_facts is not None else self.base_facts()
        outcome = self.simulator.run(injected, start_time=start_time)
        return self._wrap(outcome)

    def finish(self, converged: bool = True) -> RunResult:
        """Close the books after phase-structured runs (see ``schedule``)."""
        return self._wrap(self.simulator.finish(converged))

    def serve(
        self,
        workload: QueryWorkload,
        base_facts: Optional[Dict[Address, List[Fact]]] = None,
        *,
        converge: bool = True,
        start_time: float = 0.0,
    ) -> RunResult:
        """Converge the network, then hold it open under *workload*'s queries.

        The serve window opens at the converged network's current simulated
        time; arrivals, admission decisions, cache probes and closed-loop
        follow-ups all play out as first-class simulation events interleaved
        with soft-state refreshes — on either backend, with byte-identical
        integer counters.  The returned :class:`RunResult` carries the
        offered-arrival count and window length, so ``result.service()``
        yields the SLO report (goodput vs offered rate, p50/p95/p99 latency,
        rejection and cache ratios).

        Pass ``converge=False`` to serve an already-running network (base
        facts injected earlier via :meth:`run` phases or :meth:`schedule`).
        """
        if converge:
            injected = base_facts if base_facts is not None else self.base_facts()
            for address, facts in injected.items():
                self.simulator.schedule(
                    FactInjection(
                        time=start_time, address=address, facts=tuple(facts)
                    )
                )
            self.simulator.run_until_idle()
        start = self.simulator.current_time()
        offered = self.simulator.serve(workload, start=start)
        converged = self.simulator.run_until_idle()
        result = self._wrap(self.simulator.finish(converged))
        result.offered = offered
        result.serve_duration = workload.duration
        return result

    def run_scenario(self, scenario):
        """Play a declarative scenario script on this network."""
        from repro.harness.scenarios import run_scenario

        return run_scenario(scenario, self)

    def schedule(self, event: SimulationEvent) -> None:
        self.simulator.schedule(event)

    def run_until_idle(self) -> bool:
        return self.simulator.run_until_idle()

    def _wrap(self, outcome: SimulationResult) -> RunResult:
        return RunResult(
            stats=outcome.stats,
            engines=outcome.engines,
            converged=outcome.converged,
            events_processed=outcome.events_processed,
            configuration=self.configuration,
            node_count=self.simulator.topology.node_count,
            seed=self.options.seed,
        )

    # -- provenance queries --------------------------------------------------------

    def query(
        self,
        root: Union[Fact, FactKey],
        at: Optional[Address] = None,
        mode: str = "online",
        condensed: bool = False,
        authenticated: bool = False,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Ask the network where a tuple came from — paying wire costs.

        The traceback compiles into ``QueryRequest`` / ``QueryResponse``
        events on the simulator's scheduler; pointer chasing across nodes
        ships real messages (serialized per link, paying bytes and latency,
        lost on downed links and crashed nodes) and is attributed to the
        ``query_bytes`` / ``query_messages`` statistics category.  When
        ``at`` is omitted, a :class:`Fact` root is queried at its origin.
        """
        if at is None:
            if isinstance(root, Fact) and root.origin is not None:
                at = root.origin
            else:
                raise ValueError(
                    "specify at=<node>: a bare fact key does not say which "
                    "node is asking"
                )
        return self.simulator.query(
            root,
            at=at,
            mode=mode,
            condensed=condensed,
            authenticated=authenticated,
            timeout=timeout,
        )

    def issue_query(
        self, query: ProvenanceQuery, now: Optional[float] = None
    ) -> PendingQuery:
        """Schedule a query without draining the event loop (mid-scenario use)."""
        return self.simulator.issue_query(query, now=now)

    def legacy_traceback(self, root: Union[Fact, FactKey], at: Address):
        """The zero-cost oracle: the same traceback resolved out-of-band.

        Walks the distributed stores through direct Python calls (no
        simulated messages), exactly like pre-facade code did.  Kept for
        validation — on static topologies :meth:`query` must reconstruct a
        structurally identical graph.
        """
        from repro.provenance.distributed import traceback

        key = as_fact_key(root)
        stores = {
            address: engine.distributed_provenance
            for address, engine in self.simulator.engines.items()
        }
        return traceback(key, at, stores.get)

    # -- inspection ----------------------------------------------------------------

    def facts(self, relation: str) -> Dict[Address, Tuple[Fact, ...]]:
        return facts_by_node(self.simulator.engines, relation)

    def all_facts(self, relation: str) -> Tuple[Fact, ...]:
        return collect_facts(self.simulator.engines, relation)

    def __repr__(self) -> str:
        return (
            f"Network(nodes={self.simulator.topology.node_count}, "
            f"configuration={self.configuration!r})"
        )
