"""Trust management over provenance (Section 3, Section 4.4 / 4.5).

The Orchestra scenario: a node receiving an update examines the update's
provenance and the trust it places in the principals that appear there, and
accepts or rejects the update accordingly.  Three policy families from the
paper are supported:

* **source-set policies** — accept iff some derivation rests entirely on
  trusted principals (this is exactly what condensed provenance preserves);
* **security-level policies** — accept iff the derivation's trust level
  (max-over-alternatives of min-over-joins of principal levels) reaches a
  threshold;
* **vote policies** — accept iff at least ``K`` distinct principals assert
  the update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from repro.engine.tuples import Fact
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import ProvenanceExpression
from repro.provenance.quantify import count_derivations, trust_level, vote_principals
from repro.security.principal import PrincipalRegistry

ProvenanceLike = Union[CondensedProvenance, ProvenanceExpression]


@dataclass(frozen=True)
class TrustPolicy:
    """A trust-management policy.

    Any combination of the three criteria may be set; an update is accepted
    only when every configured criterion passes.
    """

    trusted_principals: Optional[FrozenSet[str]] = None
    minimum_level: Optional[int] = None
    minimum_votes: Optional[int] = None

    @staticmethod
    def trust_sources(*principals: str) -> "TrustPolicy":
        return TrustPolicy(trusted_principals=frozenset(principals))

    @staticmethod
    def require_level(minimum_level: int) -> "TrustPolicy":
        return TrustPolicy(minimum_level=minimum_level)

    @staticmethod
    def require_votes(minimum_votes: int) -> "TrustPolicy":
        return TrustPolicy(minimum_votes=minimum_votes)


@dataclass(frozen=True)
class TrustDecision:
    """The outcome of evaluating one update against a policy."""

    accepted: bool
    reasons: Tuple[str, ...]
    trust_level: Optional[float] = None
    votes: Optional[int] = None
    derivations: Optional[int] = None


class TrustManager:
    """Evaluates incoming updates against trust policies using their provenance."""

    def __init__(
        self,
        policy: TrustPolicy,
        registry: Optional[PrincipalRegistry] = None,
        default_level: int = 0,
    ) -> None:
        self.policy = policy
        self.registry = registry or PrincipalRegistry()
        self.default_level = default_level
        self.accepted = 0
        self.rejected = 0

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, provenance: ProvenanceLike) -> TrustDecision:
        """Decide whether an update with *provenance* should be accepted."""
        # The raw (uncondensed) expression is kept: condensation does not
        # change source-set acceptability, but absorbed monomials still name
        # principals that count towards votes and levels.
        annotation = (
            provenance
            if isinstance(provenance, CondensedProvenance)
            else CondensedProvenance(expression=provenance)
        )
        reasons: list[str] = []
        accepted = True

        level: Optional[float] = None
        votes: Optional[int] = None

        if self.policy.trusted_principals is not None:
            if annotation.acceptable(self.policy.trusted_principals):
                reasons.append("a derivation rests entirely on trusted principals")
            else:
                accepted = False
                reasons.append(
                    "no derivation is supported by the trusted principal set "
                    f"{sorted(self.policy.trusted_principals)}"
                )

        if self.policy.minimum_level is not None:
            level = trust_level(
                annotation,
                {name: self.registry.security_level(name) for name in annotation.sources()},
                default_level=self.default_level,
            )
            if level >= self.policy.minimum_level:
                reasons.append(
                    f"trust level {level} meets the minimum {self.policy.minimum_level}"
                )
            else:
                accepted = False
                reasons.append(
                    f"trust level {level} is below the minimum {self.policy.minimum_level}"
                )

        if self.policy.minimum_votes is not None:
            votes = vote_principals(annotation)
            if votes >= self.policy.minimum_votes:
                reasons.append(
                    f"{votes} principals assert the update (minimum {self.policy.minimum_votes})"
                )
            else:
                accepted = False
                reasons.append(
                    f"only {votes} principals assert the update "
                    f"(minimum {self.policy.minimum_votes})"
                )

        decision = TrustDecision(
            accepted=accepted,
            reasons=tuple(reasons),
            trust_level=level,
            votes=votes,
            derivations=count_derivations(annotation),
        )
        if accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        return decision

    def evaluate_over_network(
        self,
        network,
        update: Fact,
        at: Optional[str] = None,
        authenticated: bool = False,
    ) -> Tuple[TrustDecision, object]:
        """Evaluate an update whose provenance is fetched *over the network*.

        Orchestra-style trust decisions need the update's provenance; here
        the deciding node asks for it with
        ``network.query(update, condensed=True)`` — paying query bytes and
        latency, and optionally demanding signed responses
        (``authenticated=True``, Section 4.3 applied to the query plane).
        Returns the :class:`TrustDecision` plus the underlying
        :class:`~repro.net.query.QueryResult` with the costs; an incomplete
        query (a node down mid-traceback) falls back to whatever partial
        graph was reconstructed.
        """
        where = at if at is not None else update.origin
        result = network.query(
            update, at=where, condensed=True, authenticated=authenticated
        )
        annotation = result.condensed
        if annotation is None:
            annotation = result.graph.to_condensed(update.key())
        return self.evaluate(annotation), result

    def filter_updates(
        self, updates: Iterable[Tuple[Fact, ProvenanceLike]]
    ) -> Tuple[Tuple[Fact, TrustDecision], ...]:
        """Evaluate a stream of (update, provenance) pairs; return all decisions."""
        return tuple((fact, self.evaluate(provenance)) for fact, provenance in updates)

    def acceptance_rate(self) -> float:
        total = self.accepted + self.rejected
        return self.accepted / total if total else 0.0
