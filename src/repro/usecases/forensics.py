"""Network forensics over offline provenance (Section 3).

Forensics needs *historical* data: the paper frames traceback — determining
where packets or updates originated without trusting unauthenticated headers
— as a provenance query over state that may have long expired, which is what
the offline archive retains.

:class:`ForensicInvestigator` answers the questions that the traceback
literature (IP traceback, ForNet, Time Machine) asks, over one or more
nodes' offline archives: where did this tuple originate, which nodes did it
traverse, what did a given principal inject during a time window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.engine.tuples import Fact, FactKey, as_fact_key
from repro.provenance.graph import DerivationGraph
from repro.provenance.store import OfflineProvenanceArchive, ProvenanceEntry


@dataclass(frozen=True)
class TracebackReport:
    """The answer to one forensic traceback query."""

    target: FactKey
    origins: Tuple[FactKey, ...]
    nodes_traversed: Tuple[str, ...]
    rules_applied: Tuple[str, ...]
    derivation_depth: int
    graph: DerivationGraph

    @property
    def found(self) -> bool:
        return bool(self.nodes_traversed) or bool(self.origins)


@dataclass(frozen=True)
class LinkFailureImpact:
    """The archived blast radius of one failed directed link."""

    link: Tuple[str, str]
    #: The archived base ``link`` tuples carried by the failed link.
    base_keys: Tuple[FactKey, ...]
    #: Every archived tuple whose derivation (transitively) used them.
    affected: Tuple[FactKey, ...]
    #: Affected tuple counts per relation.
    by_relation: Dict[str, int]

    @property
    def found(self) -> bool:
        return bool(self.base_keys)


class ForensicInvestigator:
    """Cross-node forensic queries over offline provenance archives."""

    def __init__(self, archives: Mapping[str, OfflineProvenanceArchive]) -> None:
        self._archives = dict(archives)

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def from_engines(cls, engines: Mapping[str, object]) -> "ForensicInvestigator":
        """Build an investigator from a simulation's node engines."""
        archives = {
            address: engine.offline_provenance for address, engine in engines.items()
        }
        return cls(archives)

    @classmethod
    def from_network(cls, network) -> "ForensicInvestigator":
        """Build an investigator from a :class:`repro.api.Network` (or run result).

        This is the out-of-band path: the investigator reads every archive
        directly, costing zero simulated messages.  For the in-band
        alternative — the same question asked *over* the network, paying
        query traffic — see :func:`traceback_over_network`.
        """
        return cls.from_engines(network.engines)

    # -- queries -----------------------------------------------------------------------

    def _all_entries(self) -> List[ProvenanceEntry]:
        entries: List[ProvenanceEntry] = []
        for archive in self._archives.values():
            entries.extend(archive.entries())
        return entries

    def traceback(self, target: FactKey) -> TracebackReport:
        """Reconstruct where *target* came from, across all archives."""
        by_key: Dict[FactKey, List[ProvenanceEntry]] = {}
        for entry in self._all_entries():
            by_key.setdefault(entry.key, []).append(entry)

        graph = DerivationGraph()
        origins: List[FactKey] = []
        nodes: List[str] = []
        rules: List[str] = []
        depth = 0

        seen: set = set()
        frontier: List[Tuple[FactKey, int]] = [(target, 0)]
        while frontier:
            key, level = frontier.pop(0)
            if key in seen:
                continue
            seen.add(key)
            depth = max(depth, level)
            entries = by_key.get(key)
            if not entries:
                origins.append(key)
                continue
            for entry in entries:
                if entry.node and entry.node not in nodes:
                    nodes.append(entry.node)
                if entry.rule_label not in rules:
                    rules.append(entry.rule_label)
                from repro.engine.tuples import Fact

                graph.add_derivation(
                    output=Fact(relation=key[0], values=key[1]),
                    rule_label=entry.rule_label,
                    antecedents=[
                        Fact(relation=k[0], values=k[1]) for k in entry.antecedent_keys
                    ],
                    location=entry.node,
                    timestamp=entry.timestamp,
                )
                for antecedent in entry.antecedent_keys:
                    frontier.append((antecedent, level + 1))

        return TracebackReport(
            target=target,
            origins=tuple(sorted(origins)),
            nodes_traversed=tuple(nodes),
            rules_applied=tuple(rules),
            derivation_depth=depth,
            graph=graph,
        )

    def activity_of(self, principal: str, start: float, end: float) -> Tuple[ProvenanceEntry, ...]:
        """Everything derived at *principal* within [start, end] (call-detail style)."""
        archive = self._archives.get(principal)
        if archive is None:
            return ()
        return archive.entries_between(start, end)

    def _forward_index(self) -> Dict[FactKey, List[FactKey]]:
        """Antecedent -> derived adjacency over every archived derivation."""
        forward: Dict[FactKey, List[FactKey]] = {}
        for entry in self._all_entries():
            for antecedent in entry.antecedent_keys:
                forward.setdefault(antecedent, []).append(entry.key)
        return forward

    @staticmethod
    def _downstream(
        forward: Mapping[FactKey, List[FactKey]], roots: Iterable[FactKey]
    ) -> Tuple[FactKey, ...]:
        affected: List[FactKey] = []
        seen: set = set()
        frontier = deque(roots)
        while frontier:
            key = frontier.popleft()
            for dependent in forward.get(key, ()):
                if dependent in seen:
                    continue
                seen.add(dependent)
                affected.append(dependent)
                frontier.append(dependent)
        return tuple(affected)

    def tuples_depending_on(self, base: FactKey) -> Tuple[FactKey, ...]:
        """Every archived tuple whose derivation (transitively) used *base*.

        This is the "which routes did the compromised link influence"
        question: a forward traversal of the archived derivations.
        """
        return self._downstream(self._forward_index(), [base])

    def link_failure_impact(
        self, source: str, destination: str, link_relation: str = "link"
    ) -> "LinkFailureImpact":
        """Post-mortem of a failed link: everything it ever influenced.

        Retraction invalidates the *queryable* provenance of the tuples a
        failed link supported, but the offline archives keep the historical
        record — so after a link-failure scenario an operator can still ask
        which routes the dead link carried, even though the live network has
        rerouted and no current tuple depends on it any more.

        *link_relation* names the base edge relation (it matches the
        simulator's ``link_relation`` parameter).  ``found`` on the result
        means the archives recorded at least one derivation that consumed
        the link — a link that influenced nothing reports an empty impact.
        """
        forward = self._forward_index()
        base_keys = sorted(
            key
            for key in forward
            if key[0] == link_relation
            and len(key[1]) >= 2
            and key[1][0] == source
            and key[1][1] == destination
        )
        affected = self._downstream(forward, base_keys)
        by_relation: Dict[str, int] = {}
        for key in affected:
            by_relation[key[0]] = by_relation.get(key[0], 0) + 1
        return LinkFailureImpact(
            link=(source, destination),
            base_keys=tuple(base_keys),
            affected=affected,
            by_relation=by_relation,
        )

    def storage_footprint(self) -> Dict[str, int]:
        """Approximate archive size per node (Section 5's storage concern)."""
        return {
            address: archive.storage_bytes() for address, archive in self._archives.items()
        }


def _derivation_depth(graph: DerivationGraph, root: FactKey) -> int:
    """Longest producer chain under *root* (BFS over rule applications)."""
    depth = 0
    seen: set = set()
    frontier: deque = deque([(root, 0)])
    while frontier:
        key, level = frontier.popleft()
        if key in seen:
            continue
        seen.add(key)
        depth = max(depth, level)
        for operator in graph.producers(key):
            for input_key in operator.inputs:
                frontier.append((input_key, level + 1))
    return depth


def traceback_over_network(
    network,
    target,
    at: str,
    mode: str = "offline",
    **query_kwargs,
) -> Tuple[TracebackReport, object]:
    """The forensic traceback asked *in-band*: a real provenance query.

    Where :meth:`ForensicInvestigator.traceback` reads every node's archive
    for free, this issues ``network.query(target, at=at, mode=mode)`` — the
    reconstruction travels as QueryRequest/QueryResponse messages, pays
    bytes and latency, and fails partially when nodes are down.  Returns the
    familiar :class:`TracebackReport` plus the underlying
    :class:`~repro.net.query.QueryResult` carrying the wire costs
    (``messages``, ``bytes``, ``latency``, ``complete``).

    ``mode="offline"`` (the default) walks the persistent archives — the
    forensic store that survives crashes; ``mode="online"`` walks the live
    pointer tables instead.
    """
    key = as_fact_key(target)
    result = network.query(key, at=at, mode=mode, **query_kwargs)
    graph = result.graph.subgraph(key)
    nodes: List[str] = []
    rules: List[str] = []
    for operator in graph.operators():
        if operator.location and operator.location not in nodes:
            nodes.append(operator.location)
        if operator.rule_label not in rules:
            rules.append(operator.rule_label)
    report = TracebackReport(
        target=key,
        origins=tuple(sorted(graph.base_tuples(key))),
        nodes_traversed=tuple(nodes),
        rules_applied=tuple(rules),
        derivation_depth=_derivation_depth(graph, key),
        graph=graph,
    )
    return report, result
