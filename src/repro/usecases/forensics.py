"""Network forensics over offline provenance (Section 3).

Forensics needs *historical* data: the paper frames traceback — determining
where packets or updates originated without trusting unauthenticated headers
— as a provenance query over state that may have long expired, which is what
the offline archive retains.

:class:`ForensicInvestigator` answers the questions that the traceback
literature (IP traceback, ForNet, Time Machine) asks, over one or more
nodes' offline archives: where did this tuple originate, which nodes did it
traverse, what did a given principal inject during a time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.engine.tuples import FactKey
from repro.provenance.graph import DerivationGraph
from repro.provenance.store import OfflineProvenanceArchive, ProvenanceEntry


@dataclass(frozen=True)
class TracebackReport:
    """The answer to one forensic traceback query."""

    target: FactKey
    origins: Tuple[FactKey, ...]
    nodes_traversed: Tuple[str, ...]
    rules_applied: Tuple[str, ...]
    derivation_depth: int
    graph: DerivationGraph

    @property
    def found(self) -> bool:
        return bool(self.nodes_traversed) or bool(self.origins)


class ForensicInvestigator:
    """Cross-node forensic queries over offline provenance archives."""

    def __init__(self, archives: Mapping[str, OfflineProvenanceArchive]) -> None:
        self._archives = dict(archives)

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def from_engines(cls, engines: Mapping[str, object]) -> "ForensicInvestigator":
        """Build an investigator from a simulation's node engines."""
        archives = {
            address: engine.offline_provenance for address, engine in engines.items()
        }
        return cls(archives)

    # -- queries -----------------------------------------------------------------------

    def _all_entries(self) -> List[ProvenanceEntry]:
        entries: List[ProvenanceEntry] = []
        for archive in self._archives.values():
            entries.extend(archive.entries())
        return entries

    def traceback(self, target: FactKey) -> TracebackReport:
        """Reconstruct where *target* came from, across all archives."""
        by_key: Dict[FactKey, List[ProvenanceEntry]] = {}
        for entry in self._all_entries():
            by_key.setdefault(entry.key, []).append(entry)

        graph = DerivationGraph()
        origins: List[FactKey] = []
        nodes: List[str] = []
        rules: List[str] = []
        depth = 0

        seen: set = set()
        frontier: List[Tuple[FactKey, int]] = [(target, 0)]
        while frontier:
            key, level = frontier.pop(0)
            if key in seen:
                continue
            seen.add(key)
            depth = max(depth, level)
            entries = by_key.get(key)
            if not entries:
                origins.append(key)
                continue
            for entry in entries:
                if entry.node and entry.node not in nodes:
                    nodes.append(entry.node)
                if entry.rule_label not in rules:
                    rules.append(entry.rule_label)
                from repro.engine.tuples import Fact

                graph.add_derivation(
                    output=Fact(relation=key[0], values=key[1]),
                    rule_label=entry.rule_label,
                    antecedents=[
                        Fact(relation=k[0], values=k[1]) for k in entry.antecedent_keys
                    ],
                    location=entry.node,
                    timestamp=entry.timestamp,
                )
                for antecedent in entry.antecedent_keys:
                    frontier.append((antecedent, level + 1))

        return TracebackReport(
            target=target,
            origins=tuple(sorted(origins)),
            nodes_traversed=tuple(nodes),
            rules_applied=tuple(rules),
            derivation_depth=depth,
            graph=graph,
        )

    def activity_of(self, principal: str, start: float, end: float) -> Tuple[ProvenanceEntry, ...]:
        """Everything derived at *principal* within [start, end] (call-detail style)."""
        archive = self._archives.get(principal)
        if archive is None:
            return ()
        return archive.entries_between(start, end)

    def tuples_depending_on(self, base: FactKey) -> Tuple[FactKey, ...]:
        """Every archived tuple whose derivation (transitively) used *base*.

        This is the "which routes did the compromised link influence"
        question: a forward traversal of the archived derivations.
        """
        forward: Dict[FactKey, List[FactKey]] = {}
        for entry in self._all_entries():
            for antecedent in entry.antecedent_keys:
                forward.setdefault(antecedent, []).append(entry.key)

        affected: List[FactKey] = []
        seen: set = set()
        frontier = [base]
        while frontier:
            key = frontier.pop(0)
            for dependent in forward.get(key, ()):
                if dependent in seen:
                    continue
                seen.add(dependent)
                affected.append(dependent)
                frontier.append(dependent)
        return tuple(affected)

    def storage_footprint(self) -> Dict[str, int]:
        """Approximate archive size per node (Section 5's storage concern)."""
        return {
            address: archive.storage_bytes() for address, archive in self._archives.items()
        }
