"""The four networking use cases of Section 3, as library APIs.

Each module turns one of the paper's motivating scenarios into a concrete,
testable component built on the provenance substrate:

* :mod:`diagnostics` — real-time route-flap detection and reaction over
  online provenance;
* :mod:`forensics` — after-the-fact traceback over offline provenance
  archives (the IP-traceback analogue);
* :mod:`accountability` — PlanetFlow-style per-principal traffic auditing;
* :mod:`trust` — Orchestra-style acceptance of updates based on the trust
  placed in their provenance.
"""

from repro.usecases.diagnostics import FlapEvent, RouteFlapDetector, DiagnosticsReport
from repro.usecases.forensics import ForensicInvestigator, TracebackReport
from repro.usecases.accountability import AccountabilityAuditor, AuditRecord, UsagePolicy
from repro.usecases.trust import TrustDecision, TrustManager, TrustPolicy

__all__ = [
    "AccountabilityAuditor",
    "AuditRecord",
    "DiagnosticsReport",
    "FlapEvent",
    "ForensicInvestigator",
    "RouteFlapDetector",
    "TracebackReport",
    "TrustDecision",
    "TrustManager",
    "TrustPolicy",
    "UsagePolicy",
]
