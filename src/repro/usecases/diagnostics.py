"""Real-time diagnostics over online provenance (Section 3).

The paper's scenario: a continuous query counts the changes to a routing
table entry over the past ``T`` seconds and raises an alarm when the count
exceeds a threshold (possible divergence or malicious activity); upon the
alarm, the system issues a query over the *online provenance* to find the
source of the suspicious updates, and can then purge all state derived from
the offending node.

:class:`RouteFlapDetector` implements the sliding-window change counter,
identifies the responsible origins via the condensed provenance of the
flapping routes, and drives cascade invalidation through the online
provenance store's dependency index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.engine.tuples import FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.store import OnlineProvenanceStore


@dataclass(frozen=True)
class FlapEvent:
    """One observed change to a routing-table entry."""

    source: str
    destination: str
    timestamp: float
    new_cost: Optional[float] = None

    @property
    def entry(self) -> Tuple[str, str]:
        return (self.source, self.destination)


@dataclass
class DiagnosticsReport:
    """Result of a diagnostics pass over the observed route changes."""

    alarms: Tuple[Tuple[str, str], ...]
    suspicious_principals: Tuple[str, ...]
    purged_tuples: Tuple[FactKey, ...]

    @property
    def anomaly_detected(self) -> bool:
        return bool(self.alarms)


class RouteFlapDetector:
    """Sliding-window route-change monitor with provenance-driven reaction.

    Parameters
    ----------
    window_seconds:
        Length of the sliding window ``T`` over which changes are counted.
    threshold:
        Number of changes within the window that raises an alarm.
    """

    def __init__(self, window_seconds: float = 30.0, threshold: int = 3) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.window_seconds = window_seconds
        self.threshold = threshold
        self._events: Dict[Tuple[str, str], Deque[FlapEvent]] = {}

    # -- event intake ------------------------------------------------------------

    def observe(self, event: FlapEvent) -> bool:
        """Record one route change; return True when this entry is now flapping."""
        window = self._events.setdefault(event.entry, deque())
        window.append(event)
        self._evict(window, event.timestamp)
        return len(window) >= self.threshold

    def observe_route_change(
        self, source: str, destination: str, timestamp: float, new_cost: Optional[float] = None
    ) -> bool:
        return self.observe(FlapEvent(source, destination, timestamp, new_cost))

    def change_count(self, source: str, destination: str, now: float) -> int:
        """Changes to (source, destination) within the window ending at *now*."""
        window = self._events.get((source, destination))
        if window is None:
            return 0
        self._evict(window, now)
        return len(window)

    def flapping_entries(self, now: float) -> Tuple[Tuple[str, str], ...]:
        """All routing entries currently over the alarm threshold."""
        result: List[Tuple[str, str]] = []
        for entry, window in self._events.items():
            self._evict(window, now)
            if len(window) >= self.threshold:
                result.append(entry)
        return tuple(sorted(result))

    # -- provenance-driven reaction ------------------------------------------------

    def identify_suspects(
        self,
        flapping: Iterable[Tuple[str, str]],
        provenance_of: Dict[Tuple[str, str], CondensedProvenance],
        trusted: Iterable[str] = (),
    ) -> Tuple[str, ...]:
        """Principals implicated by the provenance of flapping routes.

        Every principal appearing in the provenance of a flapping entry that
        is not explicitly *trusted* is reported as a suspect.
        """
        trusted_set = set(trusted)
        suspects: set = set()
        for entry in flapping:
            annotation = provenance_of.get(entry)
            if annotation is None:
                continue
            suspects.update(annotation.sources() - trusted_set)
        return tuple(sorted(suspects))

    def identify_suspects_over_network(
        self,
        network,
        flapping: Iterable[Tuple[str, str]],
        route_key_of: Dict[Tuple[str, str], FactKey],
        at: str,
        trusted: Iterable[str] = (),
    ) -> Tuple[str, ...]:
        """Attribute flapping routes by querying provenance *in-band*.

        For every flapping entry the monitoring node issues
        ``network.query(route_key, at=at, condensed=True)`` — the condensed
        annotation comes back over the simulated network (query traffic is
        charged to *at* in the statistics) instead of being read out of a
        Python dictionary.  Suspects are the untrusted principals the
        annotations implicate, exactly as in :meth:`identify_suspects`.
        """
        trusted_set = set(trusted)
        suspects: set = set()
        for entry in flapping:
            key = route_key_of.get(entry)
            if key is None:
                continue
            result = network.query(key, at=at, condensed=True)
            if result.condensed is None:
                continue
            suspects.update(result.condensed.sources() - trusted_set)
        return tuple(sorted(suspects))

    def purge_derived_state(
        self, store: OnlineProvenanceStore, roots: Iterable[FactKey]
    ) -> Tuple[FactKey, ...]:
        """Cascade-delete online provenance derived (directly or not) from *roots*.

        Returns every tuple key whose provenance was purged — the runtime
        reaction the paper describes ("delete all routing entries associated
        with the malicious node").
        """
        purged: List[FactKey] = []
        queue: List[FactKey] = list(roots)
        seen: set = set()
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            dependents = store.delete(key)
            purged.append(key)
            queue.extend(dependents)
        return tuple(purged)

    def run(
        self,
        events: Iterable[FlapEvent],
        provenance_of: Dict[Tuple[str, str], CondensedProvenance],
        online_store: Optional[OnlineProvenanceStore] = None,
        route_key_of: Optional[Dict[Tuple[str, str], FactKey]] = None,
        trusted: Iterable[str] = (),
    ) -> DiagnosticsReport:
        """Full diagnostics pass: ingest events, alarm, attribute, purge."""
        latest = 0.0
        for event in events:
            latest = max(latest, event.timestamp)
            self.observe(event)
        alarms = self.flapping_entries(latest)
        suspects = self.identify_suspects(alarms, provenance_of, trusted)
        purged: Tuple[FactKey, ...] = ()
        if online_store is not None and route_key_of is not None and alarms:
            roots = [route_key_of[entry] for entry in alarms if entry in route_key_of]
            purged = self.purge_derived_state(online_store, roots)
        return DiagnosticsReport(
            alarms=alarms, suspicious_principals=suspects, purged_tuples=purged
        )

    # -- internals -------------------------------------------------------------------

    def _evict(self, window: Deque[FlapEvent], now: float) -> None:
        while window and now - window[0].timestamp > self.window_seconds:
            window.popleft()
