"""Provenance-aware Secure Networks — reproduction of Zhou, Cronin & Loo (ICDE 2008).

The package is organised as the paper is:

* :mod:`repro.datalog` — the NDlog / SeNDlog declarative networking language
  (parser, localization rewrite, analysis, compilation);
* :mod:`repro.engine` — the per-node evaluation engine (soft-state tables,
  semi-naive delta evaluation, aggregates);
* :mod:`repro.net` — the simulated distributed substrate (topologies,
  messages, discrete-event simulator, metrics);
* :mod:`repro.security` — principals, RSA signatures and the ``says``
  operator's authentication modes;
* :mod:`repro.provenance` — the paper's core contribution: semiring
  provenance, BDD-condensed annotations, derivation graphs, local /
  distributed / online / offline / authenticated / quantifiable provenance;
* :mod:`repro.queries` — the NDlog programs used in the paper (reachability,
  Best-Path, path-vector, monitoring);
* :mod:`repro.usecases` — diagnostics, forensics, accountability and trust
  management built on provenance;
* :mod:`repro.harness` — the experiment harness regenerating Figures 3 and 4
  and the overhead tables of Section 6.

Quickstart::

    from repro.harness import run_configuration

    row = run_configuration("SeNDLogProv", node_count=10)
    print(row.completion_time_s, row.bandwidth_mb)
"""

__version__ = "1.0.0"

__all__ = [
    "datalog",
    "engine",
    "harness",
    "net",
    "provenance",
    "queries",
    "security",
    "usecases",
]
