"""Provenance-aware Secure Networks — reproduction of Zhou, Cronin & Loo (ICDE 2008).

The package is organised as the paper is:

* :mod:`repro.datalog` — the NDlog / SeNDlog declarative networking language
  (parser, localization rewrite, analysis, compilation);
* :mod:`repro.engine` — the per-node evaluation engine (soft-state tables,
  semi-naive delta evaluation, aggregates);
* :mod:`repro.net` — the simulated distributed substrate (topologies,
  messages, discrete-event simulator, metrics);
* :mod:`repro.security` — principals, RSA signatures and the ``says``
  operator's authentication modes;
* :mod:`repro.provenance` — the paper's core contribution: semiring
  provenance, BDD-condensed annotations, derivation graphs, local /
  distributed / online / offline / authenticated / quantifiable provenance;
* :mod:`repro.queries` — the NDlog programs used in the paper (reachability,
  Best-Path, path-vector, monitoring);
* :mod:`repro.usecases` — diagnostics, forensics, accountability and trust
  management built on provenance;
* :mod:`repro.service` — the query service plane: open- and closed-loop
  provenance query workloads, token-bucket admission control, the per-node
  result cache and latency-SLO accounting;
* :mod:`repro.harness` — the experiment harness regenerating Figures 3 and 4
  and the overhead tables of Section 6;
* :mod:`repro.api` — the first-class entry point: the :class:`~repro.api.Network`
  facade and in-network provenance queries.

Quickstart::

    from repro.api import Network

    network = Network.build(topology=10, program="best-path",
                            provenance="sendlog-prov")
    result = network.run()                      # -> RunResult
    print(result.completion_time_s, result.bandwidth_mb)

    # Provenance is network state: query it OVER the network.  The
    # traceback travels as request/response messages paying bytes and
    # latency, itemized as query_bytes / query_messages in the stats.
    route = result.all_facts("bestPath")[0]
    answer = network.query(route, at=route.origin)
    print(answer.complete, answer.messages, answer.bytes, answer.latency)

Presets mirror the paper's configurations (``"ndlog"``, ``"sendlog"``,
``"sendlog-prov"``, plus ``"condensed"`` / ``"distributed"`` /
``"full-local"``); every other knob lives on a validated
:class:`~repro.api.NetOptions`.  Programs are statically analyzed on the
way in: ``Network.build(..., lint="error")`` (the default) rejects
programs with error-severity diagnostics — unsafe rules, arity or type
conflicts, unverifiable ``says`` imports — while ``lint="warn"`` surfaces
everything as Python warnings and ``lint="off"`` opts out.  The same
analyzer runs standalone as ``python -m repro.datalog.lint prog.ndlog
[--format=json]`` (see the code table in ROADMAP.md).  Dynamic-network scenario scripts return
``(Scenario, Network)`` pairs — see :mod:`repro.harness.scenarios` — and
``network.query(..., mode="offline")`` walks the persistent provenance
archives that survive node crashes.

Long runs can bound the archives' memory with the tiered store
(:mod:`repro.provenance.tiers`)::

    network = Network.build(topology=10, program="best-path",
                            provenance="condensed",
                            keep_offline_provenance=True,
                            provenance_store="tiered",
                            hot_tier_entries=256)
    network.run()
    print(network.stats.summary()["provenance_bytes_resident"],
          network.stats.summary()["provenance_bytes_spilled"])

Derivations older than the hot tier spill to an append-only per-node log
and are fetched back transparently (counted as ``spill_reads``); offline
forensics stay byte-identical to the unbounded default for any capacity.

Beyond one-shot tracebacks, the network runs as an always-on **query
service**: a :class:`~repro.service.workload.QueryWorkload` describes
sustained load (open-loop Poisson arrivals at ``rate`` queries/s, or
``clients`` closed-loop clients with think time), and
:meth:`~repro.api.Network.serve` converges the network, serves the window
and reports service levels::

    from repro.api import Network, NetOptions
    from repro.service.workload import QueryWorkload

    network = Network.build(topology=10, program="best-path",
                            provenance="condensed",
                            options=NetOptions(query_cache=True,
                                               admission_rate=1.0,
                                               admission_burst=8.0))
    result = network.serve(QueryWorkload(rate=5.0, duration=10.0, seed=7))
    report = result.service()
    print(report.goodput, report.rejection_rate,
          report.p95_ms, report.cache_hit_ratio)

Admission is a per-node token bucket on simulated time (``policy="drop"``
or ``"retry"``); the result cache memoizes provenance closures per node
and is invalidated by epoch on any provenance mutation, so a cached answer
is always structurally identical to a cold walk.  All service counters are
integers on simulated time and therefore byte-identical across execution
backends.

Execution backends: large runs can be partitioned across parallel
per-shard kernels with ``backend="sharded"``::

    network = Network.build(topology=500, program="best-path",
                            provenance="ndlog",
                            backend="sharded", shards=4)
    result = network.run()   # identical facts and integer/byte stats

The sharded backend is *deterministically equivalent* to the serial one —
same derived facts, same message sequence numbers, same integer/byte
statistics, for any shard count and either worker mode (``shard_mode=
"processes"`` for multiprocessing workers, ``"inline"`` for in-process
debugging) — so it is purely a wall-clock choice.

Shard coordination itself is tunable and measured.  ``shard_pipeline=True``
replaces the lockstep barrier with per-shard conservative horizons —
export-empty stretches coalesce into multi-window leases, idle shards are
skipped entirely — and ``transport`` picks the coordinator↔worker frame
encoding (``"binary"`` compact deterministic frames, the default;
``"shm"`` adds a zero-copy shared-memory ring for large frames;
``"pickle"`` is the legacy baseline).  Results are byte-identical in every
combination; the **coordination ledger** in ``stats.summary()`` shows what
was saved::

    network = Network.build(topology=100, program="best-path",
                            provenance="ndlog",
                            backend="sharded", shards=4,
                            shard_pipeline=True)
    result = network.run()
    summary = network.stats.summary()
    print(summary["coordination_rounds"],    # coordinator round-trips
          summary["coordination_bytes"],     # frame bytes both ways
          summary["windows_executed"],       # window grants issued
          summary["windows_coalesced"])      # extra windows per lease

Dynamic networks repair at computation speed, not timeout speed.  Base
tuples carry **base-support polynomials**: retracting one (or failing a
link with ``retract=True``) runs DRed's over-deletion *and* the
rederivation phase in a single distributed fixpoint — tuples with a
surviving alternative derivation are kept (counted as ``rederivations``),
dead remote copies are chased with ranked **anti-delta** messages — so a
retraction converges in link-latency time instead of ``ttl +
refresh_interval`` of soft-state decay.  On by default; disable with
``rederivation=False`` to measure the decay baseline.  Soft-state refresh
itself can run as a continuous plane instead of lockstep rounds::

    network = Network.build(topology=10, program="best-path",
                            provenance="ndlog",
                            options=NetOptions(refresh_mode="wheel",
                                               refresh_interval=5.0,
                                               refresh_rate=2.0,
                                               refresh_burst=4.0))
    result = network.run()
    summary = network.stats.summary()
    print(summary["rederivations"],          # tuples saved by alternatives
          summary["anti_delta_messages"],    # deletion-repair messages
          summary["anti_delta_bytes"],
          summary["refresh_messages"],       # per-tuple wheel refreshes
          summary["refresh_bytes"],
          summary["timer_events"])           # wheel drain events

``refresh_mode="wheel"`` keeps per-tuple refresh timers in hierarchical
timer wheels on simulated time (O(1) schedule/cancel, deterministic drain;
``refresh_rate``/``refresh_burst`` token-bucket the refresh waves so
repair traffic is a bounded trickle); ``"rounds"`` is the classic lockstep
``SoftStateRefresh``.  All six counters are integers on simulated time and
part of the serial-vs-sharded byte-identical contract;
``benchmarks/test_dynamics.py`` (``make dynamics-smoke``) measures the
one-fixpoint-vs-decay convergence gap into ``BENCH_dynamics.json``, and
``examples/churn_repair.py`` walks the whole story.

The legacy entry points (``Simulator(...)``, ``run_best_path``,
``run_configuration``) remain as thin shims over the facade, now emitting
``DeprecationWarning``.
"""

__version__ = "1.0.0"

__all__ = [
    "api",
    "datalog",
    "engine",
    "harness",
    "net",
    "provenance",
    "queries",
    "security",
    "usecases",
]
