"""Facts (tuples) and derivations.

A :class:`Fact` is one tuple of a relation, extended with the stream / soft
state / security metadata the paper adds to classical Datalog tuples
(Section 4): a creation timestamp, a time-to-live, the asserting principal
("says"), an optional digital signature, and an optional provenance
annotation (the condensed provenance expression of Section 4.4).

Identity semantics: two facts are *the same tuple* when their relation and
values match; metadata (timestamps, signatures, provenance) does not
participate in equality.  This mirrors set semantics in the relational store
while still letting the provenance layer track every distinct derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Optional, Sequence, Tuple


Value = object
FactKey = Tuple[str, Tuple[Value, ...]]


@dataclass(eq=False, slots=True)
class Fact:
    """One tuple of a relation plus its stream/security metadata.

    Facts are logically immutable: nothing in the engine mutates one after
    construction (``with_metadata`` copies; the lazily rendered payload cache
    is the only mutable slot), and identity/hashing depend only on the
    immutable relation/values pair.  The class is deliberately not a
    frozen dataclass — frozen ``__init__`` goes through ``object.__setattr__``
    per field, and fact construction is one of the hottest allocation sites
    in the evaluator.  It *is* slotted: carrying the payload cache as an
    explicit slot instead of a dynamic ``__dict__`` entry removes a dict
    allocation per fact on that same hot path.

    Attributes
    ----------
    relation:
        Relation name.
    values:
        Attribute values, in schema order.
    timestamp:
        Creation (or arrival) time in simulation seconds.
    ttl:
        Soft-state time-to-live in seconds; ``None`` means the fact never
        expires (hard state).
    asserted_by:
        The principal that asserted ("says") this fact, or ``None`` for
        unauthenticated NDlog tuples.
    signature:
        The asserting principal's signature over the fact payload, or
        ``None``.
    provenance:
        Serializable provenance annotation travelling with the fact (used for
        local / condensed provenance); ``None`` when provenance is disabled
        or maintained only as distributed pointers.
    origin:
        Address of the node where the fact was first created or derived.
    support:
        Base-support polynomial (a :class:`~repro.provenance.polynomial.
        ProvenanceExpression` over rendered *base tuple keys*) travelling
        with exported facts when one-fixpoint deletions are enabled; the
        receiver merges it into its own support index so a later
        anti-delta naming a retracted base tuple can decide survival
        locally.  ``None`` when rederivation is off.
    """

    relation: str
    values: Tuple[Value, ...]
    timestamp: float = 0.0
    ttl: Optional[float] = None
    asserted_by: Optional[str] = None
    signature: Optional[bytes] = None
    provenance: Optional[object] = None
    origin: Optional[str] = None
    support: Optional[object] = None
    #: Lazily rendered canonical payload; equal facts may share the same
    #: bytes object (the table hands a stored duplicate's rendering to
    #: refreshed copies so immediately deduplicated derivations never
    #: re-render).  Excluded from repr; identity never depends on it.
    _payload_cache: Optional[bytes] = field(default=None, repr=False)

    # -- identity ------------------------------------------------------------

    def key(self) -> FactKey:
        """The identity of the tuple: relation name plus values."""
        return (self.relation, self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fact):
            return NotImplemented
        return self.relation == other.relation and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.relation, self.values))

    # -- soft state -----------------------------------------------------------

    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` for hard state."""
        if self.ttl is None:
            return None
        return self.timestamp + self.ttl

    def is_expired(self, now: float) -> bool:
        expiry = self.expires_at()
        return expiry is not None and now >= expiry

    # -- convenience ----------------------------------------------------------

    def payload(self) -> bytes:
        """Canonical byte serialization of the tuple identity.

        This is what gets signed by the asserting principal, and what the
        bandwidth model charges for.  The serialization depends only on the
        immutable relation/values pair, so it is computed once and cached
        (signing, verification and the bandwidth model all re-read it).
        """
        cached = self._payload_cache
        if cached is None:
            rendered = ",".join(map(_render_value, self.values))
            cached = f"{self.relation}({rendered})".encode("utf-8")
            self._payload_cache = cached
        return cached

    def payload_size(self) -> int:
        """Number of payload bytes (used by the bandwidth model)."""
        return len(self.payload())

    def with_metadata(
        self,
        *,
        timestamp: Optional[float] = None,
        ttl: Optional[float] = None,
        asserted_by: Optional[str] = None,
        signature: Optional[bytes] = None,
        provenance: Optional[object] = None,
        origin: Optional[str] = None,
        support: Optional[object] = None,
    ) -> "Fact":
        """Return a copy with selected metadata fields replaced."""
        updates = {}
        if timestamp is not None:
            updates["timestamp"] = timestamp
        if ttl is not None:
            updates["ttl"] = ttl
        if asserted_by is not None:
            updates["asserted_by"] = asserted_by
        if signature is not None:
            updates["signature"] = signature
        if provenance is not None:
            updates["provenance"] = provenance
        if origin is not None:
            updates["origin"] = origin
        if support is not None:
            updates["support"] = support
        # replace() copies every field, including the payload cache — the
        # payload depends only on relation/values, which never change here,
        # so the serialization is shared automatically.
        return replace(self, **updates)

    def __str__(self) -> str:
        rendered = ", ".join(_render_value(v) for v in self.values)
        prefix = f"{self.asserted_by} says " if self.asserted_by else ""
        return f"{prefix}{self.relation}({rendered})"


def fact_key(relation: str, values: Sequence[Value]) -> FactKey:
    """Build a :data:`FactKey` without constructing a full :class:`Fact`."""
    return (relation, tuple(values))


def as_fact_key(value: "Fact | FactKey") -> FactKey:
    """Normalize a :class:`Fact` or (relation, values) pair to a :data:`FactKey`.

    Every user-facing entry point that accepts "a fact or its key" — the
    query plane, tracebacks, forensics — funnels through here so the
    accepted shapes cannot drift apart.
    """
    if isinstance(value, Fact):
        return value.key()
    return fact_key(*value)


@dataclass(frozen=True)
class Derivation:
    """A single application of a rule that produced a fact.

    This is the unit the provenance layer consumes: the derived fact, the
    rule label, the node where the rule fired, and the antecedent facts that
    were joined (in body order).  Base facts are represented as derivations
    with an empty antecedent tuple and ``rule_label="base"``.
    """

    fact: Fact
    rule_label: str
    node: Optional[str]
    antecedents: Tuple[Fact, ...] = ()
    timestamp: float = 0.0

    @property
    def is_base(self) -> bool:
        return not self.antecedents

    def __str__(self) -> str:
        if self.is_base:
            return f"{self.fact} [base @ {self.node}]"
        children = "; ".join(str(a) for a in self.antecedents)
        return f"{self.fact} <-[{self.rule_label} @ {self.node}]- {children}"


def _render_value(value: Value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, tuple):
        for element in value:
            if type(element) is not str:
                break
        else:
            return _render_str_tuple(value)
        return "[" + "|".join(_render_value(v) for v in value) + "]"
    if isinstance(value, list):
        return "[" + "|".join(_render_value(v) for v in value) + "]"
    return str(value)


@lru_cache(maxsize=65536)
def _render_str_tuple(value: tuple) -> str:
    """Render an all-string tuple value, memoized.

    Path values (tuples of node names) recur heavily across derived tuples —
    every ``mid`` / ``path`` / ``bestPath`` fact re-ships its hop list — so
    each distinct path renders once.  Only all-``str`` tuples are cached:
    among equal values only those render identically (e.g. ``True`` and ``1``
    are equal keys but render differently, so mixed tuples must not share
    cache entries).
    """
    return "[" + "|".join(value) + "]"
