"""Per-node NDlog / SeNDlog evaluation engine.

This subpackage is the Python analogue of a single P2 process: it stores
soft-state tables, evaluates compiled rule plans in a delta-driven
(semi-naive) fashion, applies aggregates, and hands derived tuples destined
for other nodes to the network layer.
"""

from repro.engine.tuples import Fact, Derivation, fact_key
from repro.engine.table import Table
from repro.engine.database import Database
from repro.engine.builtins import BUILTIN_FUNCTIONS, call_builtin
from repro.engine.aggregates import AggregateState, aggregate_better, aggregate_init
from repro.engine.seminaive import Bindings, evaluate_plan_with_delta, evaluate_program


def __getattr__(name: str):
    """Lazily expose the node engine.

    ``node_engine`` depends on the provenance and security packages, which in
    turn depend on :mod:`repro.engine.tuples`; importing it lazily keeps
    ``import repro.provenance`` free of circular imports.
    """
    if name in ("EngineConfig", "NodeEngine", "ProvenanceMode"):
        from repro.engine import node_engine

        return getattr(node_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AggregateState",
    "BUILTIN_FUNCTIONS",
    "Bindings",
    "Database",
    "Derivation",
    "EngineConfig",
    "Fact",
    "NodeEngine",
    "Table",
    "aggregate_better",
    "aggregate_init",
    "call_builtin",
    "evaluate_plan_with_delta",
    "evaluate_program",
    "fact_key",
]
