"""Delta-driven (semi-naive) rule evaluation.

Two entry points:

* :func:`evaluate_plan_with_delta` — the distributed building block: given a
  newly arrived or newly derived fact (the *delta*), evaluate one rule plan
  with the delta bound to one body occurrence and all other atoms joined
  against the node's stored tables.  This is what the per-node engine calls
  for every delta, and is the direct analogue of P2's delta-rule dataflows.

* :func:`evaluate_program` — a single-site fixpoint evaluator that runs a
  whole program to fixpoint over one database.  It is used by tests, by the
  provenance examples that do not need the network simulator, and as a
  reference implementation the distributed results are checked against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    FunctionCall,
    Term,
    Variable,
)
from repro.datalog.errors import EvaluationError
from repro.datalog.planner import COMPARATORS, CompiledProgram, JoinStep, RulePlan
from repro.engine.aggregates import AggregateState
from repro.engine.builtins import call_builtin
from repro.engine.database import Database
from repro.engine.tuples import Derivation, Fact

Bindings = Dict[str, object]


# ---------------------------------------------------------------------------
# Terms and expressions
# ---------------------------------------------------------------------------

def evaluate_term(term: Term, bindings: Bindings) -> object:
    """Evaluate *term* to a value under *bindings*."""
    if isinstance(term, Variable):
        try:
            return bindings[term.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name}") from None
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, FunctionCall):
        args = [evaluate_term(arg, bindings) for arg in term.args]
        return call_builtin(term.name, args)
    if isinstance(term, Aggregate):
        return evaluate_term(term.variable, bindings)
    raise EvaluationError(f"cannot evaluate term {term!r}")


def term_is_bound(term: Term, bindings: Bindings) -> bool:
    """True when *term* can be evaluated under *bindings*."""
    if isinstance(term, Constant):
        return True
    if isinstance(term, Variable):
        return term.name in bindings
    if isinstance(term, FunctionCall):
        return all(term_is_bound(arg, bindings) for arg in term.args)
    if isinstance(term, Aggregate):
        return term.variable.name in bindings
    return False


def unify_term(term: Term, value: object, bindings: Bindings) -> Optional[Bindings]:
    """Unify *term* against a concrete *value*; return extended bindings or None."""
    if isinstance(term, Variable):
        existing = bindings.get(term.name, _UNSET)
        if existing is _UNSET:
            extended = dict(bindings)
            extended[term.name] = value
            return extended
        return bindings if existing == value else None
    if isinstance(term, Constant):
        return bindings if term.value == value else None
    if isinstance(term, (FunctionCall, Aggregate)):
        if term_is_bound(term, bindings):
            return bindings if evaluate_term(term, bindings) == value else None
        return None
    return None


def unify_atom(atom: Atom, fact: Fact, bindings: Bindings) -> Optional[Bindings]:
    """Unify every term of *atom* against the values of *fact*.

    Copies *bindings* at most once regardless of how many variables the atom
    binds (this is the innermost loop of every join probe).
    """
    if atom.name != fact.relation or atom.arity != len(fact.values):
        return None
    current = bindings
    copied = False
    for term, value in zip(atom.terms, fact.values):
        if isinstance(term, Variable):
            existing = current.get(term.name, _UNSET)
            if existing is _UNSET:
                if not copied:
                    current = dict(current)
                    copied = True
                current[term.name] = value
            elif existing != value:
                return None
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            result = unify_term(term, value, current)
            if result is None:
                return None
            current = result
    return current


_UNSET = object()

#: Shared with the planner's compiled expression closures so the generic
#: fallback below and the compiled hot path cannot diverge.
_COMPARATORS = COMPARATORS


def apply_expression(expression: object, bindings: Bindings) -> Optional[Bindings]:
    """Apply a comparison or assignment; return updated bindings or None if it fails."""
    if isinstance(expression, Comparison):
        left = evaluate_term(expression.left, bindings)
        right = evaluate_term(expression.right, bindings)
        comparator = _COMPARATORS.get(expression.operator)
        if comparator is None:
            raise EvaluationError(f"unknown comparison operator {expression.operator!r}")
        return bindings if comparator(left, right) else None
    if isinstance(expression, Assignment):
        value = evaluate_term(expression.expression, bindings)
        existing = bindings.get(expression.target.name, _UNSET)
        if existing is not _UNSET:
            return bindings if existing == value else None
        extended = dict(bindings)
        extended[expression.target.name] = value
        return extended
    raise EvaluationError(f"unsupported expression literal {expression!r}")


# ---------------------------------------------------------------------------
# Join evaluation
# ---------------------------------------------------------------------------

@dataclass(eq=False, slots=True)
class RuleFiring:
    """One successful rule firing: the head values plus the joined antecedents.

    Created once per firing on the hottest derivation path, so it is a plain
    slotted dataclass rather than a frozen one (frozen construction pays an
    ``object.__setattr__`` call per field).
    """

    plan: RulePlan
    head_values: Tuple[object, ...]
    destination: Optional[object]
    antecedents: Tuple[Fact, ...]
    bindings: Bindings


def _probe_step(
    step: JoinStep, database: Database, bindings: Bindings
) -> Tuple[Fact, ...]:
    """Probe the table of *step* using its precomputed bound-column spec.

    The planner guarantees every variable in the spec is bound whenever the
    step is reached, so the lookup key is built in a single pass instead of
    re-deriving the bound columns from the bindings on every probe.  Expiry
    is the caller's responsibility (once per delta batch, or once per
    evaluation for direct callers) — it used to run here, inside the
    innermost join loop, on every probe of every binding.
    """
    atom = step.atom_plan.atom
    table = database.table(atom.name, arity=atom.arity)
    columns = step.probe.columns
    if not columns:
        return table.facts()
    values = [
        term.value if isinstance(term, Constant) else bindings[term.name]
        for term in step.probe.terms
    ]
    return table.lookup(columns, values)


def warm_probe_indexes(
    compiled: CompiledProgram,
    relation: str,
    database: Database,
    warmed: Optional[set] = None,
) -> None:
    """Build every hash index deltas of *relation* will probe, once.

    Called per same-relation delta batch so index construction is amortized
    across the batch instead of happening lazily inside the first join.

    *warmed* is an optional memo of relations already warmed within one
    drain: once built, indexes are maintained incrementally on every insert
    and delete, so re-checking the specs for a relation the same drain has
    already warmed is pure overhead.  ``NodeEngine.receive_batch`` shares one
    memo across a whole incoming wire batch.
    """
    if warmed is not None:
        if relation in warmed:
            return
        warmed.add(relation)
    for name, arity, columns in compiled.index_specs_for(relation):
        database.table(name, arity=arity).ensure_index(columns)


def expire_probe_tables(
    compiled: CompiledProgram, relation: str, database: Database, now: float
) -> None:
    """Expire every table deltas of *relation* will probe, once.

    Called per same-relation delta batch (next to :func:`warm_probe_indexes`)
    so soft-state expiry runs once per batch instead of inside the innermost
    join loop on every probe of every binding.  ``now`` is constant across a
    batch, so batch-level expiry sees exactly the facts per-probe expiry saw.
    """
    for name, arity in compiled.probe_relations_for(relation):
        database.table(name, arity=arity).expire(now)


def drain_delta_batches(queue: Deque[Fact], compiled: CompiledProgram):
    """Yield ``(relation, batch, trigger_pairs)`` runs from a delta queue.

    Each batch is the run of consecutive same-relation deltas at the queue
    front, so FIFO order is preserved exactly — within a batch, across
    batches, and for facts the caller appends while processing one (they are
    seen when the generator resumes).  Shared by the per-node engine and the
    single-site fixpoint evaluator so the batching semantics cannot drift
    apart.
    """
    while queue:
        relation = queue[0].relation
        batch: List[Fact] = [queue.popleft()]
        while queue and queue[0].relation == relation:
            batch.append(queue.popleft())
        yield relation, batch, compiled.trigger_pairs(relation)


def _apply_expression_batch(
    batch: Sequence[Tuple[str, object, Optional[str]]], bindings: Bindings
) -> Optional[Bindings]:
    """Apply a planner-compiled batch of expression closures to *bindings*.

    The planner guarantees every expression in the batch is fully bound here,
    so no readiness scan is needed; the bindings dict is copied at most once.
    Entries are ``("cmp", check, None)`` or ``("assign", evaluate, target)``
    (see :func:`repro.datalog.planner.compile_expression`).
    """
    current = bindings
    copied = False
    for kind, evaluate, target in batch:
        if kind == "cmp":
            if not evaluate(current):
                return None
        else:
            value = evaluate(current)
            existing = current.get(target, _UNSET)
            if existing is not _UNSET:
                if existing != value:
                    return None
            else:
                if not copied:
                    current = dict(current)
                    copied = True
                current[target] = value
    return current


def evaluate_plan_with_delta(
    plan: RulePlan,
    database: Database,
    delta: Fact,
    delta_index: int,
    now: Optional[float] = None,
    collect_antecedents: bool = True,
) -> List[RuleFiring]:
    """Evaluate *plan* with *delta* bound to body position *delta_index*.

    Returns every rule firing produced by joining the delta against the
    node's stored tables.  The remaining atoms are visited in the planner's
    bound-aware join order (most-bound-first), each probed through its
    precomputed :class:`~repro.datalog.planner.ProbeSpec` and unified via its
    compiled per-atom closure (``BodyAtomPlan.unifier``).  Negated atoms are
    checked last (stratified semantics), and expression literals are applied
    as soon as their variables are bound.

    ``now`` expires the probed tables once, up front.  Callers that drain
    delta batches (the node engine, :func:`evaluate_program`) expire per
    batch via :func:`expire_probe_tables` instead and pass ``None`` here.

    ``collect_antecedents=False`` skips accumulating the joined antecedent
    facts (every firing reports an empty tuple).  Antecedents feed only the
    provenance layer and retraction dependency tracking, yet accumulating
    them costs a tuple allocation per join level per binding plus the
    body-order reordering per firing — configurations that maintain neither
    (plain NDlog / SeNDlog) skip that work on the hottest loop.
    """
    body = plan.body_atoms
    if delta_index < 0 or delta_index >= len(body):
        raise EvaluationError(
            f"rule {plan.label}: delta index {delta_index} out of range"
        )
    delta_atom = body[delta_index]
    if delta_atom.negated:
        raise EvaluationError(
            f"rule {plan.label}: cannot use a negated atom as the delta"
        )

    initial = delta_atom.unifier(delta, {})
    if initial is None:
        return []

    delta_plan = plan.delta_plan(delta_index)
    if not delta_plan.safe:
        # Some expression never becomes evaluable from this delta position:
        # the rule is unsafe for every binding; no firing is possible.
        return []

    if now is not None:
        for step in delta_plan.steps + delta_plan.negated:
            atom = step.atom_plan.atom
            database.table(atom.name, arity=atom.arity).expire(now)

    firings: List[RuleFiring] = []
    steps = delta_plan.steps
    batches = delta_plan.compiled_batches
    body_order = delta_plan.body_order

    def extend(
        position: int,
        bindings: Bindings,
        antecedents: Tuple[Fact, ...],
    ) -> None:
        batch = batches[position]
        if batch:
            bindings = _apply_expression_batch(batch, bindings)
            if bindings is None:
                return
        if position == len(steps):
            _finish(bindings, antecedents)
            return
        step = steps[position]
        unifier = step.atom_plan.probe_unifier
        for fact in _probe_step(step, database, bindings):
            unified = unifier(fact, bindings)
            if unified is None:
                continue
            extend(
                position + 1,
                unified,
                antecedents + (fact,) if collect_antecedents else antecedents,
            )

    def _finish(final: Bindings, antecedents: Tuple[Fact, ...]) -> None:
        for negated_step in delta_plan.negated:
            matches = _probe_step(negated_step, database, final)
            unifier = negated_step.atom_plan.probe_unifier
            if any(unifier(fact, final) is not None for fact in matches):
                return
        # The compiled builders convert unbound-variable KeyError into
        # EvaluationError themselves.
        head_values = plan.head_builder(final)
        destination_builder = plan.destination_builder
        destination = (
            destination_builder(final) if destination_builder is not None else None
        )
        if collect_antecedents:
            ordered = (delta,) + tuple(map(antecedents.__getitem__, body_order))
        else:
            ordered = ()
        firings.append(
            RuleFiring(
                plan=plan,
                head_values=head_values,
                destination=destination,
                antecedents=ordered,
                bindings=final,
            )
        )

    extend(0, initial, ())
    return firings


# ---------------------------------------------------------------------------
# Single-site fixpoint evaluation
# ---------------------------------------------------------------------------

@dataclass
class FixpointResult:
    """Result of a single-site fixpoint run."""

    database: Database
    derivations: List[Derivation]
    iterations: int

    def facts(self, relation: str) -> Tuple[Fact, ...]:
        return self.database.facts(relation)


def evaluate_program(
    compiled: CompiledProgram,
    database: Database,
    base_facts: Iterable[Fact],
    now: float = 0.0,
    default_ttl: Optional[float] = None,
) -> FixpointResult:
    """Run *compiled* to fixpoint over *database* seeded with *base_facts*.

    Aggregate heads are refined monotonically: a derived aggregate tuple only
    replaces the stored one when it improves the aggregate (e.g. a cheaper
    path for ``min``), which guarantees termination of recursive aggregate
    programs such as Best-Path.

    Soft-state semantics match the distributed path this is the reference
    implementation for: base and derived facts without an explicit TTL pick
    up their relation's ``materialize`` lifetime, falling back to
    *default_ttl*.
    """
    aggregates: Dict[str, AggregateState] = {}
    derivations: List[Derivation] = []
    queue: Deque[Fact] = deque()
    ttl_cache: Dict[str, Optional[float]] = {}

    def ttl_for(relation: str) -> Optional[float]:
        if relation in ttl_cache:
            return ttl_cache[relation]
        ttl = default_ttl
        if relation in database.catalog:
            lifetime = database.catalog.schema(relation).lifetime
            if lifetime is not None:
                ttl = lifetime
        ttl_cache[relation] = ttl
        return ttl

    for fact in base_facts:
        if fact.ttl is None:
            ttl = ttl_for(fact.relation)
            if ttl is not None:
                fact = fact.with_metadata(ttl=ttl)
        result = database.insert(fact, now=now)
        if result.inserted:
            derivations.append(
                Derivation(fact=fact, rule_label="base", node=fact.origin, timestamp=now)
            )
            queue.append(fact)

    iterations = 0
    for relation, batch, pairs in drain_delta_batches(queue, compiled):
        if pairs:
            warm_probe_indexes(compiled, relation, database)
            expire_probe_tables(compiled, relation, database, now)
        for delta in batch:
            iterations += 1
            for plan, delta_indexes in pairs:
                for delta_index in delta_indexes:
                    for firing in evaluate_plan_with_delta(
                        plan, database, delta, delta_index
                    ):
                        derived = _make_fact(plan, firing, now, ttl_for(plan.head.predicate))
                        accepted = _accept_firing(plan, firing, derived, database, aggregates, now)
                        if accepted is not None:
                            derivations.append(
                                Derivation(
                                    fact=accepted,
                                    rule_label=plan.label,
                                    node=accepted.origin,
                                    antecedents=firing.antecedents,
                                    timestamp=now,
                                )
                            )
                            queue.append(accepted)

    return FixpointResult(database=database, derivations=derivations, iterations=iterations)


def _make_fact(
    plan: RulePlan, firing: RuleFiring, now: float, ttl: Optional[float] = None
) -> Fact:
    origin = str(firing.destination) if firing.destination is not None else None
    return Fact(
        relation=plan.head.predicate,
        values=firing.head_values,
        timestamp=now,
        ttl=ttl,
        origin=origin,
    )


def _accept_firing(
    plan: RulePlan,
    firing: RuleFiring,
    derived: Fact,
    database: Database,
    aggregates: Dict[str, AggregateState],
    now: float,
) -> Optional[Fact]:
    """Insert a derived fact, honouring head aggregates.

    Returns the fact actually stored (its aggregate column may differ from
    the firing's raw value), or ``None`` when the firing did not change the
    database.
    """
    head = plan.head
    if head.has_aggregate:
        state = aggregates.setdefault(
            f"{plan.label}:{head.predicate}", AggregateState(head.aggregate.function)
        )
        group = tuple(firing.head_values[i] for i in head.group_by_indexes)
        value = firing.head_values[head.aggregate_index]
        changed = state.update(group, value, contribution_key=firing.head_values)
        if changed is None:
            return None
        updated_values = list(firing.head_values)
        updated_values[head.aggregate_index] = changed
        derived = Fact(
            relation=derived.relation,
            values=tuple(updated_values),
            timestamp=now,
            ttl=derived.ttl,
            origin=derived.origin,
        )
    result = database.insert(derived, now=now)
    return derived if result.inserted else None
