"""Delta-driven (semi-naive) rule evaluation.

Two entry points:

* :func:`evaluate_plan_with_delta` — the distributed building block: given a
  newly arrived or newly derived fact (the *delta*), evaluate one rule plan
  with the delta bound to one body occurrence and all other atoms joined
  against the node's stored tables.  This is what the per-node engine calls
  for every delta, and is the direct analogue of P2's delta-rule dataflows.

* :func:`evaluate_program` — a single-site fixpoint evaluator that runs a
  whole program to fixpoint over one database.  It is used by tests, by the
  provenance examples that do not need the network simulator, and as a
  reference implementation the distributed results are checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    FunctionCall,
    Term,
    Variable,
)
from repro.datalog.errors import EvaluationError
from repro.datalog.planner import BodyAtomPlan, CompiledProgram, RulePlan
from repro.engine.aggregates import AggregateState
from repro.engine.builtins import call_builtin
from repro.engine.database import Database
from repro.engine.tuples import Derivation, Fact

Bindings = Dict[str, object]


# ---------------------------------------------------------------------------
# Terms and expressions
# ---------------------------------------------------------------------------

def evaluate_term(term: Term, bindings: Bindings) -> object:
    """Evaluate *term* to a value under *bindings*."""
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return bindings[term.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name}") from None
    if isinstance(term, FunctionCall):
        args = [evaluate_term(arg, bindings) for arg in term.args]
        return call_builtin(term.name, args)
    if isinstance(term, Aggregate):
        return evaluate_term(term.variable, bindings)
    raise EvaluationError(f"cannot evaluate term {term!r}")


def term_is_bound(term: Term, bindings: Bindings) -> bool:
    """True when *term* can be evaluated under *bindings*."""
    if isinstance(term, Constant):
        return True
    if isinstance(term, Variable):
        return term.name in bindings
    if isinstance(term, FunctionCall):
        return all(term_is_bound(arg, bindings) for arg in term.args)
    if isinstance(term, Aggregate):
        return term.variable.name in bindings
    return False


def unify_term(term: Term, value: object, bindings: Bindings) -> Optional[Bindings]:
    """Unify *term* against a concrete *value*; return extended bindings or None."""
    if isinstance(term, Variable):
        existing = bindings.get(term.name, _UNSET)
        if existing is _UNSET:
            extended = dict(bindings)
            extended[term.name] = value
            return extended
        return bindings if existing == value else None
    if isinstance(term, Constant):
        return bindings if term.value == value else None
    if isinstance(term, (FunctionCall, Aggregate)):
        if term_is_bound(term, bindings):
            return bindings if evaluate_term(term, bindings) == value else None
        return None
    return None


def unify_atom(atom: Atom, fact: Fact, bindings: Bindings) -> Optional[Bindings]:
    """Unify every term of *atom* against the values of *fact*."""
    if atom.name != fact.relation or atom.arity != len(fact.values):
        return None
    current = bindings
    for term, value in zip(atom.terms, fact.values):
        current = unify_term(term, value, current)
        if current is None:
            return None
    return current


_UNSET = object()

_COMPARATORS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def apply_expression(expression: object, bindings: Bindings) -> Optional[Bindings]:
    """Apply a comparison or assignment; return updated bindings or None if it fails."""
    if isinstance(expression, Comparison):
        left = evaluate_term(expression.left, bindings)
        right = evaluate_term(expression.right, bindings)
        comparator = _COMPARATORS.get(expression.operator)
        if comparator is None:
            raise EvaluationError(f"unknown comparison operator {expression.operator!r}")
        return bindings if comparator(left, right) else None
    if isinstance(expression, Assignment):
        value = evaluate_term(expression.expression, bindings)
        existing = bindings.get(expression.target.name, _UNSET)
        if existing is not _UNSET:
            return bindings if existing == value else None
        extended = dict(bindings)
        extended[expression.target.name] = value
        return extended
    raise EvaluationError(f"unsupported expression literal {expression!r}")


# ---------------------------------------------------------------------------
# Join evaluation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RuleFiring:
    """One successful rule firing: the head values plus the joined antecedents."""

    plan: RulePlan
    head_values: Tuple[object, ...]
    destination: Optional[object]
    antecedents: Tuple[Fact, ...]
    bindings: Bindings


def _says_matches(
    body_atom: BodyAtomPlan, fact: Fact, bindings: Bindings
) -> Optional[Bindings]:
    """Check (and bind) the ``says`` principal requirement of a body atom."""
    if body_atom.says_principal is None:
        return bindings
    if fact.asserted_by is None:
        return None
    return unify_term(body_atom.says_principal, fact.asserted_by, bindings)


def _candidate_facts(
    atom_plan: BodyAtomPlan, database: Database, bindings: Bindings, now: Optional[float]
) -> Tuple[Fact, ...]:
    """Facts that could match *atom_plan* given the columns already bound."""
    atom = atom_plan.atom
    table = database.table(atom.name, arity=atom.arity)
    if now is not None:
        table.expire(now)
    bound_columns: List[int] = []
    bound_values: List[object] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            bound_columns.append(index)
            bound_values.append(term.value)
        elif isinstance(term, Variable) and term.name in bindings:
            bound_columns.append(index)
            bound_values.append(bindings[term.name])
    if bound_columns:
        return table.lookup(bound_columns, bound_values)
    return table.facts()


def _apply_ready_expressions(
    expressions: Sequence[object], applied: set, bindings: Bindings
) -> Optional[Bindings]:
    """Apply every not-yet-applied expression whose variables are all bound."""
    current = bindings
    progress = True
    while progress:
        progress = False
        for index, expression in enumerate(expressions):
            if index in applied:
                continue
            if isinstance(expression, Assignment):
                ready = term_is_bound(expression.expression, current)
            else:
                ready = term_is_bound(expression.left, current) and term_is_bound(
                    expression.right, current
                )
            if not ready:
                continue
            current = apply_expression(expression, current)
            applied.add(index)
            progress = True
            if current is None:
                return None
    return current


def evaluate_plan_with_delta(
    plan: RulePlan,
    database: Database,
    delta: Fact,
    delta_index: int,
    now: Optional[float] = None,
) -> List[RuleFiring]:
    """Evaluate *plan* with *delta* bound to body position *delta_index*.

    Returns every rule firing produced by joining the delta against the
    node's stored tables.  Negated atoms are checked last (stratified
    semantics), and expression literals are applied as soon as their
    variables are bound.
    """
    body = plan.body_atoms
    if delta_index < 0 or delta_index >= len(body):
        raise EvaluationError(
            f"rule {plan.label}: delta index {delta_index} out of range"
        )
    delta_atom = body[delta_index]
    if delta_atom.negated:
        raise EvaluationError(
            f"rule {plan.label}: cannot use a negated atom as the delta"
        )

    initial = unify_atom(delta_atom.atom, delta, {})
    if initial is None:
        return []
    initial = _says_matches(delta_atom, delta, initial)
    if initial is None:
        return []

    firings: List[RuleFiring] = []
    remaining = [
        (index, atom_plan)
        for index, atom_plan in enumerate(body)
        if index != delta_index and not atom_plan.negated
    ]
    negated = [atom_plan for atom_plan in body if atom_plan.negated]

    def extend(
        position: int,
        bindings: Bindings,
        antecedents: Tuple[Fact, ...],
        applied: set,
    ) -> None:
        bindings = _apply_ready_expressions(plan.expressions, applied, bindings)
        if bindings is None:
            return
        if position == len(remaining):
            _finish(bindings, antecedents, applied)
            return
        _, atom_plan = remaining[position]
        for fact in _candidate_facts(atom_plan, database, bindings, now):
            unified = unify_atom(atom_plan.atom, fact, bindings)
            if unified is None:
                continue
            unified = _says_matches(atom_plan, fact, unified)
            if unified is None:
                continue
            extend(position + 1, unified, antecedents + (fact,), set(applied))

    def _finish(bindings: Bindings, antecedents: Tuple[Fact, ...], applied: set) -> None:
        final = _apply_ready_expressions(plan.expressions, applied, bindings)
        if final is None:
            return
        if len(applied) != len(plan.expressions):
            # Some expression never became evaluable: the rule is unsafe for
            # this binding; skip rather than guessing.
            return
        for atom_plan in negated:
            matches = _candidate_facts(atom_plan, database, final, now)
            if any(unify_atom(atom_plan.atom, fact, final) is not None for fact in matches):
                return
        head_values = tuple(
            evaluate_term(term, final) for term in plan.head.atom.terms
        )
        destination = (
            evaluate_term(plan.head.destination, final)
            if plan.head.destination is not None
            else None
        )
        ordered = (delta,) + antecedents
        firings.append(
            RuleFiring(
                plan=plan,
                head_values=head_values,
                destination=destination,
                antecedents=ordered,
                bindings=final,
            )
        )

    extend(0, initial, (), set())
    return firings


# ---------------------------------------------------------------------------
# Single-site fixpoint evaluation
# ---------------------------------------------------------------------------

@dataclass
class FixpointResult:
    """Result of a single-site fixpoint run."""

    database: Database
    derivations: List[Derivation]
    iterations: int

    def facts(self, relation: str) -> Tuple[Fact, ...]:
        return self.database.facts(relation)


def evaluate_program(
    compiled: CompiledProgram,
    database: Database,
    base_facts: Iterable[Fact],
    now: float = 0.0,
) -> FixpointResult:
    """Run *compiled* to fixpoint over *database* seeded with *base_facts*.

    Aggregate heads are refined monotonically: a derived aggregate tuple only
    replaces the stored one when it improves the aggregate (e.g. a cheaper
    path for ``min``), which guarantees termination of recursive aggregate
    programs such as Best-Path.
    """
    aggregates: Dict[str, AggregateState] = {}
    derivations: List[Derivation] = []
    queue: List[Fact] = []

    for fact in base_facts:
        result = database.insert(fact, now=now)
        if result.inserted:
            derivations.append(
                Derivation(fact=fact, rule_label="base", node=fact.origin, timestamp=now)
            )
            queue.append(fact)

    iterations = 0
    while queue:
        iterations += 1
        delta = queue.pop(0)
        for plan in compiled.plans_triggered_by(delta.relation):
            for delta_index in plan.trigger_indexes(delta.relation):
                for firing in evaluate_plan_with_delta(
                    plan, database, delta, delta_index, now=now
                ):
                    derived = _make_fact(plan, firing, now)
                    accepted = _accept_firing(plan, firing, derived, database, aggregates, now)
                    if accepted is not None:
                        derivations.append(
                            Derivation(
                                fact=accepted,
                                rule_label=plan.label,
                                node=accepted.origin,
                                antecedents=firing.antecedents,
                                timestamp=now,
                            )
                        )
                        queue.append(accepted)

    return FixpointResult(database=database, derivations=derivations, iterations=iterations)


def _make_fact(plan: RulePlan, firing: RuleFiring, now: float) -> Fact:
    origin = str(firing.destination) if firing.destination is not None else None
    return Fact(
        relation=plan.head.predicate,
        values=firing.head_values,
        timestamp=now,
        origin=origin,
    )


def _accept_firing(
    plan: RulePlan,
    firing: RuleFiring,
    derived: Fact,
    database: Database,
    aggregates: Dict[str, AggregateState],
    now: float,
) -> Optional[Fact]:
    """Insert a derived fact, honouring head aggregates.

    Returns the fact actually stored (its aggregate column may differ from
    the firing's raw value), or ``None`` when the firing did not change the
    database.
    """
    head = plan.head
    if head.has_aggregate:
        state = aggregates.setdefault(
            f"{plan.label}:{head.predicate}", AggregateState(head.aggregate.function)
        )
        group = tuple(firing.head_values[i] for i in head.group_by_indexes)
        value = firing.head_values[head.aggregate_index]
        changed = state.update(group, value, contribution_key=firing.head_values)
        if changed is None:
            return None
        updated_values = list(firing.head_values)
        updated_values[head.aggregate_index] = changed
        derived = Fact(
            relation=derived.relation,
            values=tuple(updated_values),
            timestamp=now,
            origin=derived.origin,
        )
    result = database.insert(derived, now=now)
    return derived if result.inserted else None
