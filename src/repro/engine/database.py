"""Per-node database: one :class:`~repro.engine.table.Table` per relation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.datalog.catalog import Catalog, RelationSchema
from repro.datalog.errors import SchemaError
from repro.engine.table import InsertResult, Table
from repro.engine.tuples import Fact


class Database:
    """The relational store of a single node.

    Tables are created lazily from the shared catalog; relations not present
    in the catalog (e.g. intermediate relations introduced by the
    localization rewrite) get an inferred schema on first use.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._tables: Dict[str, Table] = {}

    # -- table access ---------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def table(self, relation: str, arity: Optional[int] = None) -> Table:
        """Return the table for *relation*, creating it on first access."""
        existing = self._tables.get(relation)
        if existing is not None:
            return existing
        if relation in self._catalog:
            schema = self._catalog.schema(relation)
        elif arity is not None:
            schema = RelationSchema(name=relation, arity=arity)
            self._catalog.declare(schema)
        else:
            raise SchemaError(
                f"relation {relation!r} is not in the catalog and no arity was given"
            )
        table = Table(schema)
        self._tables[relation] = table
        return table

    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables.values())

    def relations(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def __contains__(self, relation: str) -> bool:
        return relation in self._tables

    # -- convenience ----------------------------------------------------------

    def insert(self, fact: Fact, now: Optional[float] = None) -> InsertResult:
        table = self.table(fact.relation, arity=len(fact.values))
        return table.insert(fact, now=now)

    def delete(self, fact: Fact) -> bool:
        if fact.relation not in self._tables:
            return False
        return self._tables[fact.relation].delete(fact)

    def facts(self, relation: str) -> Tuple[Fact, ...]:
        if relation not in self._tables:
            return ()
        return self._tables[relation].facts()

    def all_facts(self) -> Iterator[Fact]:
        for table in self._tables.values():
            yield from table

    def count(self, relation: Optional[str] = None) -> int:
        if relation is not None:
            return len(self._tables.get(relation, ()))
        return sum(len(table) for table in self._tables.values())

    def expire(self, now: float) -> List[Fact]:
        """Expire soft state across every table; returns all expired facts."""
        expired: List[Fact] = []
        for table in self._tables.values():
            expired.extend(table.expire(now))
        return expired

    def snapshot(self) -> Dict[str, Tuple[Tuple[object, ...], ...]]:
        """A plain-data snapshot of the database, useful in tests."""
        return {
            name: tuple(sorted(fact.values for fact in table))
            for name, table in self._tables.items()
        }
