"""Built-in function symbols available in NDlog rule bodies.

NDlog programs use function symbols for list/path manipulation (the Best-Path
query builds explicit path vectors) and arithmetic.  Paths are represented as
Python tuples so they remain hashable and can be stored inside facts.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.datalog.errors import EvaluationError

Value = object


def f_init(*items: Value) -> Tuple[Value, ...]:
    """Build an initial path vector from its arguments: ``f_init(S, D) -> (S, D)``."""
    return tuple(items)


def f_concat(item: Value, path: Sequence[Value]) -> Tuple[Value, ...]:
    """Prepend *item* to *path*: ``f_concat(S, (Z, D)) -> (S, Z, D)``."""
    if not isinstance(path, (list, tuple)):
        raise EvaluationError(f"f_concat expects a path, got {path!r}")
    return (item, *tuple(path))


def f_append(path: Sequence[Value], item: Value) -> Tuple[Value, ...]:
    """Append *item* to *path*."""
    if not isinstance(path, (list, tuple)):
        raise EvaluationError(f"f_append expects a path, got {path!r}")
    return (*tuple(path), item)


def f_member(path: Sequence[Value], item: Value) -> int:
    """1 when *item* occurs in *path*, else 0 (NDlog-style boolean)."""
    if not isinstance(path, (list, tuple)):
        raise EvaluationError(f"f_member expects a path, got {path!r}")
    return 1 if item in tuple(path) else 0


def f_size(path: Sequence[Value]) -> int:
    """Number of elements in *path*."""
    if not isinstance(path, (list, tuple)):
        raise EvaluationError(f"f_size expects a path, got {path!r}")
    return len(path)


def f_first(path: Sequence[Value]) -> Value:
    """First element of *path*."""
    if not path:
        raise EvaluationError("f_first of an empty path")
    return tuple(path)[0]


def f_last(path: Sequence[Value]) -> Value:
    """Last element of *path*."""
    if not path:
        raise EvaluationError("f_last of an empty path")
    return tuple(path)[-1]


def _arith(operator: str) -> Callable[[Value, Value], Value]:
    def apply(left: Value, right: Value) -> Value:
        try:
            if operator == "+":
                return left + right  # type: ignore[operator]
            if operator == "-":
                return left - right  # type: ignore[operator]
            if operator == "*":
                return left * right  # type: ignore[operator]
            if operator == "/":
                return left / right  # type: ignore[operator]
        except TypeError as exc:
            raise EvaluationError(
                f"cannot apply {operator!r} to {left!r} and {right!r}"
            ) from exc
        raise EvaluationError(f"unknown arithmetic operator {operator!r}")

    return apply


BUILTIN_FUNCTIONS: Dict[str, Callable[..., Value]] = {
    "f_init": f_init,
    "f_initlist": f_init,
    "f_concat": f_concat,
    "f_append": f_append,
    "f_member": f_member,
    "f_size": f_size,
    "f_first": f_first,
    "f_last": f_last,
    "+": _arith("+"),
    "-": _arith("-"),
    "*": _arith("*"),
    "/": _arith("/"),
}


def call_builtin(name: str, args: Sequence[Value]) -> Value:
    """Invoke the built-in function *name* with *args*."""
    try:
        function = BUILTIN_FUNCTIONS[name]
    except KeyError:
        raise EvaluationError(f"unknown function symbol {name!r}") from None
    return function(*args)
