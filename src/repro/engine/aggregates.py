"""Aggregate evaluation for rule heads (``min<C>``, ``max<C>``, ``count<C>``...).

NDlog aggregates are *incremental group-wise* aggregates: the head's
non-aggregate attributes form the group, and the stored table keeps exactly
one tuple per group holding the current aggregate value.  The Best-Path query
in the paper's evaluation uses ``min<C>`` to keep the cheapest path per
(source, destination) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.datalog.errors import EvaluationError

Value = object
GroupKey = Tuple[Value, ...]

SUPPORTED_AGGREGATES = ("min", "max", "count", "sum")


def aggregate_init(function: str) -> Optional[Value]:
    """Initial aggregate value before any tuple is seen."""
    if function in ("count", "sum"):
        return 0
    if function in ("min", "max"):
        return None
    raise EvaluationError(f"unsupported aggregate function {function!r}")


def aggregate_better(function: str, current: Optional[Value], candidate: Value) -> bool:
    """True when *candidate* improves on the *current* min/max value."""
    if function == "min":
        return current is None or candidate < current
    if function == "max":
        return current is None or candidate > current
    raise EvaluationError(f"{function!r} is not an order-based aggregate")


@dataclass
class AggregateState:
    """Incremental aggregate state for one rule head.

    For ``min``/``max`` the state records the best value per group and only
    reports a change when a strictly better value arrives (monotone
    refinement, which is what makes the recursive Best-Path query converge).
    For ``count``/``sum`` the state folds every distinct contribution exactly
    once, identified by the contribution key supplied by the caller.
    """

    function: str
    best: Dict[GroupKey, Value] = field(default_factory=dict)
    contributions: Dict[GroupKey, set] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.function not in SUPPORTED_AGGREGATES:
            raise EvaluationError(
                f"unsupported aggregate function {self.function!r}; "
                f"supported: {', '.join(SUPPORTED_AGGREGATES)}"
            )

    def update(
        self,
        group: GroupKey,
        value: Value,
        contribution_key: Optional[Tuple[Value, ...]] = None,
    ) -> Optional[Value]:
        """Fold one contribution; return the new aggregate value if it changed."""
        if self.function in ("min", "max"):
            current = self.best.get(group)
            if aggregate_better(self.function, current, value):
                self.best[group] = value
                return value
            return None

        seen = self.contributions.setdefault(group, set())
        marker = contribution_key if contribution_key is not None else (value,)
        if marker in seen:
            return None
        seen.add(marker)
        current = self.best.get(group, aggregate_init(self.function))
        if self.function == "count":
            updated = current + 1
        else:  # sum
            updated = current + value
        self.best[group] = updated
        return updated

    def value(self, group: GroupKey) -> Optional[Value]:
        """Current aggregate value for *group*, or ``None`` if unseen."""
        return self.best.get(group)

    def groups(self) -> Tuple[GroupKey, ...]:
        return tuple(self.best)
