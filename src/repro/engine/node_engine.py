"""The per-node engine: one simulated P2 process.

A :class:`NodeEngine` owns one node's soft-state database, evaluates the
compiled NDlog/SeNDlog program whenever a new tuple arrives (from the local
application or from the network), authenticates imported/exported tuples
according to the configured ``says`` mode, and maintains whichever kinds of
provenance the configuration asks for.

The engine is deliberately independent of the simulator: processing a delta
returns the list of tuples to ship plus a :class:`ProcessingReport` of
operation counters, and the simulator's cost model converts those counters
into simulated CPU time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, List, MutableSequence, Optional, Tuple

from repro.datalog.planner import CompiledProgram, RulePlan
from repro.engine.aggregates import AggregateState
from repro.engine.database import Database
from repro.engine.seminaive import (
    RuleFiring,
    drain_delta_batches,
    evaluate_plan_with_delta,
    expire_probe_tables,
    warm_probe_indexes,
)
from repro.engine.tuples import Derivation, Fact
from repro.provenance.authenticated import (
    ProvenanceVerificationError,
    SignedAnnotation,
    sign_annotation,
    verify_annotation,
)
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.distributed import DistributedProvenanceStore
from repro.provenance.local import LocalProvenanceStore, PiggybackedProvenance
from repro.provenance.pruning import MaintenanceMode, ProvenanceSampler
from repro.provenance.store import OfflineProvenanceArchive, OnlineProvenanceStore
from repro.security.authenticator import AuthenticationError, Authenticator
from repro.security.keystore import KeyStore
from repro.security.principal import PrincipalRegistry
from repro.security.says import SaysMode


class ProvenanceMode(Enum):
    """Which provenance representation a node maintains and ships."""

    #: No provenance at all (plain NDlog / SeNDlog configurations).
    NONE = "none"
    #: Condensed (BDD-minimised) annotations piggy-backed on shipped tuples.
    CONDENSED = "condensed"
    #: Full derivation graphs piggy-backed on shipped tuples (local provenance).
    FULL_LOCAL = "full_local"
    #: Pointers stored per node, nothing shipped (distributed provenance).
    DISTRIBUTED = "distributed"

    @property
    def maintains_provenance(self) -> bool:
        return self is not ProvenanceMode.NONE

    @property
    def ships_provenance(self) -> bool:
        return self in (ProvenanceMode.CONDENSED, ProvenanceMode.FULL_LOCAL)


@dataclass
class EngineConfig:
    """Configuration of one node engine.

    The three configurations evaluated in Section 6 map to:

    * NDlog          — ``says_mode=NONE``,   ``provenance_mode=NONE``
    * SeNDlog        — ``says_mode=SIGNED``, ``provenance_mode=NONE``
    * SeNDlogProv    — ``says_mode=SIGNED``, ``provenance_mode=CONDENSED``
    """

    says_mode: SaysMode = SaysMode.NONE
    provenance_mode: ProvenanceMode = ProvenanceMode.NONE
    maintenance_mode: MaintenanceMode = MaintenanceMode.PROACTIVE
    sampler: Optional[ProvenanceSampler] = None
    keep_online_provenance: bool = False
    keep_offline_provenance: bool = False
    offline_retention: Optional[float] = None
    default_ttl: Optional[float] = None


@dataclass(slots=True)
class ProcessingReport:
    """Operation counters produced while processing one delta."""

    facts_received: int = 0
    facts_verified: int = 0
    verification_failures: int = 0
    facts_rejected: int = 0
    signatures_created: int = 0
    facts_inserted: int = 0
    facts_derived: int = 0
    rule_firings: int = 0
    payload_bytes_processed: int = 0
    provenance_annotations: int = 0
    provenance_bytes_computed: int = 0
    provenance_signatures: int = 0
    provenance_verifications: int = 0

    def merge(self, other: "ProcessingReport") -> None:
        self.facts_received += other.facts_received
        self.facts_verified += other.facts_verified
        self.verification_failures += other.verification_failures
        self.facts_rejected += other.facts_rejected
        self.signatures_created += other.signatures_created
        self.facts_inserted += other.facts_inserted
        self.facts_derived += other.facts_derived
        self.rule_firings += other.rule_firings
        self.payload_bytes_processed += other.payload_bytes_processed
        self.provenance_annotations += other.provenance_annotations
        self.provenance_bytes_computed += other.provenance_bytes_computed
        self.provenance_signatures += other.provenance_signatures
        self.provenance_verifications += other.provenance_verifications


@dataclass(eq=False, slots=True)
class OutgoingFact:
    """A derived tuple that must be shipped to another node."""

    destination: str
    fact: Fact
    security_bytes: int
    provenance_bytes: int


@dataclass(slots=True)
class ProcessingResult:
    """Everything one call to :meth:`NodeEngine.process` produced."""

    outgoing: List[OutgoingFact] = field(default_factory=list)
    report: ProcessingReport = field(default_factory=ProcessingReport)
    new_facts: List[Fact] = field(default_factory=list)


def group_outgoing(outgoing: List[OutgoingFact]) -> Dict[str, List[OutgoingFact]]:
    """Group one delta round's outgoing tuples by destination.

    Destinations appear in first-send order and each group preserves the
    engine's FIFO derivation order, so batching the groups onto the wire
    keeps per-destination delivery order identical to the per-tuple path.
    """
    grouped: Dict[str, List[OutgoingFact]] = {}
    for item in outgoing:
        bucket = grouped.get(item.destination)
        if bucket is None:
            grouped[item.destination] = [item]
        else:
            bucket.append(item)
    return grouped


_TTL_MISS = object()


class NodeEngine:
    """One simulated declarative-networking node."""

    def __init__(
        self,
        address: str,
        compiled: CompiledProgram,
        config: EngineConfig,
        keystore: Optional[KeyStore] = None,
        registry: Optional[PrincipalRegistry] = None,
    ) -> None:
        self.address = address
        self.compiled = compiled
        self.config = config
        self.keystore = keystore or KeyStore()
        self.registry = registry or PrincipalRegistry()
        self.registry.register(address)

        from repro.datalog.catalog import Catalog

        self.database = Database(Catalog.from_program(compiled.program))
        self.authenticator = Authenticator(address, self.keystore, config.says_mode)
        self.aggregates: Dict[str, AggregateState] = {}
        self._ttl_cache: Dict[str, Optional[float]] = {}
        # Per-firing hot-path flags, hoisted out of the enum properties.
        self._authenticates = config.says_mode.authenticates
        self._requires_signature = config.says_mode.requires_signature
        self._maintains_provenance = config.provenance_mode.maintains_provenance
        self._ships_provenance = config.provenance_mode.ships_provenance

        self.local_provenance = LocalProvenanceStore(address)
        self.distributed_provenance = DistributedProvenanceStore(address)
        self.online_provenance = OnlineProvenanceStore(address)
        self.offline_provenance = OfflineProvenanceArchive(
            address, retention=config.offline_retention
        )

    # -- public entry points ----------------------------------------------------

    def insert_base(self, fact: Fact, now: float = 0.0) -> ProcessingResult:
        """Insert a base (application-provided) fact at this node."""
        result = ProcessingResult()
        prepared = self._attribute_local(fact, now)
        if self._maintains_provenance:
            if self._should_record(prepared):
                self.local_provenance.record_base(prepared, source=self.address)
                self.distributed_provenance.record_base(prepared)
        self._process_local(prepared, now, result)
        return result

    def receive(
        self, fact: Fact, now: float, provenance: Optional[object] = None
    ) -> ProcessingResult:
        """Process a tuple received from the network."""
        result = ProcessingResult()
        result.report.facts_received += 1
        result.report.payload_bytes_processed += fact.payload_size()
        try:
            verified = self.authenticator.import_fact(fact)
            if self._requires_signature:
                result.report.facts_verified += 1
        except AuthenticationError:
            result.report.verification_failures += 1
            result.report.facts_rejected += 1
            return result

        if self._maintains_provenance:
            incoming = provenance if provenance is not None else verified.provenance
            if isinstance(incoming, SignedAnnotation):
                try:
                    if not verify_annotation(incoming, self.keystore):
                        result.report.verification_failures += 1
                        result.report.facts_rejected += 1
                        return result
                    result.report.provenance_verifications += 1
                except ProvenanceVerificationError:
                    result.report.verification_failures += 1
                    result.report.facts_rejected += 1
                    return result
                incoming = incoming.annotation
                verified = verified.with_metadata(provenance=incoming)
            # Sampled provenance (Section 5): received tuples obey the same
            # sampler as base facts and local derivations — verification above
            # is a security decision and is never sampled away.
            if self._should_record(verified):
                self._record_remote_provenance(verified, incoming)

        self._process_local(verified, now, result)
        return result

    # -- queries -----------------------------------------------------------------

    def facts(self, relation: str) -> Tuple[Fact, ...]:
        return self.database.facts(relation)

    def provenance_of(self, fact: Fact) -> CondensedProvenance:
        """Condensed provenance annotation of a locally stored fact."""
        return self.local_provenance.annotation(fact.key())

    # -- internals ----------------------------------------------------------------

    def _attribute_local(self, fact: Fact, now: float) -> Fact:
        ttl = fact.ttl if fact.ttl is not None else self._ttl_for(fact.relation)
        prepared = Fact(
            relation=fact.relation,
            values=fact.values,
            timestamp=now,
            ttl=ttl,
            asserted_by=(
                self.address if self._authenticates else fact.asserted_by
            ),
            origin=self.address,
            provenance=fact.provenance,
        )
        return prepared

    def _ttl_for(self, relation: str) -> Optional[float]:
        cached = self._ttl_cache.get(relation, _TTL_MISS)
        if cached is not _TTL_MISS:
            return cached
        ttl = self.config.default_ttl
        if relation in self.database.catalog:
            lifetime = self.database.catalog.schema(relation).lifetime
            if lifetime is not None:
                ttl = lifetime
        self._ttl_cache[relation] = ttl
        return ttl

    def _should_record(self, fact: Fact) -> bool:
        sampler = self.config.sampler
        if sampler is None:
            return True
        return sampler.should_record(fact.key())

    def _record_remote_provenance(self, fact: Fact, provenance: Optional[object]) -> None:
        piggyback = provenance if isinstance(provenance, PiggybackedProvenance) else None
        condensed = provenance if isinstance(provenance, CondensedProvenance) else None
        if condensed is None and isinstance(fact.provenance, CondensedProvenance):
            condensed = fact.provenance
        if piggyback is not None:
            self.local_provenance.record_remote(fact, piggyback)
        elif condensed is not None:
            self.local_provenance.record_remote_condensed(fact, condensed)
        else:
            self.local_provenance.record_remote(fact, None)
        self.distributed_provenance.record_remote(fact, fact.origin)

    def _process_local(self, fact: Fact, now: float, result: ProcessingResult) -> None:
        """Insert *fact* and run the local delta fixpoint it triggers.

        Deltas are drained as batches of consecutive same-relation tuples
        (exact FIFO order preserved), so the hash indexes a batch probes are
        warmed once per batch rather than once per delta.
        """
        queue: Deque[Fact] = deque()
        if self._store(fact, now, result):
            queue.append(fact)

        for relation, batch, pairs in drain_delta_batches(queue, self.compiled):
            if not pairs:
                continue
            warm_probe_indexes(self.compiled, relation, self.database)
            expire_probe_tables(self.compiled, relation, self.database, now)
            for delta in batch:
                for plan, delta_indexes in pairs:
                    for delta_index in delta_indexes:
                        firings = evaluate_plan_with_delta(
                            plan, self.database, delta, delta_index
                        )
                        for firing in firings:
                            result.report.rule_firings += 1
                            self._handle_firing(plan, firing, now, result, queue)

    def _handle_firing(
        self,
        plan: RulePlan,
        firing: RuleFiring,
        now: float,
        result: ProcessingResult,
        queue: MutableSequence[Fact],
    ) -> None:
        derived_values = firing.head_values
        head = plan.head

        if head.aggregate is not None:
            state = self.aggregates.get(plan.aggregate_key)
            if state is None:
                state = self.aggregates[plan.aggregate_key] = AggregateState(
                    head.aggregate.function
                )
            group = tuple(derived_values[i] for i in head.group_by_indexes)
            value = derived_values[head.aggregate_index]
            changed = state.update(group, value, contribution_key=derived_values)
            if changed is None:
                return
            updated = list(derived_values)
            updated[head.aggregate_index] = changed
            derived_values = tuple(updated)

        destination = (
            str(firing.destination) if firing.destination is not None else self.address
        )
        derived = Fact(
            relation=head.predicate,
            values=derived_values,
            timestamp=now,
            ttl=self._ttl_for(head.predicate),
            origin=self.address,
        )
        result.report.facts_derived += 1
        result.report.payload_bytes_processed += derived.payload_size()

        annotation = self._record_derivation(derived, plan, firing, now, result)

        if destination == self.address:
            local_fact = (
                derived.with_metadata(asserted_by=self.address)
                if self._authenticates
                else derived
            )
            if annotation is not None:
                local_fact = local_fact.with_metadata(provenance=annotation)
            if self._store(local_fact, now, result):
                queue.append(local_fact)
            return

        exported = self.authenticator.export_fact(derived)
        if self._requires_signature:
            result.report.signatures_created += 1
        provenance_bytes = 0
        if annotation is not None and self._ships_provenance:
            shipped_annotation: object = annotation
            if self._requires_signature:
                # Authenticated provenance (Section 4.3): the exporting
                # principal signs the condensed annotation it asserts.
                shipped_annotation = sign_annotation(
                    annotation, self.address, self.keystore
                )
                result.report.provenance_signatures += 1
                provenance_bytes = shipped_annotation.wire_size()
            else:
                provenance_bytes = annotation.serialized_size()
            exported = exported.with_metadata(provenance=shipped_annotation)
            if self.config.provenance_mode is ProvenanceMode.FULL_LOCAL:
                piggyback = self.local_provenance.piggyback_for(derived)
                provenance_bytes = max(
                    provenance_bytes,
                    piggyback.serialized_size(condensed_only=False),
                )
            result.report.provenance_bytes_computed += provenance_bytes
        result.outgoing.append(
            OutgoingFact(
                destination=destination,
                fact=exported,
                security_bytes=self.authenticator.wire_overhead(exported),
                provenance_bytes=provenance_bytes,
            )
        )

    def _record_derivation(
        self,
        derived: Fact,
        plan: RulePlan,
        firing: RuleFiring,
        now: float,
        result: ProcessingResult,
    ) -> Optional[CondensedProvenance]:
        if not self._maintains_provenance:
            return None
        if not self._should_record(derived):
            return None
        derivation = Derivation(
            fact=derived,
            rule_label=plan.label,
            node=self.address,
            antecedents=firing.antecedents,
            timestamp=now,
        )
        annotation = self.local_provenance.record_derivation(derivation)
        self.distributed_provenance.record_derivation(derivation)
        if self.config.keep_online_provenance:
            self.online_provenance.record(derivation, annotation)
        if self.config.keep_offline_provenance:
            self.offline_provenance.record(derivation, annotation)
        result.report.provenance_annotations += 1
        return annotation

    def _store(self, fact: Fact, now: float, result: ProcessingResult) -> bool:
        insert = self.database.insert(fact, now=now)
        if insert.inserted:
            result.report.facts_inserted += 1
            result.new_facts.append(fact)
            return True
        return False
