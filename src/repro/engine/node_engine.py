"""The per-node engine: one simulated P2 process.

A :class:`NodeEngine` owns one node's soft-state database, evaluates the
compiled NDlog/SeNDlog program whenever a new tuple arrives (from the local
application or from the network), authenticates imported/exported tuples
according to the configured ``says`` mode, and maintains whichever kinds of
provenance the configuration asks for.

The engine is deliberately independent of the simulator: processing a delta
returns the list of tuples to ship plus a :class:`ProcessingReport` of
operation counters, and the simulator's cost model converts those counters
into simulated CPU time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, Iterable, List, MutableSequence, Optional, Set, Tuple

from repro.datalog.planner import CompiledProgram, RulePlan
from repro.engine.aggregates import AggregateState
from repro.engine.database import Database
from repro.engine.seminaive import (
    RuleFiring,
    drain_delta_batches,
    evaluate_plan_with_delta,
    expire_probe_tables,
    warm_probe_indexes,
)
from repro.engine.tuples import Derivation, Fact, FactKey
from repro.provenance.authenticated import (
    ProvenanceVerificationError,
    SignedAnnotation,
    sign_annotation,
    verify_annotation,
)
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.distributed import DistributedProvenanceStore
from repro.provenance.local import LocalProvenanceStore, PiggybackedProvenance
from repro.provenance.polynomial import ProvenanceExpression
from repro.provenance.pruning import MaintenanceMode, ProvenanceSampler
from repro.provenance.store import OfflineProvenanceArchive, OnlineProvenanceStore
from repro.security.authenticator import AuthenticationError, Authenticator
from repro.security.keystore import KeyStore
from repro.security.principal import PrincipalRegistry
from repro.security.says import SaysMode


class ProvenanceMode(Enum):
    """Which provenance representation a node maintains and ships."""

    #: No provenance at all (plain NDlog / SeNDlog configurations).
    NONE = "none"
    #: Condensed (BDD-minimised) annotations piggy-backed on shipped tuples.
    CONDENSED = "condensed"
    #: Full derivation graphs piggy-backed on shipped tuples (local provenance).
    FULL_LOCAL = "full_local"
    #: Pointers stored per node, nothing shipped (distributed provenance).
    DISTRIBUTED = "distributed"

    @property
    def maintains_provenance(self) -> bool:
        return self is not ProvenanceMode.NONE

    @property
    def ships_provenance(self) -> bool:
        return self in (ProvenanceMode.CONDENSED, ProvenanceMode.FULL_LOCAL)


@dataclass
class EngineConfig:
    """Configuration of one node engine.

    The three configurations evaluated in Section 6 map to:

    * NDlog          — ``says_mode=NONE``,   ``provenance_mode=NONE``
    * SeNDlog        — ``says_mode=SIGNED``, ``provenance_mode=NONE``
    * SeNDlogProv    — ``says_mode=SIGNED``, ``provenance_mode=CONDENSED``
    """

    says_mode: SaysMode = SaysMode.NONE
    provenance_mode: ProvenanceMode = ProvenanceMode.NONE
    maintenance_mode: MaintenanceMode = MaintenanceMode.PROACTIVE
    sampler: Optional[ProvenanceSampler] = None
    keep_online_provenance: bool = False
    keep_offline_provenance: bool = False
    offline_retention: Optional[float] = None
    #: Offline-archive representation: ``"memory"`` keeps every entry in an
    #: unbounded in-memory log; ``"tiered"`` bounds residency with an LRU
    #: hot tier over a write-through spill log (see provenance/tiers.py).
    provenance_store: str = "memory"
    #: Hot-tier capacity (archived entries) for ``provenance_store="tiered"``.
    hot_tier_entries: int = 256
    #: Directory for the tiered archive's per-node spill logs; ``None``
    #: falls back to a per-process directory under the system tempdir.
    spill_dir: Optional[str] = None
    default_ttl: Optional[float] = None
    #: Maintain the antecedent -> derived-tuple index that lets
    #: :meth:`NodeEngine.retract_base` cascade invalidation through local
    #: derivations.  Off by default: it costs a dict update per antecedent
    #: per firing, and the static evaluation sweeps never retract.
    track_dependencies: bool = False
    #: One-fixpoint deletions: maintain a base-support polynomial (a
    #: semiring annotation over *base tuple keys*) per stored/exported
    #: tuple, so :meth:`NodeEngine.retract_base` can decide survival
    #: exactly — a tuple survives iff a monomial free of the retracted
    #: base remains — instead of over-deleting and waiting for TTL decay.
    #: Exported facts ship their polynomial; remote copies are chased with
    #: anti-deltas carrying the retracted base keys.
    rederivation: bool = False
    #: Refresh-wave propagation threshold in seconds.  When positive, a
    #: re-asserted (TTL-refreshed) tuple whose previous copy is at least
    #: this old propagates through the rules again, refreshing derived and
    #: downstream copies; ``0.0`` (the default) keeps refreshes local to
    #: the owner, the round-based behavior.  The timer-wheel refresh plane
    #: sets this to half the refresh interval.
    refresh_propagation: float = 0.0


@dataclass(slots=True)
class ProcessingReport:
    """Operation counters produced while processing one delta."""

    facts_received: int = 0
    facts_verified: int = 0
    verification_failures: int = 0
    facts_rejected: int = 0
    signatures_created: int = 0
    facts_inserted: int = 0
    facts_derived: int = 0
    facts_retracted: int = 0
    #: Tuples that *survived* a retraction pass because a surviving
    #: alternative derivation exists (their base-support polynomial stayed
    #: nonzero after pruning the retracted base).
    rederivations: int = 0
    rule_firings: int = 0
    payload_bytes_processed: int = 0
    provenance_annotations: int = 0
    provenance_bytes_computed: int = 0
    provenance_signatures: int = 0
    provenance_verifications: int = 0

    def merge(self, other: "ProcessingReport") -> None:
        self.facts_received += other.facts_received
        self.facts_verified += other.facts_verified
        self.verification_failures += other.verification_failures
        self.facts_rejected += other.facts_rejected
        self.signatures_created += other.signatures_created
        self.facts_inserted += other.facts_inserted
        self.facts_derived += other.facts_derived
        self.facts_retracted += other.facts_retracted
        self.rederivations += other.rederivations
        self.rule_firings += other.rule_firings
        self.payload_bytes_processed += other.payload_bytes_processed
        self.provenance_annotations += other.provenance_annotations
        self.provenance_bytes_computed += other.provenance_bytes_computed
        self.provenance_signatures += other.provenance_signatures
        self.provenance_verifications += other.provenance_verifications


@dataclass(eq=False, slots=True)
class OutgoingFact:
    """A derived tuple that must be shipped to another node."""

    destination: str
    fact: Fact
    security_bytes: int
    provenance_bytes: int


@dataclass(slots=True)
class ProcessingResult:
    """Everything one call to :meth:`NodeEngine.process` produced."""

    outgoing: List[OutgoingFact] = field(default_factory=list)
    report: ProcessingReport = field(default_factory=ProcessingReport)
    new_facts: List[Fact] = field(default_factory=list)
    #: Anti-delta fanout produced by a retraction pass: destination address
    #: -> retracted base keys that destination must be told about (it holds
    #: tuples whose shipped support polynomial mentions them).  Empty except
    #: under ``rederivation=True``.
    anti_deltas: Dict[str, List[FactKey]] = field(default_factory=dict)


def facts_by_node(
    engines: Dict[str, "NodeEngine"], relation: str
) -> Dict[str, Tuple[Fact, ...]]:
    """All stored facts of *relation*, per node — the one snapshot helper
    behind every result object's ``facts()``."""
    return {
        address: engine.facts(relation) for address, engine in engines.items()
    }


def collect_facts(
    engines: Dict[str, "NodeEngine"], relation: str
) -> Tuple[Fact, ...]:
    """All stored facts of *relation* across *engines*, in node order."""
    collected: List[Fact] = []
    for engine in engines.values():
        collected.extend(engine.facts(relation))
    return tuple(collected)


def group_outgoing(outgoing: List[OutgoingFact]) -> Dict[str, List[OutgoingFact]]:
    """Group one delta round's outgoing tuples by destination.

    Destinations appear in first-send order and each group preserves the
    engine's FIFO derivation order, so batching the groups onto the wire
    keeps per-destination delivery order identical to the per-tuple path.
    """
    grouped: Dict[str, List[OutgoingFact]] = {}
    for item in outgoing:
        bucket = grouped.get(item.destination)
        if bucket is None:
            grouped[item.destination] = [item]
        else:
            bucket.append(item)
    return grouped


_TTL_MISS = object()


def _build_offline_archive(address: str, config: EngineConfig):
    """The offline archive selected by ``config.provenance_store``."""
    if config.provenance_store == "tiered":
        from repro.provenance.tiers import TieredProvenanceArchive

        return TieredProvenanceArchive(
            address,
            retention=config.offline_retention,
            hot_entries=config.hot_tier_entries,
            spill_dir=config.spill_dir,
        )
    if config.provenance_store == "memory":
        return OfflineProvenanceArchive(
            address, retention=config.offline_retention
        )
    raise ValueError(
        f"unknown provenance_store {config.provenance_store!r}; expected "
        "'memory' or 'tiered'"
    )


class NodeEngine:
    """One simulated declarative-networking node."""

    def __init__(
        self,
        address: str,
        compiled: CompiledProgram,
        config: EngineConfig,
        keystore: Optional[KeyStore] = None,
        registry: Optional[PrincipalRegistry] = None,
    ) -> None:
        self.address = address
        self.compiled = compiled
        self.config = config
        self.keystore = keystore or KeyStore()
        self.registry = registry or PrincipalRegistry()
        self.registry.register(address)

        from repro.datalog.catalog import Catalog

        self.database = Database(Catalog.from_program(compiled.program))
        self.authenticator = Authenticator(address, self.keystore, config.says_mode)
        self.aggregates: Dict[str, AggregateState] = {}
        self._ttl_cache: Dict[str, Optional[float]] = {}
        # Per-firing hot-path flags, hoisted out of the enum properties.
        self._authenticates = config.says_mode.authenticates
        self._requires_signature = config.says_mode.requires_signature
        self._maintains_provenance = config.provenance_mode.maintains_provenance
        self._ships_provenance = config.provenance_mode.ships_provenance
        self._track_dependencies = config.track_dependencies
        self._rederivation = config.rederivation
        self._refresh_propagation = config.refresh_propagation
        #: Antecedent tuples feed provenance recording, retraction dependency
        #: tracking and base-support polynomials; configurations needing none
        #: of those skip accumulating them in the join loops entirely.
        self._collect_antecedents = (
            self._maintains_provenance
            or self._track_dependencies
            or self._rederivation
        )
        #: Retraction support: antecedent key -> ordered set of locally
        #: derived keys it supports (maintained only under track_dependencies).
        self._dependents: Dict[FactKey, Dict[FactKey, None]] = {}
        #: One-fixpoint deletion state (``rederivation=True`` only).
        #: Base-support polynomial per stored/exported tuple key — a sum of
        #: monomials, each a conjunction of *rendered base tuple keys* that
        #: suffices to derive the tuple.
        self._support: Dict[FactKey, ProvenanceExpression] = {}
        #: Reverse index: rendered base key -> tuple keys whose polynomial
        #: mentions it (insertion-ordered; entries may go stale when a merge
        #: drops a variable and are re-checked against the live polynomial).
        self._base_uses: Dict[str, Dict[FactKey, None]] = {}
        #: Rendered base keys known retracted.  Dedups anti-delta floods
        #: (monotone per epoch, so the flood terminates) and prunes stale
        #: in-flight support; re-inserting a base clears its mark.
        self._dead_bases: Set[str] = set()
        #: Rendered base key -> destinations that received an exported tuple
        #: whose polynomial mentions it — the anti-delta fanout targets.
        self._export_dests: Dict[str, Dict[str, None]] = {}
        #: Active refresh-wave memo (keys already propagated this wave), or
        #: ``None`` outside wave processing.  See :meth:`refresh_batch`.
        self._wave: Optional[Set[FactKey]] = None
        #: Aggregate-head relations: predicate -> (aggregate state key, head
        #: plan) per rule, used to forget groups when their stored tuple is
        #: retracted or expires (so a refreshed, possibly worse, contribution
        #: can re-establish the group instead of being rejected forever).
        self._aggregate_heads: Dict[str, List[Tuple[str, object]]] = {}
        self._index_aggregate_heads()

        self.local_provenance = LocalProvenanceStore(address)
        self.distributed_provenance = DistributedProvenanceStore(address)
        self.online_provenance = OnlineProvenanceStore(address)
        self.offline_provenance = _build_offline_archive(address, config)
        #: Monotonic generation counter of this node's provenance stores,
        #: bumped on every mutation (base/derivation/remote recording,
        #: invalidation cascades, crash resets).  The service plane's query
        #: result cache tags each memoized closure with the epoch it was
        #: computed under and discards entries the moment the epoch moves,
        #: which is what guarantees a cached traceback is structurally
        #: identical to a cold walk at the same simulated instant.
        self.provenance_epoch = 0

    def _index_aggregate_heads(self) -> None:
        """(Re)build the aggregate-head index and the table expiry hooks."""
        self._aggregate_heads.clear()
        for plan in self.compiled.plans:
            if plan.head.aggregate is not None:
                self._aggregate_heads.setdefault(plan.head.predicate, []).append(
                    (plan.aggregate_key, plan.head)
                )
        for relation, entries in self._aggregate_heads.items():
            _, head = entries[0]
            table = self.database.table(relation, arity=len(head.atom.terms))
            table.on_expire = self._forget_expired_aggregates

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship an engine without its compiled program.

        The compiled plans carry cached closures (unifiers, head builders)
        that cannot — and need not — cross a process boundary: every worker
        and the coordinator compile the identical program from its AST.  The
        aggregate-head index holds references into those plans, so it is
        dropped too; :meth:`attach_program` restores both.
        """
        state = self.__dict__.copy()
        state["compiled"] = None
        state["_aggregate_heads"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def attach_program(self, compiled: CompiledProgram) -> None:
        """Reattach the compiled program after unpickling.

        The program must compile from the same source the engine ran with;
        plans are looked up by structure (head predicates, aggregate keys),
        so any equivalent compilation restores identical behavior.
        """
        self.compiled = compiled
        self._index_aggregate_heads()

    # -- public entry points ----------------------------------------------------

    def insert_base(self, fact: Fact, now: float = 0.0) -> ProcessingResult:
        """Insert a base (application-provided) fact at this node."""
        result = ProcessingResult()
        prepared = self._attribute_local(fact, now)
        if self._maintains_provenance:
            if self._should_record(prepared):
                self.provenance_epoch += 1
                self.local_provenance.record_base(prepared, source=self.address)
                self.distributed_provenance.record_base(prepared)
                if self.config.keep_offline_provenance:
                    # The persistent log keeps the pointer-chasing shape of
                    # the live store, so offline traceback queries can walk
                    # it even after a crash wiped the in-memory stores.
                    self.offline_provenance.record_base(prepared)
        if self._rederivation:
            self._note_base_support(prepared)
        self._process_local(prepared, now, result)
        return result

    def receive(
        self, fact: Fact, now: float, provenance: Optional[object] = None
    ) -> ProcessingResult:
        """Process a tuple received from the network."""
        result = ProcessingResult()
        verified = self._admit(fact, provenance, result)
        if verified is not None:
            self._process_local(verified, now, result)
        return result

    def receive_batch(self, facts: Iterable[Fact], now: float) -> ProcessingResult:
        """Process one incoming wire batch through a single result/report.

        Tuples are admitted and locally fixpointed strictly in arrival order
        — exactly the per-tuple :meth:`receive` semantics, so the derived
        facts, shipped tuples and report counters are identical — but the
        whole batch shares one :class:`ProcessingResult` /
        :class:`ProcessingReport`, one delta queue, and one probe-index
        warm-up memo instead of paying the per-call overhead N times.

        The caller accounts the merged report once; the cost model is linear
        in its counters, so batch-level accounting charges exactly the same
        CPU time as per-tuple accounting would.

        One deliberate difference: every tuple of the batch is stamped with
        the same *now* (the delivery instant), whereas the per-tuple caller
        advances ``now`` by each tuple's accrued CPU.  With TTLs comparable
        to per-tuple CPU deltas an expiry boundary can therefore fall
        between the two paths; the evaluation workloads are TTL-free and
        scenario TTLs are orders of magnitude above per-tuple CPU, where the
        paths are indistinguishable (asserted in tests).
        """
        result = ProcessingResult()
        queue: Deque[Fact] = deque()
        warmed: Set[str] = set()
        # Under the timer-wheel refresh plane remote deliveries run in wave
        # mode too: an arriving duplicate whose stored copy has aged past
        # the propagation threshold re-propagates, which is how one owner's
        # refresh wave re-stamps derived state across node boundaries.
        wave_mode = self._refresh_propagation > 0.0 and self._wave is None
        if wave_mode:
            self._wave = set()
        try:
            for fact in facts:
                verified = self._admit(fact, fact.provenance, result)
                if verified is None:
                    continue
                if self._store(verified, now, result):
                    queue.append(verified)
                    self._drain(queue, now, result, warmed)
        finally:
            if wave_mode:
                self._wave = None
        return result

    def retract_base(self, fact: Fact, now: float = 0.0) -> ProcessingResult:
        """Withdraw a base fact, cascading invalidation through local state.

        Under ``rederivation=True`` this is the full DRed story in one pass:
        the retracted base is pruned out of every affected base-support
        polynomial (via the reverse index — no transitive search), tuples
        whose polynomial survives stay put (counted as ``rederivations``),
        tuples whose polynomial zeroes out are deleted, and the result's
        ``anti_deltas`` name every destination that must be told (it holds
        exported tuples whose shipped polynomial mentions the base).  The
        caller ships those as :class:`~repro.net.message.AntiDelta` wire
        messages; receivers run :meth:`retract_remote`, so a retraction
        converges in a single distributed fixpoint.

        Without rederivation only the over-deleting half runs: the stored
        tuple is deleted and — when ``track_dependencies`` is on — every
        locally derived tuple transitively supported by it.  Nothing is
        shipped; remote copies decay through soft-state expiry and are
        repaired by refresh traffic, the paper's original dynamic-network
        story.

        Either way, aggregate groups of deleted aggregate-head tuples are
        forgotten so refreshed (possibly worse) alternatives can
        re-establish them, and the queryable provenance stores stop
        vouching for every invalidated tuple; the offline archive
        deliberately keeps the historical record for forensics.
        """
        if self._rederivation:
            result = ProcessingResult()
            self._apply_dead_bases((fact.key(),), now, result)
            return result
        result = ProcessingResult()
        queue: Deque[FactKey] = deque((fact.key(),))
        seen: Set[FactKey] = {fact.key()}
        swept: Set[str] = set()
        while queue:
            key = queue.popleft()
            relation, values = key
            table = self.database.table(relation, arity=len(values))
            # Expiry first (once per relation — idempotent at fixed *now*):
            # a tuple whose TTL already elapsed ceased to exist on its own —
            # it must neither count as retraction work nor be charged CPU,
            # though its provenance is still invalidated below and its
            # dependents still cascade.
            if relation not in swept:
                swept.add(relation)
                table.expire(now)
            current = table.get_by_values(values)
            if current is not None:
                table.delete(current)
                result.report.facts_retracted += 1
                self._forget_aggregate_groups(relation, values)
            self._invalidate_provenance(key)
            for dependent in self._dependents.pop(key, ()):
                if dependent not in seen:
                    seen.add(dependent)
                    queue.append(dependent)
        return result

    def retract_remote(
        self, keys: Iterable[FactKey], now: float
    ) -> ProcessingResult:
        """Process an anti-delta: base keys retracted somewhere upstream.

        Runs the same polynomial-pruning pass as a local retraction and
        cascades: the result's ``anti_deltas`` carry the keys onward to any
        destination *this* node exported affected tuples to.  The per-node
        dead-base set dedups re-deliveries, so the flood over the export
        graph terminates even on cyclic topologies.
        """
        result = ProcessingResult()
        self._apply_dead_bases(tuple(keys), now, result)
        return result

    def refresh_batch(self, facts: Iterable[Fact], now: float) -> ProcessingResult:
        """Re-assert owned base tuples as one refresh wave.

        The timer-wheel refresh plane calls this with the due tuples of one
        node at one instant.  Each tuple is re-inserted exactly like
        :meth:`insert_base` (provenance recorded, TTL restamped), but the
        whole batch runs in *wave mode*: a refresh that would normally stop
        at the owner (the tuple already exists) propagates through the rules
        again when the stored copy's age exceeds ``refresh_propagation``,
        re-deriving and re-shipping so downstream soft state is re-stamped
        before it decays.  The wave memo caps each tuple at one propagation
        per wave and the age gate stops waves re-triggering each other, so
        the wave terminates.
        """
        result = ProcessingResult()
        queue: Deque[Fact] = deque()
        warmed: Set[str] = set()
        self._wave = set()
        try:
            for fact in facts:
                prepared = self._attribute_local(fact, now)
                if self._maintains_provenance and self._should_record(prepared):
                    self.provenance_epoch += 1
                    self.local_provenance.record_base(
                        prepared, source=self.address
                    )
                    self.distributed_provenance.record_base(prepared)
                    if self.config.keep_offline_provenance:
                        self.offline_provenance.record_base(prepared)
                if self._rederivation:
                    self._note_base_support(prepared)
                if self._store(prepared, now, result):
                    queue.append(prepared)
                    self._drain(queue, now, result, warmed)
        finally:
            self._wave = None
        return result

    def settle_retractions(self) -> None:
        """End-of-fixpoint bookkeeping for one-fixpoint deletions.

        The dead-base set exists to catch in-flight facts racing an
        anti-delta flood: while the deletion fixpoint is running, an
        arriving polynomial mentioning a dead base describes a derivation
        that no longer exists and is pruned (:meth:`_merge_incoming_support`).
        Once the network is quiescent nothing is in flight, and *keeping*
        the marks would make a later re-assertion of the same base — a link
        flap restored, a recovered node re-injecting — look dead on
        arrival.  The kernel calls this when its scheduler drains (both
        backends, at the same logical instant), so the marks live exactly
        as long as the fixpoint they guard.
        """
        self._dead_bases.clear()

    def reset_state(self) -> None:
        """Crash semantics: lose all runtime state.

        Database tables, aggregate state, the dependency index and the
        in-memory provenance stores are wiped; the offline provenance
        archive — modelling a persistent log — survives the crash, which is
        what makes post-mortem forensics of a failed node possible.  Under
        the tiered archive the crash costs exactly the volatile hot tier:
        the spill log persists and every entry stays answerable offline.
        """
        for table in self.database.tables():
            table.clear()
        self.aggregates.clear()
        self._dependents.clear()
        self._support.clear()
        self._base_uses.clear()
        self._dead_bases.clear()
        self._export_dests.clear()
        self.provenance_epoch += 1
        self.local_provenance = LocalProvenanceStore(self.address)
        self.distributed_provenance = DistributedProvenanceStore(self.address)
        self.online_provenance = OnlineProvenanceStore(self.address)
        self.offline_provenance.drop_cache()

    # -- queries -----------------------------------------------------------------

    def facts(self, relation: str) -> Tuple[Fact, ...]:
        return self.database.facts(relation)

    def provenance_of(self, fact: Fact) -> CondensedProvenance:
        """Condensed provenance annotation of a locally stored fact."""
        return self.local_provenance.annotation(fact.key())

    # -- internals ----------------------------------------------------------------

    def _admit(
        self, fact: Fact, provenance: Optional[object], result: ProcessingResult
    ) -> Optional[Fact]:
        """Authenticate one received tuple and record its provenance.

        Returns the verified fact ready for local processing, or ``None``
        when authentication or provenance verification rejected it (the
        rejection counters are recorded on *result* either way).
        """
        result.report.facts_received += 1
        result.report.payload_bytes_processed += fact.payload_size()
        try:
            verified = self.authenticator.import_fact(fact)
            if self._requires_signature:
                result.report.facts_verified += 1
        except AuthenticationError:
            result.report.verification_failures += 1
            result.report.facts_rejected += 1
            return None

        if self._maintains_provenance:
            incoming = provenance if provenance is not None else verified.provenance
            if isinstance(incoming, SignedAnnotation):
                try:
                    if not verify_annotation(incoming, self.keystore):
                        result.report.verification_failures += 1
                        result.report.facts_rejected += 1
                        return None
                    result.report.provenance_verifications += 1
                except ProvenanceVerificationError:
                    result.report.verification_failures += 1
                    result.report.facts_rejected += 1
                    return None
                incoming = incoming.annotation
                verified = verified.with_metadata(provenance=incoming)
            # Sampled provenance (Section 5): received tuples obey the same
            # sampler as base facts and local derivations — verification above
            # is a security decision and is never sampled away.
            if self._should_record(verified):
                self._record_remote_provenance(verified, incoming)
        if self._rederivation and not self._merge_incoming_support(verified):
            # Every derivation the sender knew for this tuple rested on a
            # base this node already saw retracted: the fact was in flight
            # when the anti-delta overtook it, and storing it would revive
            # state the deletion fixpoint just cleaned up.
            return None
        return verified

    def _attribute_local(self, fact: Fact, now: float) -> Fact:
        ttl = fact.ttl if fact.ttl is not None else self._ttl_for(fact.relation)
        prepared = Fact(
            relation=fact.relation,
            values=fact.values,
            timestamp=now,
            ttl=ttl,
            asserted_by=(
                self.address if self._authenticates else fact.asserted_by
            ),
            origin=self.address,
            provenance=fact.provenance,
        )
        return prepared

    def _ttl_for(self, relation: str) -> Optional[float]:
        cached = self._ttl_cache.get(relation, _TTL_MISS)
        if cached is not _TTL_MISS:
            return cached
        ttl = self.config.default_ttl
        if relation in self.database.catalog:
            lifetime = self.database.catalog.schema(relation).lifetime
            if lifetime is not None:
                ttl = lifetime
        self._ttl_cache[relation] = ttl
        return ttl

    def _should_record(self, fact: Fact) -> bool:
        sampler = self.config.sampler
        if sampler is None:
            return True
        return sampler.should_record(fact.key())

    def _record_remote_provenance(self, fact: Fact, provenance: Optional[object]) -> None:
        self.provenance_epoch += 1
        piggyback = provenance if isinstance(provenance, PiggybackedProvenance) else None
        condensed = provenance if isinstance(provenance, CondensedProvenance) else None
        if condensed is None and isinstance(fact.provenance, CondensedProvenance):
            condensed = fact.provenance
        if piggyback is not None:
            self.local_provenance.record_remote(fact, piggyback)
        elif condensed is not None:
            self.local_provenance.record_remote_condensed(fact, condensed)
        else:
            self.local_provenance.record_remote(fact, None)
        self.distributed_provenance.record_remote(fact, fact.origin)
        if self.config.keep_offline_provenance:
            self.offline_provenance.record_remote(fact, fact.origin)

    def _process_local(self, fact: Fact, now: float, result: ProcessingResult) -> None:
        """Insert *fact* and run the local delta fixpoint it triggers."""
        queue: Deque[Fact] = deque()
        if self._store(fact, now, result):
            queue.append(fact)
            self._drain(queue, now, result, set())

    def _drain(
        self,
        queue: Deque[Fact],
        now: float,
        result: ProcessingResult,
        warmed: Set[str],
    ) -> None:
        """Run the local delta fixpoint in *queue* to empty.

        Deltas are drained as batches of consecutive same-relation tuples
        (exact FIFO order preserved), so the hash indexes a batch probes are
        warmed once per batch rather than once per delta; the *warmed* memo
        additionally skips re-warming relations this drain (or, for
        :meth:`receive_batch`, this whole incoming wire batch) has already
        warmed — indexes are maintained incrementally once built.
        """
        for relation, batch, pairs in drain_delta_batches(queue, self.compiled):
            if not pairs:
                continue
            warm_probe_indexes(self.compiled, relation, self.database, warmed)
            expire_probe_tables(self.compiled, relation, self.database, now)
            for delta in batch:
                for plan, delta_indexes in pairs:
                    for delta_index in delta_indexes:
                        firings = evaluate_plan_with_delta(
                            plan,
                            self.database,
                            delta,
                            delta_index,
                            collect_antecedents=self._collect_antecedents,
                        )
                        for firing in firings:
                            result.report.rule_firings += 1
                            self._handle_firing(plan, firing, now, result, queue)

    def _handle_firing(
        self,
        plan: RulePlan,
        firing: RuleFiring,
        now: float,
        result: ProcessingResult,
        queue: MutableSequence[Fact],
    ) -> None:
        derived_values = firing.head_values
        head = plan.head

        if head.aggregate is not None:
            state = self.aggregates.get(plan.aggregate_key)
            if state is None:
                state = self.aggregates[plan.aggregate_key] = AggregateState(
                    head.aggregate.function
                )
            group = tuple(derived_values[i] for i in head.group_by_indexes)
            value = derived_values[head.aggregate_index]
            changed = state.update(group, value, contribution_key=derived_values)
            if changed is None:
                # Refresh waves re-emit the standing best: the contribution
                # matching the current aggregate value did not *change* the
                # group, but downstream copies of that value still need
                # their TTLs re-stamped.
                if self._wave is None or state.best.get(group) != value:
                    return
                changed = value
            updated = list(derived_values)
            updated[head.aggregate_index] = changed
            derived_values = tuple(updated)

        destination = (
            str(firing.destination) if firing.destination is not None else self.address
        )
        derived = Fact(
            relation=head.predicate,
            values=derived_values,
            timestamp=now,
            ttl=self._ttl_for(head.predicate),
            origin=self.address,
        )
        result.report.facts_derived += 1

        support: Optional[ProvenanceExpression] = None
        if self._rederivation:
            support = self._support_product(firing.antecedents)

        annotation = self._record_derivation(derived, plan, firing, now, result)
        # Remote-destined derivations are indexed too: they are not stored
        # locally, but this node *recorded their provenance*, which a
        # retraction cascade must be able to reach and invalidate.
        if self._track_dependencies:
            self._record_dependencies(derived, firing)

        if destination == self.address:
            if support is not None:
                self._note_support(derived.key(), support)
            local_fact = derived
            if self._authenticates or annotation is not None:
                local_fact = derived.with_metadata(
                    asserted_by=self.address if self._authenticates else None,
                    provenance=annotation,
                )
            if self._store(local_fact, now, result):
                queue.append(local_fact)
            # Counted after the store: an immediately deduplicated fact
            # reuses the stored duplicate's cached rendering (shared by the
            # table on refresh) instead of re-rendering its payload, and the
            # charged size is identical — equal tuples have equal payloads.
            result.report.payload_bytes_processed += local_fact.payload_size()
            return

        # Remote tuples render their payload regardless (export signs it and
        # the wire model measures it), so the count happens up front.
        result.report.payload_bytes_processed += derived.payload_size()
        exported = self.authenticator.export_fact(derived)
        if self._requires_signature:
            result.report.signatures_created += 1
        provenance_bytes = 0
        if annotation is not None and self._ships_provenance:
            shipped_annotation: object = annotation
            if self._requires_signature:
                # Authenticated provenance (Section 4.3): the exporting
                # principal signs the condensed annotation it asserts.
                shipped_annotation = sign_annotation(
                    annotation, self.address, self.keystore
                )
                result.report.provenance_signatures += 1
                provenance_bytes = shipped_annotation.wire_size()
            else:
                provenance_bytes = annotation.serialized_size()
            exported = exported.with_metadata(provenance=shipped_annotation)
            if self.config.provenance_mode is ProvenanceMode.FULL_LOCAL:
                piggyback = self.local_provenance.piggyback_for(derived)
                provenance_bytes = max(
                    provenance_bytes,
                    piggyback.serialized_size(condensed_only=False),
                )
            result.report.provenance_bytes_computed += provenance_bytes
        if support is not None:
            # The base-support polynomial rides the export (charged as
            # provenance overhead on the wire) so the receiver can answer a
            # later anti-delta locally; remember where each mentioned base
            # travelled — those are the anti-delta fanout targets.
            exported = exported.with_metadata(support=support)
            provenance_bytes += support.serialized_size()
            dests = self._export_dests
            for var in support.variables():
                bucket = dests.get(var)
                if bucket is None:
                    bucket = dests[var] = {}
                bucket[destination] = None
        result.outgoing.append(
            OutgoingFact(
                destination=destination,
                fact=exported,
                security_bytes=self.authenticator.wire_overhead(exported),
                provenance_bytes=provenance_bytes,
            )
        )

    def _record_derivation(
        self,
        derived: Fact,
        plan: RulePlan,
        firing: RuleFiring,
        now: float,
        result: ProcessingResult,
    ) -> Optional[CondensedProvenance]:
        if not self._maintains_provenance:
            return None
        if not self._should_record(derived):
            return None
        derivation = Derivation(
            fact=derived,
            rule_label=plan.label,
            node=self.address,
            antecedents=firing.antecedents,
            timestamp=now,
        )
        self.provenance_epoch += 1
        annotation = self.local_provenance.record_derivation(derivation)
        self.distributed_provenance.record_derivation(derivation)
        if self.config.keep_online_provenance:
            self.online_provenance.record(derivation, annotation)
        if self.config.keep_offline_provenance:
            self.offline_provenance.record(derivation, annotation)
        result.report.provenance_annotations += 1
        return annotation

    def _record_dependencies(self, derived: Fact, firing: RuleFiring) -> None:
        """Index *derived* under each antecedent for retraction cascades.

        Every recorded support edge is kept (a tuple with several derivations
        is indexed under all of them): the cascade over-deletes, and
        re-derivation happens through refresh traffic — standard DRed split.
        """
        derived_key = derived.key()
        for antecedent in firing.antecedents:
            key = antecedent.key()
            if key == derived_key:
                continue
            bucket = self._dependents.get(key)
            if bucket is None:
                bucket = self._dependents[key] = {}
            bucket[derived_key] = None

    def _forget_aggregate_groups(
        self, relation: str, values: Tuple[object, ...]
    ) -> None:
        """Forget the aggregate group a deleted tuple of *relation* occupied."""
        for aggregate_key, head in self._aggregate_heads.get(relation, ()):
            state = self.aggregates.get(aggregate_key)
            if state is None:
                continue
            group = tuple(values[i] for i in head.group_by_indexes)
            state.best.pop(group, None)
            state.contributions.pop(group, None)

    def _forget_expired_aggregates(self, expired: List[Fact]) -> None:
        """Table expiry hook: an expired aggregate tuple frees its group.

        Without this, a soft-state ``min``/``max`` relation could never be
        re-established after expiry — the aggregate state would keep
        rejecting refreshed contributions that are no better than the value
        the network has already forgotten.

        The group is only freed while the aggregate state still mirrors the
        expired tuple: an insert-triggered sweep can fire *after* a firing
        already recorded a fresher best for the group (the stored invariant
        tuple expires as its replacement arrives), and wiping that would
        let a later, worse contribution displace the fresher value.
        """
        for fact in expired:
            for aggregate_key, head in self._aggregate_heads.get(fact.relation, ()):
                state = self.aggregates.get(aggregate_key)
                if state is None:
                    continue
                group = tuple(fact.values[i] for i in head.group_by_indexes)
                if state.best.get(group) == fact.values[head.aggregate_index]:
                    state.best.pop(group, None)
                    state.contributions.pop(group, None)

    def _invalidate_provenance(self, key: FactKey) -> None:
        if not self._maintains_provenance:
            return
        self.provenance_epoch += 1
        self.local_provenance.invalidate(key)
        self.distributed_provenance.invalidate(key)
        # The online store is queryable state too; only the offline archive
        # (the persistent log) keeps the historical record.
        self.online_provenance.delete(key)

    # -- one-fixpoint deletions (rederivation=True) -------------------------------

    @staticmethod
    def _base_var(key: FactKey) -> str:
        """Render a base tuple key as a support-polynomial variable.

        ``repr`` per value keeps the rendering injective (strings are
        quoted, so ``link('a','b')`` can never collide with a differently
        typed tuple) and literal-eval round-trippable for the binary wire
        codec.
        """
        relation, values = key
        rendered = ",".join(repr(value) for value in values)
        return f"{relation}({rendered})"

    def _note_base_support(self, fact: Fact) -> None:
        """A base insert supports itself; (re)asserting clears a dead mark."""
        var = self._base_var(fact.key())
        self._dead_bases.discard(var)
        self._note_support(fact.key(), ProvenanceExpression.var(var))

    def _note_support(self, key: FactKey, poly: ProvenanceExpression) -> None:
        """Merge *poly* into the support of *key* and index its bases.

        Merging is ``+`` then condense: absorption makes it idempotent, so
        refresh waves re-recording the same derivations leave the
        polynomial (and the reverse index) unchanged.
        """
        existing = self._support.get(key)
        if existing is not None:
            if existing == poly:
                return
            poly = (existing + poly).condense()
            if poly == existing:
                return
        self._support[key] = poly
        uses = self._base_uses
        for var in poly.variables():
            bucket = uses.get(var)
            if bucket is None:
                bucket = uses[var] = {}
            bucket[key] = None

    def _support_product(
        self, antecedents: Tuple[Fact, ...]
    ) -> ProvenanceExpression:
        """The support polynomial of a firing: product of its antecedents'.

        An antecedent with no recorded support (stored before rederivation
        was enabled, or shipped by a sender running without it) is
        conservatively treated as its own base.
        """
        product: Optional[ProvenanceExpression] = None
        for antecedent in antecedents:
            poly = self._support.get(antecedent.key())
            if poly is None:
                poly = ProvenanceExpression.var(self._base_var(antecedent.key()))
            product = poly if product is None else product * poly
        if product is None:
            return ProvenanceExpression.one()
        return product.condense()

    def _merge_incoming_support(self, fact: Fact) -> bool:
        """Fold a received fact's shipped polynomial into the local index.

        Monomials resting on a base this node already knows retracted are
        pruned on arrival — they describe derivations that no longer exist
        (the fact crossed an anti-delta in flight).  Returns ``False`` when
        *every* monomial is dead, i.e. the fact must not be stored.
        """
        support = fact.support
        if not isinstance(support, ProvenanceExpression):
            return True
        dead = self._dead_bases
        if dead:
            kept = {
                monomial: coefficient
                for monomial, coefficient in support.monomials
                if not any(var in dead for var, _ in monomial)
            }
            if len(kept) != len(support.monomials):
                if not kept:
                    return False
                support = ProvenanceExpression.from_monomials(kept)
        self._note_support(fact.key(), support)
        return True

    def _apply_dead_bases(
        self,
        base_keys: Tuple[FactKey, ...],
        now: float,
        result: ProcessingResult,
    ) -> None:
        """One deletion pass: prune retracted bases, delete zeroed tuples.

        For each newly dead base the reverse index names exactly the tuples
        whose polynomial mentions it — no transitive search.  Dropping the
        dead monomials either leaves a nonzero polynomial (the tuple
        survives on an alternative derivation: one ``rederivation``) or
        zeroes it (the tuple and its queryable provenance go).  Every
        destination the base ever travelled to inside an exported
        polynomial is queued in ``result.anti_deltas`` so the caller can
        continue the fixpoint across the wire.

        Surviving *stored* tuples re-enter the delta pipeline after the
        pruning pass.  Their downstream copies were shipped with the
        polynomial current at fire time — possibly a strict subset of
        today's (duplicate arrivals merge polynomial growth locally but do
        not re-export it) — so the copy at the receiver can zero out on the
        anti-delta even though an alternative derivation survives here.
        Re-firing the survivor re-derives and re-ships that state with the
        pruned, up-to-date support: an arriving copy either merges into a
        still-live tuple or re-inserts a deleted one, and a re-insert
        cascades onward, so the repair travels exactly as far as the
        over-deletion did — all inside the same distributed fixpoint.
        """
        fresh: List[Tuple[FactKey, str]] = []
        for key in base_keys:
            var = self._base_var(key)
            if var in self._dead_bases:
                continue  # flood dedup: this retraction already ran here
            self._dead_bases.add(var)
            fresh.append((key, var))
        swept: Set[str] = set()
        revived: List[Fact] = []
        for key, var in fresh:
            for affected in self._base_uses.pop(var, {}):
                poly = self._support.get(affected)
                if poly is None:
                    continue  # stale index entry: tuple already deleted
                kept = {
                    monomial: coefficient
                    for monomial, coefficient in poly.monomials
                    if not any(v == var for v, _ in monomial)
                }
                if len(kept) == len(poly.monomials):
                    continue  # stale index entry: a merge dropped the base
                relation, values = affected
                table = self.database.table(relation, arity=len(values))
                # Expiry first (idempotent at fixed *now*): a tuple whose
                # TTL already elapsed must not count as retraction work,
                # nor may a survivor that only exists as an expired row be
                # re-fired into the rules.
                if relation not in swept:
                    swept.add(relation)
                    table.expire(now)
                current = table.get_by_values(values)
                if kept:
                    self._support[affected] = ProvenanceExpression.from_monomials(
                        kept
                    )
                    result.report.rederivations += 1
                    if current is not None:
                        revived.append(current)
                    continue
                del self._support[affected]
                if current is not None:
                    table.delete(current)
                    result.report.facts_retracted += 1
                    self._forget_aggregate_groups(relation, values)
                self._invalidate_provenance(affected)
            for destination in self._export_dests.pop(var, {}):
                bucket = result.anti_deltas.get(destination)
                if bucket is None:
                    bucket = result.anti_deltas[destination] = []
                bucket.append(key)
        if revived:
            queue: Deque[Fact] = deque(revived)
            self._drain(queue, now, result, set())

    # -- storage ------------------------------------------------------------------

    def _store(self, fact: Fact, now: float, result: ProcessingResult) -> bool:
        wave = self._wave
        previous = None
        if wave is not None:
            table = self.database.table(fact.relation, arity=len(fact.values))
            previous = table.get_by_values(fact.values)
        insert = self.database.insert(fact, now=now)
        if insert.inserted:
            result.report.facts_inserted += 1
            result.new_facts.append(fact)
            return True
        if wave is None or not insert.refreshed:
            return False
        # Refresh-wave propagation: an in-place TTL refresh of a copy old
        # enough to need re-stamping downstream re-enters the delta queue.
        # The wave memo caps each key at one propagation per wave; the age
        # gate keeps waves from re-triggering each other (a tuple coming
        # back around a cycle carries a fresh timestamp).
        key = fact.key()
        if key in wave:
            return False
        if (
            previous is not None
            and now - previous.timestamp < self._refresh_propagation
        ):
            return False
        wave.add(key)
        return True
