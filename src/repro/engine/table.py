"""Soft-state tables.

A :class:`Table` stores the facts of one relation at one node, with the
semantics declarative networking inherits from P2:

* **primary keys** — a newly inserted fact replaces any stored fact that
  agrees on the relation's key columns (update semantics); with no declared
  keys the whole tuple is the key, giving plain set semantics;
* **soft state** — facts carry TTLs and are lazily expired whenever the table
  is read or written at a later simulation time (the time-based sliding
  window of Section 2.1);
* **bounded size** — an optional maximum size evicts the oldest facts first.

Tables also maintain hash indexes over requested column subsets so that the
semi-naive join probes are O(matching tuples) rather than O(table).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.catalog import RelationSchema
from repro.engine.tuples import Fact, Value


def _columns_getter(columns: Sequence[int]) -> Callable[[Tuple[Value, ...]], Tuple[Value, ...]]:
    """A C-level extractor for *columns* that always returns a tuple."""
    if not columns:
        return lambda values: ()
    if len(columns) == 1:
        only = columns[0]
        return lambda values: (values[only],)
    from operator import itemgetter

    return itemgetter(*columns)


@dataclass(frozen=True)
class InsertResult:
    """Outcome of a table insertion.

    ``inserted`` is True when the table contents changed (a genuinely new
    tuple, or an update that replaced a tuple with different non-key values);
    ``replaced`` holds the previously stored fact that was displaced, if any;
    ``refreshed`` is True when an identical tuple was already present and
    only its timestamp/TTL was refreshed.
    """

    inserted: bool
    replaced: Optional[Fact] = None
    refreshed: bool = False


#: Shared results for the two overwhelmingly common outcomes; only a
#: key-replacement insert carries per-call state (the displaced fact).
_INSERTED = InsertResult(inserted=True)
_REFRESHED = InsertResult(inserted=False, refreshed=True)


class Table:
    """Facts of one relation at one node, with soft-state semantics."""

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._rows: "OrderedDict[Tuple[Value, ...], Fact]" = OrderedDict()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Value, ...], List[Fact]]] = {}
        self._index_getters: Dict[Tuple[int, ...], Callable] = {}
        self._primary_key = _columns_getter(schema.key_columns)
        #: Number of stored facts carrying a TTL; expiry scans are skipped
        #: entirely while this is zero (hard-state tables never pay for them).
        self._soft_count = 0
        #: Optional observer called with the batch of facts each expiry
        #: sweep removed.  The node engine hooks aggregate-head tables here
        #: so expired aggregate groups can be re-established by later
        #: (possibly worse) contributions.
        self.on_expire: Optional[Callable[[List[Fact]], None]] = None

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the compiled extractors, hash indexes and expiry hook.

        The column getters are closures/`itemgetter`s (unpicklable, and
        cheap to recompile), the indexes are derived state rebuilt lazily on
        the first probe, and ``on_expire`` is a bound method of the owning
        engine re-hooked by ``NodeEngine.attach_program``.  Stored rows and
        the soft-state counter — the actual table contents — travel.
        """
        state = self.__dict__.copy()
        state["_indexes"] = {}
        state["_index_getters"] = {}
        state["_primary_key"] = None
        state["on_expire"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._primary_key = _columns_getter(self.schema.key_columns)

    # -- basic protocol -------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Fact]:
        return iter(list(self._rows.values()))

    def __contains__(self, fact: Fact) -> bool:
        stored = self._rows.get(self._primary_key(fact.values))
        return stored is not None and stored.values == fact.values

    def facts(self) -> Tuple[Fact, ...]:
        return tuple(self._rows.values())

    # -- mutation -------------------------------------------------------------

    def insert(self, fact: Fact, now: Optional[float] = None) -> InsertResult:
        """Insert *fact*, applying primary-key replacement semantics."""
        if now is not None:
            self.expire(now)

        key = self._primary_key(fact.values)
        existing = self._rows.get(key)

        if existing is not None and existing.values == fact.values:
            # Same tuple: refresh soft-state metadata in place.  The payload
            # depends only on relation/values, so an already rendered
            # serialization is handed to the refreshing copy — immediately
            # deduplicated derivations never pay the rendering twice.
            if fact._payload_cache is None and existing._payload_cache is not None:
                fact._payload_cache = existing._payload_cache
            self._rows[key] = fact
            self._reindex_replace(existing, fact)
            self._soft_count += (fact.ttl is not None) - (existing.ttl is not None)
            return _REFRESHED

        if existing is not None:
            self._remove_fact(key, existing)
            self._store(key, fact)
            return InsertResult(inserted=True, replaced=existing)

        self._store(key, fact)
        self._enforce_max_size()
        return _INSERTED

    def delete(self, fact: Fact) -> bool:
        """Delete the stored fact matching *fact*'s values; return True if removed."""
        key = self._primary_key(fact.values)
        existing = self._rows.get(key)
        if existing is None or existing.values != fact.values:
            return False
        self._remove_fact(key, existing)
        return True

    def expire(self, now: float) -> List[Fact]:
        """Remove and return every fact whose TTL has elapsed at time *now*.

        O(1) when no stored fact carries a TTL (the common hard-state case).
        """
        if not self._soft_count:
            return []
        expired = [fact for fact in self._rows.values() if fact.is_expired(now)]
        for fact in expired:
            self._remove_fact(self._primary_key(fact.values), fact)
        if expired and self.on_expire is not None:
            self.on_expire(expired)
        return expired

    @property
    def has_soft_state(self) -> bool:
        """True when at least one stored fact can expire."""
        return self._soft_count > 0

    def clear(self) -> None:
        self._rows.clear()
        self._indexes.clear()
        self._index_getters.clear()
        self._soft_count = 0

    # -- lookups --------------------------------------------------------------

    def lookup(
        self, columns: Sequence[int], values: Sequence[Value]
    ) -> Tuple[Fact, ...]:
        """Return the stored facts whose *columns* equal *values*.

        Builds (and thereafter maintains) a hash index on the column subset.
        """
        columns_key = tuple(columns)
        if not columns_key:
            return self.facts()
        index = self._indexes.get(columns_key)
        if index is None:
            index = self._build_index(columns_key)
        return tuple(index.get(tuple(values), ()))

    def ensure_index(self, columns: Sequence[int]) -> None:
        """Build (if absent) the hash index over *columns*.

        Used by the batched delta pipeline to warm every index a batch will
        probe before the joins start.
        """
        columns_key = tuple(columns)
        if columns_key and columns_key not in self._indexes:
            self._build_index(columns_key)

    def get_by_values(self, values: Sequence[Value]) -> Optional[Fact]:
        stored = self._rows.get(self._primary_key(tuple(values)))
        if stored is not None and stored.values == tuple(values):
            return stored
        return None

    def scan(self, now: Optional[float] = None) -> Tuple[Fact, ...]:
        """All live facts; expires soft state first when *now* is given."""
        if now is not None:
            self.expire(now)
        return self.facts()

    # -- internals ------------------------------------------------------------

    def _store(self, key: Tuple[Value, ...], fact: Fact) -> None:
        self._rows[key] = fact
        if fact.ttl is not None:
            self._soft_count += 1
        for columns, index in self._indexes.items():
            bucket_key = self._index_getters[columns](fact.values)
            index.setdefault(bucket_key, []).append(fact)

    def _remove_fact(self, key: Tuple[Value, ...], fact: Fact) -> None:
        self._rows.pop(key, None)
        if fact.ttl is not None:
            self._soft_count -= 1
        for columns, index in self._indexes.items():
            bucket_key = self._index_getters[columns](fact.values)
            bucket = index.get(bucket_key)
            if bucket is None:
                continue
            # Remove by identity: Fact equality ignores metadata, so removing
            # by value could evict a different-but-equal fact and leave this
            # one as a stale reference in the bucket.
            for position, stored in enumerate(bucket):
                if stored is fact:
                    del bucket[position]
                    break
            if not bucket:
                del index[bucket_key]

    def _reindex_replace(self, old: Fact, new: Fact) -> None:
        for columns, index in self._indexes.items():
            bucket = index.get(self._index_getters[columns](old.values))
            if bucket is None:
                continue
            for i, stored in enumerate(bucket):
                if stored is old:
                    bucket[i] = new
                    break

    def _build_index(
        self, columns: Tuple[int, ...]
    ) -> Dict[Tuple[Value, ...], List[Fact]]:
        getter = self._index_getters.get(columns)
        if getter is None:
            getter = self._index_getters[columns] = _columns_getter(columns)
        index: Dict[Tuple[Value, ...], List[Fact]] = {}
        for fact in self._rows.values():
            index.setdefault(getter(fact.values), []).append(fact)
        self._indexes[columns] = index
        return index

    def _enforce_max_size(self) -> None:
        limit = self.schema.max_size
        if limit is None:
            return
        while len(self._rows) > limit:
            oldest_key = next(iter(self._rows))
            self._remove_fact(oldest_key, self._rows[oldest_key])
