"""Library of NDlog / SeNDlog programs used by the paper and the use cases."""

from repro.queries.reachable import (
    REACHABLE_NDLOG,
    REACHABLE_SENDLOG,
    reachable_program,
)
from repro.queries.best_path import (
    BEST_PATH_NDLOG,
    best_path_program,
    compile_best_path,
)
from repro.queries.path_vector import DISTANCE_VECTOR_NDLOG, PATH_VECTOR_NDLOG
from repro.queries.monitoring import ROUTE_FLAP_MONITOR_NDLOG

__all__ = [
    "BEST_PATH_NDLOG",
    "DISTANCE_VECTOR_NDLOG",
    "PATH_VECTOR_NDLOG",
    "REACHABLE_NDLOG",
    "REACHABLE_SENDLOG",
    "ROUTE_FLAP_MONITOR_NDLOG",
    "best_path_program",
    "compile_best_path",
    "reachable_program",
]
