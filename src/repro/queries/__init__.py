"""Library of NDlog / SeNDlog programs used by the paper and the use cases.

:data:`PROGRAMS` is the named-program registry the :class:`repro.api.Network`
facade resolves ``program="best-path"``-style arguments against; use
:func:`compile_named` directly when you want the compiled plans without a
network around them.
"""

from typing import Callable, Dict

from repro.datalog.planner import CompiledProgram

from repro.queries.reachable import (
    REACHABLE_LOCALIZED,
    REACHABLE_NDLOG,
    REACHABLE_SENDLOG,
    reachable_program,
)
from repro.queries.best_path import (
    BEST_PATH_NDLOG,
    best_path_program,
    compile_best_path,
)
from repro.queries.path_vector import DISTANCE_VECTOR_NDLOG, PATH_VECTOR_NDLOG
from repro.queries.monitoring import ROUTE_FLAP_MONITOR_NDLOG


def compile_reachable() -> CompiledProgram:
    """Compile the directly-executable all-pairs reachability program."""
    from repro.datalog import localize_program, parse_program
    from repro.datalog.planner import compile_program

    return compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


#: Named programs resolvable by ``Network.build(program="<name>")``.
PROGRAMS: Dict[str, Callable[[], CompiledProgram]] = {
    "best-path": compile_best_path,
    "reachable": compile_reachable,
}


def compile_named(name: str) -> CompiledProgram:
    """Compile a program from the registry by name."""
    try:
        factory = PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown program {name!r}; expected one of {sorted(PROGRAMS)} "
            "(or pass NDlog source text / a CompiledProgram)"
        ) from None
    return factory()


__all__ = [
    "BEST_PATH_NDLOG",
    "DISTANCE_VECTOR_NDLOG",
    "PATH_VECTOR_NDLOG",
    "PROGRAMS",
    "REACHABLE_LOCALIZED",
    "REACHABLE_NDLOG",
    "REACHABLE_SENDLOG",
    "ROUTE_FLAP_MONITOR_NDLOG",
    "best_path_program",
    "compile_best_path",
    "compile_named",
    "compile_reachable",
    "reachable_program",
]
