"""The all-pairs reachability programs of Section 2.

``REACHABLE_NDLOG`` is the two-rule NDlog query of Section 2.1 (a distributed
transitive closure); ``REACHABLE_SENDLOG`` is the SeNDlog variant of
Section 2.2 written within a principal's context with ``says`` imports.
"""

from __future__ import annotations

from repro.datalog import Program, parse_program

REACHABLE_NDLOG = """
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(reachable, infinity, infinity, keys(1,2)).

    r1 reachable(@S, D) :- link(@S, D).
    r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).
"""

REACHABLE_SENDLOG = """
    At S:
    s1 reachable(S, D) :- link(S, D).
    s2 linkD(D, S)@D :- link(S, D).
    s3 reachable(Z, Y)@Z :- Z says linkD(S, Z), W says reachable(S, Y).
"""

#: A localized reachability program executable directly by the distributed
#: engine: links are first advertised to their destination, and reachability
#: propagates backwards along them.  Equivalent fixpoint to REACHABLE_NDLOG.
REACHABLE_LOCALIZED = """
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(linkd, infinity, infinity, keys(1,2)).
    materialize(reachable, infinity, infinity, keys(1,2)).

    l1 reachable(@S, D) :- link(@S, D).
    l2 linkd(@D, S) :- link(@S, D).
    l3 reachable(@S, D) :- linkd(@Z, S), reachable(@Z, D).
"""


def reachable_program(dialect: str = "ndlog") -> Program:
    """Parse and return the reachability program for *dialect*.

    ``dialect`` is one of ``"ndlog"`` (Section 2.1), ``"sendlog"``
    (Section 2.2) or ``"localized"`` (directly executable form).
    """
    sources = {
        "ndlog": REACHABLE_NDLOG,
        "sendlog": REACHABLE_SENDLOG,
        "localized": REACHABLE_LOCALIZED,
    }
    try:
        source = sources[dialect]
    except KeyError:
        raise ValueError(
            f"unknown dialect {dialect!r}; expected one of {sorted(sources)}"
        ) from None
    return parse_program(source)
