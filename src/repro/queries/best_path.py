"""The Best-Path query used by the paper's evaluation (Section 6).

"We utilize the Best-Path recursive query that computes the shortest paths
between all pairs of nodes.  This query is obtained from the NDlog all-pairs
reachability query presented in Section 2, with additional predicates to
compute the actual path, cost of the path, and two extra rules for computing
the best paths."

Rules:

* ``p1`` — one-hop paths directly from links;
* ``p2`` — extend a neighbour's best path by one link (propagating only best
  paths keeps the recursion convergent);
* ``p3`` — the ``min<C>`` aggregate keeping the cheapest cost per
  (source, destination) pair;
* ``p4`` — the best path itself: the path whose cost equals the minimum.

Rule ``p2`` joins ``link`` stored at ``S`` with ``bestPath`` stored at ``Z``,
so the program must pass through the localization rewrite before compilation;
:func:`compile_best_path` does both steps.
"""

from __future__ import annotations

from repro.datalog import Program, localize_program, parse_program
from repro.datalog.planner import CompiledProgram, compile_program

BEST_PATH_NDLOG = """
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2,3)).
    materialize(bestPathCost, infinity, infinity, keys(1,2)).
    materialize(bestPath, infinity, infinity, keys(1,2)).

    p1 path(@S, D, P, C) :- link(@S, D, C), P := f_init(S, D).
    p2 path(@S, D, P, C) :- link(@S, Z, C1), bestPath(@Z, D, P2, C2),
                            S != D, f_member(P2, S) == 0,
                            C := C1 + C2, P := f_concat(S, P2).
    p3 bestPathCost(@S, D, min<C>) :- path(@S, D, _P, C).
    p4 bestPath(@S, D, P, C) :- bestPathCost(@S, D, C), path(@S, D, P, C).
"""


def best_path_program() -> Program:
    """Parse the Best-Path query (pre-localization form)."""
    return parse_program(BEST_PATH_NDLOG)


def compile_best_path() -> CompiledProgram:
    """Localize and compile the Best-Path query for the distributed engine."""
    return compile_program(localize_program(best_path_program()))
