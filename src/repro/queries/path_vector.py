"""Path-vector and distance-vector routing protocols in NDlog.

Section 2.1 notes that "by modifying this simple example, we can construct
more complex routing protocols, such as the distance vector and path vector
routing protocols"; Section 3 uses the path-vector protocol (BGP-style) as
the canonical trust-management example, since carrying the full path is
itself a form of provenance that lets ASes enforce policies on route
announcements.
"""

from __future__ import annotations

from repro.datalog import Program, localize_program, parse_program
from repro.datalog.planner import CompiledProgram, compile_program

#: Path-vector protocol: every advertisement carries the full AS path, and a
#: node refuses routes that already contain itself (loop avoidance — the
#: policy enforcement hook).
PATH_VECTOR_NDLOG = """
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(route, infinity, infinity, keys(1,2,3)).

    v1 route(@S, D, P) :- link(@S, D, _C), P := f_init(S, D).
    v2 route(@S, D, P) :- link(@S, Z, _C), route(@Z, D, P2),
                          f_member(P2, S) == 0, P := f_concat(S, P2).
"""

#: Distance-vector protocol: only the cost is advertised, with the classic
#: min-cost aggregate selecting the best distance per destination.
DISTANCE_VECTOR_NDLOG = """
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(hop, infinity, infinity, keys(1,2,3)).
    materialize(distance, infinity, infinity, keys(1,2)).

    d1 hop(@S, D, D, C) :- link(@S, D, C).
    d2 hop(@S, D, Z, C) :- link(@S, Z, C1), distance(@Z, D, C2), S != D, C := C1 + C2.
    d3 distance(@S, D, min<C>) :- hop(@S, D, _Z, C).
"""


def path_vector_program() -> Program:
    """Parse the path-vector protocol."""
    return parse_program(PATH_VECTOR_NDLOG)


def distance_vector_program() -> Program:
    """Parse the distance-vector protocol."""
    return parse_program(DISTANCE_VECTOR_NDLOG)


def compile_path_vector() -> CompiledProgram:
    """Localize and compile the path-vector protocol."""
    return compile_program(localize_program(path_vector_program()))


def compile_distance_vector() -> CompiledProgram:
    """Localize and compile the distance-vector protocol."""
    return compile_program(localize_program(distance_vector_program()))
