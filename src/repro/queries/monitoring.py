"""Real-time diagnostics queries (Section 3, "Real-time Diagnostics").

The paper sketches a continuous SeNDlog query that counts the changes to a
routing-table entry over the past ``T`` seconds and raises an alarm when the
count exceeds a threshold, as an indication of possible divergence or
malicious activity.  ``ROUTE_FLAP_MONITOR_NDLOG`` is that query: route
updates become soft-state ``routeEvent`` tuples with a ``T``-second lifetime
(the sliding window), a ``count`` aggregate tallies the live events per
destination, and an alarm fires when the count crosses the threshold.

The actual anomaly reaction — querying the provenance of the flapping route
and purging state derived from the offending node — is implemented in
:mod:`repro.usecases.diagnostics`.
"""

from __future__ import annotations

from repro.datalog import Program, parse_program

#: Window length (soft-state lifetime of one route-change event), seconds.
DEFAULT_WINDOW_SECONDS = 30.0
#: Number of changes within the window that triggers an alarm.
DEFAULT_FLAP_THRESHOLD = 3

ROUTE_FLAP_MONITOR_NDLOG = """
    materialize(routeEvent, 30, infinity, keys(1,2,3)).
    materialize(flapCount, infinity, infinity, keys(1,2)).
    materialize(flapAlarm, infinity, infinity, keys(1,2)).

    m1 flapCount(@S, D, count<E>) :- routeEvent(@S, D, E).
    m2 flapAlarm(@S, D, N) :- flapCount(@S, D, N), N >= 3.
"""


def route_flap_monitor_program() -> Program:
    """Parse the route-flap monitoring query."""
    return parse_program(ROUTE_FLAP_MONITOR_NDLOG)
