"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from repro.harness.workload import best_path_workload, evaluation_topology
from repro.harness.runner import (
    CONFIGURATIONS,
    ExperimentRow,
    run_best_path,
    run_configuration,
    run_network,
)
from repro.harness.experiments import (
    figure3_series,
    figure4_series,
    overhead_table,
    render_series,
    sweep,
)
from repro.harness.scenarios import (
    SCENARIOS,
    PhaseRow,
    Scenario,
    ScenarioReport,
    churn_scenario,
    link_failure_scenario,
    render_phase_table,
    retraction_scenario,
    run_scenario,
)

__all__ = [
    "CONFIGURATIONS",
    "ExperimentRow",
    "PhaseRow",
    "SCENARIOS",
    "Scenario",
    "ScenarioReport",
    "best_path_workload",
    "churn_scenario",
    "evaluation_topology",
    "figure3_series",
    "figure4_series",
    "link_failure_scenario",
    "overhead_table",
    "render_phase_table",
    "render_series",
    "retraction_scenario",
    "run_best_path",
    "run_configuration",
    "run_network",
    "run_scenario",
    "sweep",
]
