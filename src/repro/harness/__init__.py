"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from repro.harness.workload import best_path_workload, evaluation_topology
from repro.harness.runner import (
    CONFIGURATIONS,
    ExperimentRow,
    run_best_path,
    run_configuration,
)
from repro.harness.experiments import (
    figure3_series,
    figure4_series,
    overhead_table,
    render_series,
    sweep,
)

__all__ = [
    "CONFIGURATIONS",
    "ExperimentRow",
    "best_path_workload",
    "evaluation_topology",
    "figure3_series",
    "figure4_series",
    "overhead_table",
    "render_series",
    "run_best_path",
    "run_configuration",
    "sweep",
]
