"""Running the three evaluated configurations.

The paper's Section 6 compares:

* **NDlog** — no authentication, no provenance;
* **SeNDlog** — per-tuple RSA authentication, no provenance;
* **SeNDlogProv** — authentication plus condensed (BDD) provenance.

:func:`run_network` is the facade-era sweep point: it builds the run through
:class:`repro.api.Network` and returns the unified
:class:`~repro.api.results.RunResult` shared by the harness, the scenario
subsystem and the benchmarks.

:func:`run_best_path` and :func:`run_configuration` are the legacy entry
points, kept as thin shims over the facade.

.. deprecated::
    Prefer ``Network.build(topology=N, program="best-path",
    provenance=<configuration>)`` and ``network.run()``; the shims remain
    for existing call sites and carry no functionality of their own.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.api.network import Network
from repro.api.options import NetOptions
from repro.api.results import RunResult
from repro.datalog.planner import CompiledProgram
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.kernel import CostModel
from repro.net.topology import Topology
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode
from repro.harness.workload import evaluation_topology

#: The three configurations of the paper's evaluation, by name.
CONFIGURATIONS: Dict[str, Callable[[], EngineConfig]] = {
    "NDLog": lambda: EngineConfig(
        says_mode=SaysMode.NONE, provenance_mode=ProvenanceMode.NONE
    ),
    "SeNDLog": lambda: EngineConfig(
        says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.NONE
    ),
    "SeNDLogProv": lambda: EngineConfig(
        says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
    ),
}


@dataclass(frozen=True)
class ExperimentRow:
    """One data point of the evaluation sweep (legacy flat row).

    .. deprecated::
        New code reads the same metrics off :class:`RunResult`; this frozen
        row remains because existing tables and benchmarks index it.
    """

    configuration: str
    node_count: int
    seed: int
    completion_time_s: float
    bandwidth_mb: float
    total_messages: int
    total_bytes: int
    security_bytes: int
    provenance_bytes: int
    facts_derived: int
    best_paths: int
    converged: bool
    batches_sent: int = 0
    tuples_sent: int = 0
    query_messages: int = 0
    query_bytes: int = 0

    def __post_init__(self) -> None:
        warnings.warn(
            "ExperimentRow is deprecated; read the same metrics off the "
            "RunResult objects repro.api returns (run_network / "
            "Network.build(...).run())",
            DeprecationWarning,
            stacklevel=3,
        )

    @classmethod
    def from_run(cls, run: RunResult) -> "ExperimentRow":
        return cls(
            configuration=run.configuration,
            node_count=run.node_count,
            seed=run.seed,
            completion_time_s=run.completion_time_s,
            bandwidth_mb=run.bandwidth_mb,
            total_messages=run.total_messages,
            total_bytes=run.total_bytes,
            security_bytes=run.security_bytes,
            provenance_bytes=run.provenance_bytes,
            facts_derived=run.facts_derived,
            best_paths=run.count("bestPath"),
            converged=run.converged,
            batches_sent=run.batches_sent,
            tuples_sent=run.tuples_sent,
            query_messages=run.query_messages,
            query_bytes=run.query_bytes,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "configuration": self.configuration,
            "node_count": self.node_count,
            "seed": self.seed,
            "completion_time_s": self.completion_time_s,
            "bandwidth_mb": self.bandwidth_mb,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "security_bytes": self.security_bytes,
            "provenance_bytes": self.provenance_bytes,
            "batches_sent": self.batches_sent,
            "tuples_sent": self.tuples_sent,
            "query_messages": self.query_messages,
            "query_bytes": self.query_bytes,
            "facts_derived": self.facts_derived,
            "best_paths": self.best_paths,
            "converged": self.converged,
        }


def engine_config(configuration: str) -> EngineConfig:
    """Build the :class:`EngineConfig` for a named configuration."""
    try:
        factory = CONFIGURATIONS[configuration]
    except KeyError:
        raise ValueError(
            f"unknown configuration {configuration!r}; "
            f"expected one of {sorted(CONFIGURATIONS)}"
        ) from None
    return factory()


def run_network(
    configuration: str,
    topology: Union[Topology, int],
    seed: int = 0,
    compiled: Optional[CompiledProgram] = None,
    cost_model: Optional[CostModel] = None,
    key_bits: int = 256,
    batching: bool = True,
    batch_receive: bool = True,
    backend: str = "serial",
    shards: int = 0,
    shard_mode: str = "processes",
) -> RunResult:
    """One facade-built Best-Path run in a named paper configuration.

    *topology* is a :class:`Topology` or a node count (resolved through the
    paper's random workload).  This is the primitive every sweep point and
    benchmark goes through; the returned :class:`RunResult` carries the
    sweep coordinates plus the full statistics, query traffic included.

    ``backend="sharded"`` (with ``shards``/``shard_mode``) runs the sweep
    point on the parallel execution backend; derived facts and integer/byte
    statistics are identical to the serial backend, so sweep tables built
    either way agree.
    """
    if isinstance(topology, int):
        topology = evaluation_topology(topology, seed=seed)
    network = Network.build(
        topology=topology,
        program=compiled if compiled is not None else compile_best_path(),
        provenance=configuration,
        options=NetOptions(
            batching=batching,
            batch_receive=batch_receive,
            cost_model=cost_model,
            key_bits=key_bits,
            seed=seed,
            backend=backend,
            shards=shards,
            shard_mode=shard_mode,
        ),
    )
    # network.base_facts() shapes the link workload to the program's catalog;
    # for Best-Path it is exactly best_path_workload(topology).
    run = network.run()
    # Report the row under the caller's configuration spelling ("NDLog", not
    # the canonical preset "ndlog") so sweep tables keep their labels.
    run.configuration = configuration
    return run


def run_best_path(
    topology: Topology,
    configuration: str,
    compiled: Optional[CompiledProgram] = None,
    cost_model: Optional[CostModel] = None,
    key_bits: int = 256,
    batching: bool = True,
    batch_receive: bool = True,
) -> RunResult:
    """Run the Best-Path query over *topology* in the named configuration.

    .. deprecated:: thin shim over :func:`run_network` / the ``Network``
        facade; kept because many call sites (benchmarks, notebooks) were
        written against it.
    """
    warnings.warn(
        "run_best_path is deprecated; use run_network(configuration, "
        "topology, ...) or Network.build(...) from repro.api",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_network(
        configuration,
        topology,
        compiled=compiled,
        cost_model=cost_model,
        key_bits=key_bits,
        batching=batching,
        batch_receive=batch_receive,
    )


def run_configuration(
    configuration: str,
    node_count: int,
    seed: int = 0,
    compiled: Optional[CompiledProgram] = None,
    cost_model: Optional[CostModel] = None,
    batching: bool = True,
    batch_receive: bool = True,
) -> ExperimentRow:
    """One sweep point: N nodes, one seed, one configuration.

    .. deprecated:: thin shim over :func:`run_network`; returns the legacy
        flat :class:`ExperimentRow`.  ``batch_receive`` is threaded through
        (it used to be dropped silently, so sweeps could not A/B the
        batch-receive path).
    """
    warnings.warn(
        "run_configuration is deprecated; use run_network(configuration, "
        "node_count, ...) from repro.harness (it returns the unified "
        "RunResult instead of the legacy ExperimentRow)",
        DeprecationWarning,
        stacklevel=2,
    )
    run = run_network(
        configuration,
        node_count,
        seed=seed,
        compiled=compiled,
        cost_model=cost_model,
        batching=batching,
        batch_receive=batch_receive,
    )
    return ExperimentRow.from_run(run)
