"""Running the three evaluated configurations.

The paper's Section 6 compares:

* **NDlog** — no authentication, no provenance;
* **SeNDlog** — per-tuple RSA authentication, no provenance;
* **SeNDlogProv** — authentication plus condensed (BDD) provenance.

:func:`run_configuration` executes the Best-Path query over one topology in
one of these configurations and returns an :class:`ExperimentRow` holding the
two headline metrics (query completion time, bandwidth) plus the breakdown
counters used by the overhead analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.datalog.planner import CompiledProgram
from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.net.simulator import CostModel, SimulationResult, Simulator
from repro.net.topology import Topology
from repro.queries.best_path import compile_best_path
from repro.security.says import SaysMode
from repro.harness.workload import best_path_workload, evaluation_topology

#: The three configurations of the paper's evaluation, by name.
CONFIGURATIONS: Dict[str, Callable[[], EngineConfig]] = {
    "NDLog": lambda: EngineConfig(
        says_mode=SaysMode.NONE, provenance_mode=ProvenanceMode.NONE
    ),
    "SeNDLog": lambda: EngineConfig(
        says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.NONE
    ),
    "SeNDLogProv": lambda: EngineConfig(
        says_mode=SaysMode.SIGNED, provenance_mode=ProvenanceMode.CONDENSED
    ),
}


@dataclass(frozen=True)
class ExperimentRow:
    """One data point of the evaluation sweep."""

    configuration: str
    node_count: int
    seed: int
    completion_time_s: float
    bandwidth_mb: float
    total_messages: int
    total_bytes: int
    security_bytes: int
    provenance_bytes: int
    facts_derived: int
    best_paths: int
    converged: bool
    batches_sent: int = 0
    tuples_sent: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "configuration": self.configuration,
            "node_count": self.node_count,
            "seed": self.seed,
            "completion_time_s": self.completion_time_s,
            "bandwidth_mb": self.bandwidth_mb,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "security_bytes": self.security_bytes,
            "provenance_bytes": self.provenance_bytes,
            "batches_sent": self.batches_sent,
            "tuples_sent": self.tuples_sent,
            "facts_derived": self.facts_derived,
            "best_paths": self.best_paths,
            "converged": self.converged,
        }


def engine_config(configuration: str) -> EngineConfig:
    """Build the :class:`EngineConfig` for a named configuration."""
    try:
        factory = CONFIGURATIONS[configuration]
    except KeyError:
        raise ValueError(
            f"unknown configuration {configuration!r}; "
            f"expected one of {sorted(CONFIGURATIONS)}"
        ) from None
    return factory()


def run_best_path(
    topology: Topology,
    configuration: str,
    compiled: Optional[CompiledProgram] = None,
    cost_model: Optional[CostModel] = None,
    key_bits: int = 256,
    batching: bool = True,
    batch_receive: bool = True,
) -> SimulationResult:
    """Run the Best-Path query over *topology* in the named configuration."""
    compiled = compiled or compile_best_path()
    simulator = Simulator(
        topology=topology,
        compiled=compiled,
        config=engine_config(configuration),
        cost_model=cost_model,
        key_bits=key_bits,
        batching=batching,
        batch_receive=batch_receive,
    )
    return simulator.run(best_path_workload(topology))


def run_configuration(
    configuration: str,
    node_count: int,
    seed: int = 0,
    compiled: Optional[CompiledProgram] = None,
    cost_model: Optional[CostModel] = None,
    batching: bool = True,
) -> ExperimentRow:
    """One sweep point: N nodes, one seed, one configuration."""
    topology = evaluation_topology(node_count, seed=seed)
    result = run_best_path(
        topology, configuration, compiled=compiled, cost_model=cost_model,
        batching=batching,
    )
    stats = result.stats
    return ExperimentRow(
        configuration=configuration,
        node_count=node_count,
        seed=seed,
        completion_time_s=stats.completion_time,
        bandwidth_mb=stats.total_bandwidth_mb(),
        total_messages=stats.total_messages,
        total_bytes=stats.total_bytes(),
        security_bytes=stats.security_overhead_bytes(),
        provenance_bytes=stats.provenance_overhead_bytes(),
        facts_derived=stats.total_facts_derived(),
        best_paths=len(result.all_facts("bestPath")),
        converged=result.converged,
        batches_sent=stats.total_batches(),
        tuples_sent=stats.total_tuples_sent(),
    )
