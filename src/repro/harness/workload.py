"""The evaluation workload of Section 6.

"As input, we insert link tables for N nodes with average outdegree of
three, and vary the size of N from 10 to 100."
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.tuples import Fact
from repro.net.address import Address
from repro.net.topology import Topology, random_topology

#: The paper's sweep: N from 10 to 100.
PAPER_NODE_COUNTS: Tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
#: Average out-degree used throughout the evaluation.
PAPER_AVERAGE_OUTDEGREE = 3.0


def evaluation_topology(node_count: int, seed: int = 0) -> Topology:
    """A random topology matching the paper's workload parameters."""
    return random_topology(
        node_count=node_count,
        average_outdegree=PAPER_AVERAGE_OUTDEGREE,
        seed=seed,
    )


def best_path_workload(topology: Topology) -> Dict[Address, List[Fact]]:
    """The ``link(@S, D, C)`` base tuples for the Best-Path query, per node."""
    per_node: Dict[Address, List[Fact]] = {address: [] for address in topology.nodes}
    for link in topology.links:
        per_node[link.source].append(
            Fact(relation="link", values=(link.source, link.destination, link.cost))
        )
    return per_node
