"""Dynamic-network scenario scripts.

The paper's central claim is that network provenance stays correct and
queryable *while the network changes* — soft-state expiry, churn and
misbehaving nodes are the reason provenance exists.  This module turns the
simulator's typed events into declarative, phase-structured **scenario
scripts**: each phase schedules a batch of network dynamics (link failures,
node churn, fact retraction, soft-state refresh rounds), runs the network to
its new distributed fixpoint, and reports one row of convergence and
overhead metrics.

Three built-in scripts cover the canonical dynamics:

* :func:`link_failure_scenario` — a redundant link fails mid-run; Best-Path
  traffic reroutes once the stale soft state decays and refresh traffic
  re-derives alternatives;
* :func:`churn_scenario` — a node crashes (losing its soft state), the
  network heals around it, and the node later recovers and re-asserts its
  base tuples;
* :func:`retraction_scenario` — a base tuple is withdrawn and everything the
  node derived from it is invalidated, provenance included; anti-delta
  messages chase the remote copies, so the split fixpoint is reached in the
  same phase instead of waiting out soft-state expiry.

Every scenario is deterministic: the same seed produces the same event
order, phase rows and final fixpoint.  Run from the command line::

    python -m repro.harness.scenarios link-failure --nodes 12
    python -m repro.harness.scenarios all --nodes 8 --seed 1
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.node_engine import EngineConfig, ProvenanceMode
from repro.engine.tuples import Fact
from repro.net.address import Address
from repro.net.events import (
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    NodeCrash,
    NodeRecover,
    SimulationEvent,
    SoftStateRefresh,
)
from repro.net.kernel import SimulationKernel
from repro.net.stats import bucket_percentile
from repro.net.topology import Topology, line_topology, random_topology
from repro.queries.best_path import compile_best_path
from repro.queries.reachable import REACHABLE_LOCALIZED
from repro.security.says import SaysMode
from repro.service.workload import QueryWorkload

#: Soft-state lifetime used by the built-in scenarios (simulated seconds).
DEFAULT_SCENARIO_TTL = 30.0


# ---------------------------------------------------------------------------
# Declarative actions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Action:
    """One declarative network dynamic, expanded into scheduler events."""

    def events(
        self, simulator: SimulationKernel, at: float
    ) -> Tuple[SimulationEvent, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class FailLink(Action):
    source: Address
    destination: Address
    retract: bool = True

    def events(self, simulator, at):
        return (
            LinkDown(
                time=at,
                source=self.source,
                destination=self.destination,
                retract=self.retract,
            ),
        )


@dataclass(frozen=True)
class RestoreLink(Action):
    source: Address
    destination: Address

    def events(self, simulator, at):
        return (LinkUp(time=at, source=self.source, destination=self.destination),)


@dataclass(frozen=True)
class Crash(Action):
    address: Address

    def events(self, simulator, at):
        return (NodeCrash(time=at, address=self.address),)


@dataclass(frozen=True)
class Recover(Action):
    address: Address
    reinject: bool = True

    def events(self, simulator, at):
        return (
            NodeRecover(time=at, address=self.address, reinject=self.reinject),
        )


@dataclass(frozen=True)
class Inject(Action):
    address: Address
    facts: Tuple[Fact, ...]

    def events(self, simulator, at):
        return (FactInjection(time=at, address=self.address, facts=self.facts),)


@dataclass(frozen=True)
class Retract(Action):
    address: Address
    facts: Tuple[Fact, ...]

    def events(self, simulator, at):
        return (FactRetraction(time=at, address=self.address, facts=self.facts),)


@dataclass(frozen=True)
class RefreshSoftState(Action):
    """Every live node re-asserts its remembered base tuples.

    This is the paper's soft-state repair loop, run as a discrete round:
    state that lost its support — a failed link, a crashed neighbour, a
    retracted tuple — stops being refreshed and decays by TTL, and the next
    round re-derives what the current network still supports.  The
    expansion happens when the event fires (not at scheduling), so
    same-phase failures are already in effect.  Re-asserting an unchanged
    live tuple only refreshes its TTL at the owner; rounds meant to rebuild
    *remote* state therefore run after the old state decayed (phase gaps
    beyond the TTL), matching the scripts below.  Continuous sub-TTL
    refresh timers are the ``refresh_mode="wheel"`` plane: per-tuple
    timer-wheel deadlines at the owners re-stamp remote copies *before*
    they decay, making these discrete rounds a no-op under that mode.
    """

    def events(self, simulator, at):
        return (SoftStateRefresh(time=at),)


@dataclass(frozen=True)
class ServeQueries(Action):
    """Hold the phase open under a provenance-query workload.

    The workload's arrival stream (see :class:`repro.service.workload.
    QueryWorkload`) opens when the phase's dynamics fire, so queries race
    the very churn the phase scripts — the service plane answering *while*
    the network changes is the paper's claim run as a workload.  The
    stream is a pure function of the workload spec and the topology's node
    list, so serial and sharded scenario runs serve identical arrivals.
    """

    workload: QueryWorkload

    def events(self, simulator, at):
        return tuple(self.workload.events(simulator.topology.nodes, at))


# ---------------------------------------------------------------------------
# Scenario structure
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Phase:
    """One step of a scenario: dynamics applied, then a run to fixpoint.

    ``gap`` is simulated seconds between the previous phase's completion and
    this phase's events — long gaps let soft state decay before the phase
    observes the network.
    """

    name: str
    actions: Tuple[Action, ...] = ()
    gap: float = 0.0


@dataclass(frozen=True)
class Scenario:
    """A named, declarative scenario script."""

    name: str
    description: str
    phases: Tuple[Phase, ...]
    #: Relation whose per-phase global count the report tracks.
    probe_relation: str
    #: Script-specific facts of interest (failed link, crashed node, ...).
    details: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class PhaseRow:
    """Convergence and overhead metrics for one scenario phase.

    ``query_messages`` / ``query_kilobytes`` itemize the provenance-query
    traffic issued during the phase; it is included in ``messages`` /
    ``kilobytes`` because queries ride the same wire as maintenance.

    The storage-tier columns observe the offline archives:
    ``provenance_bytes_resident`` is the residency gauge *at the end of the
    phase* (under ``provenance_store="tiered"`` it stays bounded by the hot
    tier however long the run gets), while ``provenance_bytes_spilled`` /
    ``spill_reads`` are per-phase deltas of the cumulative counters.
    """

    scenario: str
    phase: str
    start_time: float
    completion_time: float
    converged: bool
    events: int
    messages: int
    kilobytes: float
    tuples_sent: int
    messages_lost: int
    facts_retracted: int
    probe_facts: int
    query_messages: int = 0
    query_kilobytes: float = 0.0
    provenance_bytes_resident: int = 0
    provenance_bytes_spilled: int = 0
    spill_reads: int = 0
    #: Service-plane columns (``ServeQueries`` phases): p95 simulated
    #: latency of the queries that completed during the phase, the phase's
    #: cache hit percentage, and admission denials.  All deltas, zero in
    #: phases that served no queries.
    query_p95_ms: float = 0.0
    cache_hit_pct: float = 0.0
    rejected: int = 0
    #: Soft-state dynamics columns: tuples kept alive by an alternative
    #: derivation during a one-fixpoint deletion pass, the anti-delta and
    #: refresh-plane wire traffic, and timer-wheel fires — all per-phase
    #: deltas.
    rederivations: int = 0
    anti_delta_messages: int = 0
    refresh_messages: int = 0
    timer_events: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "phase": self.phase,
            "start_time": self.start_time,
            "completion_time": self.completion_time,
            "converged": self.converged,
            "events": self.events,
            "messages": self.messages,
            "kilobytes": self.kilobytes,
            "tuples_sent": self.tuples_sent,
            "messages_lost": self.messages_lost,
            "facts_retracted": self.facts_retracted,
            "probe_facts": self.probe_facts,
            "query_messages": self.query_messages,
            "query_kilobytes": self.query_kilobytes,
            "provenance_bytes_resident": self.provenance_bytes_resident,
            "provenance_bytes_spilled": self.provenance_bytes_spilled,
            "spill_reads": self.spill_reads,
            "query_p95_ms": self.query_p95_ms,
            "cache_hit_pct": self.cache_hit_pct,
            "rejected": self.rejected,
            "rederivations": self.rederivations,
            "anti_delta_messages": self.anti_delta_messages,
            "refresh_messages": self.refresh_messages,
            "timer_events": self.timer_events,
        }


@dataclass
class ScenarioReport:
    """All phase rows of one scenario run plus the final simulator."""

    scenario: Scenario
    rows: List[PhaseRow]
    simulator: SimulationKernel

    @property
    def converged(self) -> bool:
        return all(row.converged for row in self.rows)

    def row(self, phase: str) -> PhaseRow:
        for row in self.rows:
            if row.phase == phase:
                return row
        raise KeyError(f"no phase {phase!r} in scenario {self.scenario.name!r}")

    def probe_series(self) -> List[Tuple[str, int]]:
        """Per-phase (phase name, probe relation count) pairs."""
        return [(row.phase, row.probe_facts) for row in self.rows]

    def render(self) -> str:
        return render_phase_table(self.rows, title=self.scenario.description)


def render_phase_table(rows: Sequence[PhaseRow], title: str = "") -> str:
    """Aligned text table of phase rows (the sweep-rendering house style)."""
    header = (
        f"{'phase':<12s}{'t_start':>9s}{'t_end':>9s}{'conv':>6s}"
        f"{'events':>8s}{'msgs':>8s}{'kB':>9s}{'lost':>6s}"
        f"{'retract':>8s}{'probe':>7s}{'res_kB':>9s}{'spill':>7s}"
        f"{'p95ms':>8s}{'hit%':>6s}{'rej':>5s}"
        f"{'rederiv':>8s}{'anti':>6s}{'refr':>6s}{'timers':>7s}"
    )
    lines = [title, header] if title else [header]
    for row in rows:
        lines.append(
            f"{row.phase:<12s}{row.start_time:>9.2f}{row.completion_time:>9.2f}"
            f"{'yes' if row.converged else 'NO':>6s}{row.events:>8d}"
            f"{row.messages:>8d}{row.kilobytes:>9.1f}{row.messages_lost:>6d}"
            f"{row.facts_retracted:>8d}{row.probe_facts:>7d}"
            f"{row.provenance_bytes_resident / 1000.0:>9.1f}"
            f"{row.spill_reads:>7d}"
            f"{row.query_p95_ms:>8.2f}{row.cache_hit_pct:>6.1f}"
            f"{row.rejected:>5d}"
            f"{row.rederivations:>8d}{row.anti_delta_messages:>6d}"
            f"{row.refresh_messages:>6d}{row.timer_events:>7d}"
        )
    return "\n".join(lines)


def run_scenario(scenario: Scenario, network) -> ScenarioReport:
    """Play *scenario* on *network*: per phase, schedule events, run to
    fixpoint, sweep residual soft state, and record one metrics row.

    *network* is a :class:`repro.api.Network` (what the scenario builders
    return) or a bare kernel/coordinator (the legacy calling convention).
    """
    simulator = getattr(network, "simulator", network)
    rows: List[PhaseRow] = []
    previous = _counters(simulator)
    current = 0.0
    for phase in scenario.phases:
        start = current + phase.gap
        for action in phase.actions:
            for event in action.events(simulator, start):
                simulator.schedule(event)
        converged = simulator.run_until_idle()
        end = max(simulator.current_time(), start)
        simulator.expire_all(end)
        counters = _counters(simulator)
        rows.append(
            PhaseRow(
                scenario=scenario.name,
                phase=phase.name,
                start_time=start,
                completion_time=end,
                converged=converged,
                events=counters["events"] - previous["events"],
                messages=counters["messages"] - previous["messages"],
                kilobytes=(counters["bytes"] - previous["bytes"]) / 1000.0,
                tuples_sent=counters["tuples"] - previous["tuples"],
                messages_lost=counters["lost"] - previous["lost"],
                facts_retracted=counters["retracted"] - previous["retracted"],
                probe_facts=_probe_count(simulator, scenario.probe_relation),
                query_messages=counters["query_messages"]
                - previous["query_messages"],
                query_kilobytes=(
                    counters["query_bytes"] - previous["query_bytes"]
                )
                / 1000.0,
                # Residency is a gauge: report the end-of-phase value, not a
                # delta.  Spill bytes/reads are cumulative, so delta them.
                provenance_bytes_resident=counters["prov_resident"],
                provenance_bytes_spilled=counters["prov_spilled"]
                - previous["prov_spilled"],
                spill_reads=counters["spill_reads"] - previous["spill_reads"],
                query_p95_ms=_phase_p95(
                    counters["latency_hist"], previous["latency_hist"]
                ),
                cache_hit_pct=_phase_hit_pct(counters, previous),
                rejected=counters["q_rejected"] - previous["q_rejected"],
                rederivations=counters["rederivations"]
                - previous["rederivations"],
                anti_delta_messages=counters["anti_deltas"]
                - previous["anti_deltas"],
                refresh_messages=counters["refresh_messages"]
                - previous["refresh_messages"],
                timer_events=counters["timer_events"]
                - previous["timer_events"],
            )
        )
        previous = counters
        current = end
    return ScenarioReport(scenario=scenario, rows=rows, simulator=simulator)


def _counters(simulator) -> Dict[str, object]:
    stats = simulator.stats
    return {
        "events": simulator.scheduler.events_scheduled,
        "messages": stats.total_messages,
        "bytes": stats.total_bytes(),
        "tuples": stats.total_tuples_sent(),
        "lost": stats.messages_lost,
        "retracted": stats.total_facts_retracted(),
        "query_messages": stats.total_query_messages(),
        "query_bytes": stats.total_query_bytes(),
        "prov_resident": stats.total_provenance_resident_bytes(),
        "prov_spilled": stats.total_provenance_spilled_bytes(),
        "spill_reads": stats.total_spill_reads(),
        # Service plane: rejection/cache counters plus the latency-bucket
        # histogram itself, so phases can report *their* p95 as a delta.
        "q_rejected": stats.total_queries_rejected(),
        "cache_hits": stats.total_cache_hits(),
        "cache_misses": stats.total_cache_misses(),
        "latency_hist": stats.query_latency_histogram(),
        # Soft-state dynamics: one-fixpoint deletion and refresh-plane work.
        "rederivations": stats.total_rederivations(),
        "anti_deltas": stats.total_anti_delta_messages(),
        "refresh_messages": stats.total_refresh_messages(),
        "timer_events": stats.total_timer_events(),
    }


def _phase_p95(now: Dict[int, int], before: Dict[int, int]) -> float:
    """p95 latency (ms) of the queries that completed during one phase."""
    delta = {
        bucket: count - before.get(bucket, 0)
        for bucket, count in now.items()
        if count - before.get(bucket, 0) > 0
    }
    return bucket_percentile(delta, 0.95)


def _phase_hit_pct(
    counters: Dict[str, object], previous: Dict[str, object]
) -> float:
    hits = counters["cache_hits"] - previous["cache_hits"]
    misses = counters["cache_misses"] - previous["cache_misses"]
    probes = hits + misses
    return 100.0 * hits / probes if probes else 0.0


def _probe_count(simulator, relation: str) -> int:
    # Both backends expose count_facts; the sharded coordinator answers it
    # without pulling engines out of its worker processes mid-run.
    counter = getattr(simulator, "count_facts", None)
    if counter is not None:
        return counter(relation)
    return sum(
        len(engine.facts(relation)) for engine in simulator.engines.values()
    )


# ---------------------------------------------------------------------------
# Built-in scenario scripts
# ---------------------------------------------------------------------------

def _soft_config(ttl: float, **kwargs) -> EngineConfig:
    """A scenario engine configuration: everything is soft state."""
    kwargs.setdefault("default_ttl", ttl)
    kwargs.setdefault("track_dependencies", True)
    return EngineConfig(**kwargs)


def _scenario_network(
    topology: Topology,
    program,
    config: EngineConfig,
    key_bits: int,
    backend: str = "serial",
    shards: int = 0,
    shard_mode: str = "processes",
    shard_pipeline: bool = False,
    transport: str = "binary",
    admission: float = 0.0,
    query_cache: bool = False,
    refresh_mode: str = "rounds",
    refresh_interval: float = 10.0,
    refresh_rate: float = 0.0,
):
    """Assemble a scenario's network through the facade.

    Imported lazily: the api package depends on nothing in the harness at
    module level, and the harness only reaches for it when a scenario is
    actually built.  Scenario dynamics — link failures, churn, retraction —
    cross shard boundaries correctly under ``backend="sharded"``: control
    events broadcast to every shard kernel and phase rows come out
    identical to the serial backend's.
    """
    from repro.api.network import Network
    from repro.api.options import NetOptions

    return Network.build(
        topology=topology,
        program=program,
        config=config,
        options=NetOptions(
            key_bits=key_bits,
            backend=backend,
            shards=shards,
            shard_mode=shard_mode,
            shard_pipeline=shard_pipeline,
            transport=transport,
            admission_rate=admission,
            query_cache=query_cache,
            refresh_mode=refresh_mode,
            refresh_interval=refresh_interval,
            refresh_rate=refresh_rate,
        ),
    )


def _phase_workload(
    query_rate: float,
    clients: int,
    relation: str,
    seed: int,
    phase_index: int,
    duration: float = 5.0,
) -> Optional[QueryWorkload]:
    """The service-plane workload one scenario phase serves, if any.

    Each phase draws from its own seed (scenario seed offset by phase
    index) so arrival streams differ between phases while remaining
    deterministic — and identical across backends.
    """
    if query_rate <= 0 and clients <= 0:
        return None
    return QueryWorkload(
        rate=query_rate,
        clients=clients,
        duration=duration,
        relation=relation,
        seed=seed * 1000 + phase_index,
    )


def _with_queries(
    actions: Tuple[Action, ...],
    workload: Optional[QueryWorkload],
) -> Tuple[Action, ...]:
    if workload is None:
        return actions
    return actions + (ServeQueries(workload=workload),)


def _inject_all(base: Dict[Address, List[Fact]]) -> Tuple[Inject, ...]:
    return tuple(
        Inject(address=address, facts=tuple(facts))
        for address, facts in base.items()
        if facts
    )


def _reachable_compiled():
    from repro.datalog import localize_program, parse_program
    from repro.datalog.planner import compile_program

    return compile_program(localize_program(parse_program(REACHABLE_LOCALIZED)))


def _reachable_base(topology: Topology) -> Dict[Address, List[Fact]]:
    return {
        node: [
            Fact("link", (link.source, link.destination))
            for link in topology.outgoing(node)
        ]
        for node in topology.nodes
    }


def link_failure_scenario(
    node_count: int = 12,
    seed: int = 0,
    ttl: float = DEFAULT_SCENARIO_TTL,
    key_bits: int = 128,
    backend: str = "serial",
    shards: int = 0,
    shard_mode: str = "processes",
    shard_pipeline: bool = False,
    transport: str = "binary",
    query_rate: float = 0.0,
    clients: int = 0,
    admission: float = 0.0,
    refresh_mode: str = "rounds",
    refresh_interval: float = 10.0,
    refresh_rate: float = 0.0,
    **config_kwargs,
) -> Tuple[Scenario, "Network"]:
    """Best-Path under a mid-run link failure: decay, refresh, reroute.

    A redundant link (its loss keeps the topology strongly connected) fails
    after convergence; the source retracts its ``link`` tuple, cascading
    invalidation through the paths derived from it, while other nodes' stale
    best paths decay by TTL and the refresh round re-derives alternatives —
    the repaired fixpoint routes around the failure.
    """
    topology = random_topology(node_count, seed=seed)
    redundant = topology.redundant_links()
    if not redundant:
        raise ValueError(
            f"topology(N={node_count}, seed={seed}) has no redundant link to fail"
        )
    failed = redundant[0]
    serving = query_rate > 0 or clients > 0
    if serving:
        # Serving provenance queries needs provenance to be maintained.
        config_kwargs.setdefault("provenance_mode", ProvenanceMode.CONDENSED)
    config = _soft_config(ttl, **config_kwargs)
    network = _scenario_network(
        topology, compile_best_path(), config, key_bits, backend, shards, shard_mode, shard_pipeline, transport,
        admission=admission, query_cache=serving,
        refresh_mode=refresh_mode, refresh_interval=refresh_interval,
        refresh_rate=refresh_rate,
    )
    base = network.link_facts()

    def workload(phase_index: int) -> Optional[QueryWorkload]:
        return _phase_workload(
            query_rate, clients, "bestPath", seed, phase_index
        )

    scenario = Scenario(
        name="link-failure",
        description=(
            f"Best-Path N={node_count}: link {failed.source}->"
            f"{failed.destination} fails mid-run, traffic reroutes"
        ),
        probe_relation="bestPath",
        details={"failed_link": (failed.source, failed.destination)},
        phases=(
            Phase(name="converge", actions=_inject_all(base)),
            # The failure strikes *fresh* state: the source retracts its
            # live link tuple (cascading through the paths it derived) and
            # the refresh round's traffic on the dead wire is lost.
            Phase(
                name="fail",
                gap=1.0,
                actions=_with_queries(
                    (
                        FailLink(
                            source=failed.source,
                            destination=failed.destination,
                        ),
                        RefreshSoftState(),
                    ),
                    workload(1),
                ),
            ),
            # One TTL later the stale remote best paths have decayed; the
            # refreshed fixpoint routes around the failure.
            Phase(
                name="reroute",
                gap=ttl + 1.0,
                actions=_with_queries((RefreshSoftState(),), workload(2)),
            ),
        ),
    )
    return scenario, network


def churn_scenario(
    node_count: int = 10,
    seed: int = 0,
    ttl: float = DEFAULT_SCENARIO_TTL,
    key_bits: int = 128,
    backend: str = "serial",
    shards: int = 0,
    shard_mode: str = "processes",
    shard_pipeline: bool = False,
    transport: str = "binary",
    query_rate: float = 0.0,
    clients: int = 0,
    admission: float = 0.0,
    refresh_mode: str = "rounds",
    refresh_interval: float = 10.0,
    refresh_rate: float = 0.0,
    **config_kwargs,
) -> Tuple[Scenario, "Network"]:
    """Reachability under node churn with soft-state repair.

    A node crashes (losing all its soft state); the facts it advertised
    decay from its neighbours by TTL, so the healed fixpoint excludes routes
    through it.  When it recovers it re-asserts its base tuples and the next
    refresh round restores full reachability.
    """
    topology = random_topology(node_count, seed=seed)
    # Crash the highest-degree node: the most interesting loss of transit.
    victim = max(
        topology.nodes, key=lambda node: (len(topology.outgoing(node)), node)
    )
    serving = query_rate > 0 or clients > 0
    if serving:
        config_kwargs.setdefault("provenance_mode", ProvenanceMode.CONDENSED)
    config = _soft_config(ttl, **config_kwargs)
    network = _scenario_network(
        topology, _reachable_compiled(), config, key_bits, backend, shards, shard_mode, shard_pipeline, transport,
        admission=admission, query_cache=serving,
        refresh_mode=refresh_mode, refresh_interval=refresh_interval,
        refresh_rate=refresh_rate,
    )
    base = _reachable_base(topology)

    def workload(phase_index: int) -> Optional[QueryWorkload]:
        return _phase_workload(
            query_rate, clients, "reachable", seed, phase_index
        )

    scenario = Scenario(
        name="churn",
        description=(
            f"Reachability N={node_count}: node {victim} crashes, "
            "the network heals, the node recovers"
        ),
        probe_relation="reachable",
        details={"crashed_node": victim},
        phases=(
            Phase(name="converge", actions=_inject_all(base)),
            Phase(
                name="crash",
                gap=1.0,
                actions=_with_queries((Crash(address=victim),), workload(1)),
            ),
            Phase(
                name="heal",
                gap=ttl + 1.0,
                actions=_with_queries((RefreshSoftState(),), workload(2)),
            ),
            Phase(
                name="recover",
                gap=1.0,
                actions=_with_queries(
                    (Recover(address=victim), RefreshSoftState()), workload(3)
                ),
            ),
        ),
    )
    return scenario, network


def retraction_scenario(
    node_count: int = 6,
    seed: int = 0,
    ttl: float = DEFAULT_SCENARIO_TTL,
    key_bits: int = 128,
    backend: str = "serial",
    shards: int = 0,
    shard_mode: str = "processes",
    shard_pipeline: bool = False,
    transport: str = "binary",
    query_rate: float = 0.0,
    clients: int = 0,
    admission: float = 0.0,
    refresh_mode: str = "rounds",
    refresh_interval: float = 10.0,
    refresh_rate: float = 0.0,
    **config_kwargs,
) -> Tuple[Scenario, "Network"]:
    """Fact retraction under one-fixpoint deletions.

    On a line topology the middle link is a bridge: retracting its two base
    ``link`` tuples splits reachability into the two segments.  The
    retracting nodes prune the tuples out of every base-support polynomial
    they feed, delete what zeroed out (condensed provenance included), and
    chase the remote copies with anti-delta messages — the split fixpoint
    is reached *inside the retract phase*, without waiting for soft state
    to decay by TTL.  The closing refresh round is a stability check: it
    re-asserts what the smaller network still supports and must not change
    the probe count.

    ``rederivation=False`` (a ``config_kwargs`` override) restores the
    paper's original decay story: remote copies linger until their TTL
    lapses, so the same script's retract phase still shows the full
    pre-split count.
    """
    if node_count < 4:
        raise ValueError("retraction scenario needs at least 4 nodes")
    topology = line_topology(node_count)
    left = topology.nodes[node_count // 2 - 1]
    right = topology.nodes[node_count // 2]
    retracted = (
        (left, Fact("link", (left, right))),
        (right, Fact("link", (right, left))),
    )
    config_kwargs.setdefault("rederivation", True)
    config = _soft_config(
        ttl,
        provenance_mode=ProvenanceMode.CONDENSED,
        says_mode=SaysMode.NONE,
        **config_kwargs,
    )
    serving = query_rate > 0 or clients > 0
    network = _scenario_network(
        topology, _reachable_compiled(), config, key_bits, backend, shards, shard_mode, shard_pipeline, transport,
        admission=admission, query_cache=serving,
        refresh_mode=refresh_mode, refresh_interval=refresh_interval,
        refresh_rate=refresh_rate,
    )
    base = _reachable_base(topology)

    def workload(phase_index: int) -> Optional[QueryWorkload]:
        return _phase_workload(
            query_rate, clients, "reachable", seed, phase_index
        )

    scenario = Scenario(
        name="retraction",
        description=(
            f"Reachability on a {node_count}-node line: the bridge "
            f"{left}<->{right} is retracted, repaired in one fixpoint"
        ),
        probe_relation="reachable",
        details={"retracted": retracted, "bridge": (left, right)},
        phases=(
            Phase(name="converge", actions=_inject_all(base)),
            # The anti-delta flood converges to the split network in this
            # same phase — no TTL gap between cause and observation.
            Phase(
                name="retract",
                gap=1.0,
                actions=_with_queries(
                    tuple(
                        Retract(address=address, facts=(fact,))
                        for address, fact in retracted
                    ),
                    workload(1),
                ),
            ),
            # Quiescence check: a refresh round over the already-repaired
            # fixpoint re-asserts live state and re-derives nothing new.
            Phase(
                name="refresh",
                gap=2.0,
                actions=_with_queries((RefreshSoftState(),), workload(2)),
            ),
        ),
    )
    return scenario, network


#: The built-in scenario scripts, by CLI name.
SCENARIOS: Dict[str, Callable[..., Tuple[Scenario, "Network"]]] = {
    "link-failure": link_failure_scenario,
    "churn": churn_scenario,
    "retraction": retraction_scenario,
}


# ---------------------------------------------------------------------------
# Command-line entry point
# ---------------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run dynamic-network scenario scripts."
    )
    parser.add_argument(
        "scenario",
        choices=tuple(SCENARIOS) + ("all",),
        help="which scenario script to run",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="topology size (script default)"
    )
    parser.add_argument("--seed", type=int, default=0, help="topology seed")
    parser.add_argument(
        "--ttl",
        type=float,
        default=DEFAULT_SCENARIO_TTL,
        help="soft-state lifetime in simulated seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "sharded"),
        default="serial",
        help="execution backend (sharded = parallel per-shard kernels; "
        "identical phase rows and fixpoints)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count for --backend sharded (0 = one per core, max 4)",
    )
    parser.add_argument(
        "--shard-mode",
        choices=("processes", "inline"),
        default="processes",
        help="run shards in worker processes or in-process (debugging)",
    )
    parser.add_argument(
        "--shard-pipeline",
        action="store_true",
        help="pipelined shard coordination: per-shard horizons instead of "
        "lockstep barriers (identical results, fewer coordination rounds)",
    )
    parser.add_argument(
        "--transport",
        choices=("pickle", "binary", "shm"),
        default="binary",
        help="coordination frame encoding between coordinator and shards",
    )
    parser.add_argument(
        "--query-rate",
        type=float,
        default=0.0,
        help="open-loop provenance-query arrivals per simulated second "
        "served during every post-convergence phase (0 = no query load); "
        "arms the per-node result cache",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=0,
        help="closed-loop query clients pinned to nodes, each issuing a "
        "new query one think-time after its last answer",
    )
    parser.add_argument(
        "--admission",
        type=float,
        default=0.0,
        help="per-node admission-control rate in queries per simulated "
        "second (0 = admit everything)",
    )
    parser.add_argument(
        "--refresh-mode",
        choices=("rounds", "wheel"),
        default="rounds",
        help="soft-state refresh plane: discrete RefreshSoftState rounds "
        "or per-tuple timer-wheel refreshes at the owners",
    )
    parser.add_argument(
        "--refresh-interval",
        type=float,
        default=10.0,
        help="timer-wheel refresh period in simulated seconds",
    )
    parser.add_argument(
        "--refresh-rate",
        type=float,
        default=0.0,
        help="per-node refresh-wave token rate in refreshes per simulated "
        "second (0 = unthrottled)",
    )
    arguments = parser.parse_args(argv)

    names = tuple(SCENARIOS) if arguments.scenario == "all" else (arguments.scenario,)
    failures = 0
    for name in names:
        build = SCENARIOS[name]
        kwargs: Dict[str, object] = {
            "seed": arguments.seed,
            "ttl": arguments.ttl,
            "backend": arguments.backend,
            "shards": arguments.shards,
            "shard_mode": arguments.shard_mode,
            "shard_pipeline": arguments.shard_pipeline,
            "transport": arguments.transport,
            "query_rate": arguments.query_rate,
            "clients": arguments.clients,
            "admission": arguments.admission,
            "refresh_mode": arguments.refresh_mode,
            "refresh_interval": arguments.refresh_interval,
            "refresh_rate": arguments.refresh_rate,
        }
        if arguments.nodes is not None:
            kwargs["node_count"] = arguments.nodes
        scenario, simulator = build(**kwargs)
        print(f"running scenario {name} ...", file=sys.stderr, flush=True)
        report = run_scenario(scenario, simulator)
        print(report.render())
        print()
        if not report.converged:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
