"""Regenerating the paper's figures and reported overheads.

* :func:`figure3_series` — query completion time vs number of nodes for the
  three configurations (Figure 3);
* :func:`figure4_series` — bandwidth utilisation vs number of nodes
  (Figure 4);
* :func:`overhead_table` — the overhead percentages quoted in the Section 6
  text ("SeNDlog overhead" and "Condensed provenance overhead", on average
  and at the largest N);
* ablation helpers for condensation (E5) and local-vs-distributed
  provenance (E6).

Run from the command line::

    python -m repro.harness.experiments fig3 --sizes 10,20,30,40,50
    python -m repro.harness.experiments fig4
    python -m repro.harness.experiments overheads
    python -m repro.harness.experiments all --sizes 10,30,50 --seeds 2
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.results import RunResult
from repro.harness.runner import run_network
from repro.queries.best_path import compile_best_path

#: Default sweep used by the benchmarks: a subset of the paper's 10..100 so a
#: full run finishes in minutes on a laptop.  Pass ``--sizes`` for the full
#: sweep.
DEFAULT_NODE_COUNTS: Tuple[int, ...] = (10, 20, 30, 40, 50)
DEFAULT_SEEDS: Tuple[int, ...] = (0,)
CONFIGURATION_ORDER: Tuple[str, ...] = ("NDLog", "SeNDLog", "SeNDLogProv")


@dataclass
class SweepResult:
    """All rows of one sweep, indexed by (configuration, node count).

    Rows are the unified :class:`~repro.api.results.RunResult` objects the
    facade returns; legacy :class:`ExperimentRow` instances aggregate the
    same way (every metric is a flat attribute on both).
    """

    rows: List[RunResult] = field(default_factory=list)

    def add(self, row: RunResult) -> None:
        self.rows.append(row)

    def configurations(self) -> Tuple[str, ...]:
        return tuple(
            name
            for name in CONFIGURATION_ORDER
            if any(row.configuration == name for row in self.rows)
        )

    def node_counts(self) -> Tuple[int, ...]:
        return tuple(sorted({row.node_count for row in self.rows}))

    def mean(self, configuration: str, node_count: int, metric: str) -> float:
        values = [
            float(getattr(row, metric))
            for row in self.rows
            if row.configuration == configuration and row.node_count == node_count
        ]
        if not values:
            raise KeyError(f"no rows for {configuration} at N={node_count}")
        return sum(values) / len(values)

    def series(self, metric: str) -> Dict[str, List[Tuple[int, float]]]:
        """Per-configuration series of (node count, mean metric value)."""
        result: Dict[str, List[Tuple[int, float]]] = {}
        for configuration in self.configurations():
            points = [
                (node_count, self.mean(configuration, node_count, metric))
                for node_count in self.node_counts()
            ]
            result[configuration] = points
        return result


def sweep(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    configurations: Sequence[str] = CONFIGURATION_ORDER,
    progress: bool = False,
    batching: bool = False,
    batch_receive: bool = True,
    backend: str = "serial",
    shards: int = 0,
    shard_mode: str = "processes",
) -> SweepResult:
    """Run the Best-Path evaluation sweep and collect every data point.

    The sweep reproduces the paper's Figures 3/4, whose bandwidth metric
    charges a full header per shipped tuple — so it defaults to the per-tuple
    wire format (``batching=False``) rather than the simulator's batched
    default.  Pass ``batching=True`` to measure the amortized wire path, and
    ``batch_receive=False`` to A/B the per-tuple engine receive path.

    ``backend="sharded"`` runs every sweep point on the parallel execution
    backend (``shards`` kernels, ``shard_mode`` workers); the collected
    metrics are identical to the serial backend's, so the figures come out
    the same — only wall-clock time changes.
    """
    compiled = compile_best_path()
    result = SweepResult()
    for node_count in node_counts:
        for seed in seeds:
            for configuration in configurations:
                if progress:
                    print(
                        f"running {configuration} N={node_count} seed={seed} ...",
                        file=sys.stderr,
                        flush=True,
                    )
                row = run_network(
                    configuration,
                    node_count,
                    seed=seed,
                    compiled=compiled,
                    batching=batching,
                    batch_receive=batch_receive,
                    backend=backend,
                    shards=shards,
                    shard_mode=shard_mode,
                )
                # The sweep aggregates scalars only; dropping the per-node
                # engines frees each finished simulation instead of keeping
                # every sweep point's full state alive simultaneously.
                row.engines = {}
                result.add(row)
    return result


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def figure3_series(result: SweepResult) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 3: query completion time (s) vs number of nodes."""
    return result.series("completion_time_s")


def figure4_series(result: SweepResult) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 4: bandwidth utilisation (MB) vs number of nodes."""
    return result.series("bandwidth_mb")


def render_series(
    series: Mapping[str, List[Tuple[int, float]]],
    title: str,
    value_label: str,
    precision: int = 2,
) -> str:
    """Render one figure's data as an aligned text table (rows = N)."""
    configurations = [name for name in CONFIGURATION_ORDER if name in series]
    node_counts = sorted({n for points in series.values() for n, _ in points})
    header = ["N"] + configurations
    lines = [title, "  ".join(f"{h:>14s}" for h in header)]
    for node_count in node_counts:
        cells = [f"{node_count:>14d}"]
        for configuration in configurations:
            value = dict(series[configuration]).get(node_count)
            cells.append(
                f"{value:>14.{precision}f}" if value is not None else f"{'-':>14s}"
            )
        lines.append("  ".join(cells))
    lines.append(f"(values are {value_label})")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Overhead tables (Section 6 text)
# ---------------------------------------------------------------------------

def _overhead(base: float, loaded: float) -> float:
    if base == 0:
        return 0.0
    return 100.0 * (loaded / base - 1.0)


def overhead_table(result: SweepResult) -> Dict[str, Dict[str, float]]:
    """The overhead percentages quoted in the Section 6 text.

    Returns, for both comparisons (SeNDlog vs NDlog; SeNDlogProv vs SeNDlog),
    the average overhead across the sweep and the overhead at the largest N,
    in both completion time and bandwidth.
    """
    node_counts = result.node_counts()
    largest = node_counts[-1]

    def overhead_series(base: str, loaded: str, metric: str) -> List[float]:
        return [
            _overhead(
                result.mean(base, node_count, metric),
                result.mean(loaded, node_count, metric),
            )
            for node_count in node_counts
        ]

    table: Dict[str, Dict[str, float]] = {}
    comparisons = {
        "SeNDLog_vs_NDLog": ("NDLog", "SeNDLog"),
        "SeNDLogProv_vs_SeNDLog": ("SeNDLog", "SeNDLogProv"),
    }
    for label, (base, loaded) in comparisons.items():
        time_overheads = overhead_series(base, loaded, "completion_time_s")
        bandwidth_overheads = overhead_series(base, loaded, "bandwidth_mb")
        table[label] = {
            "avg_time_overhead_pct": sum(time_overheads) / len(time_overheads),
            "avg_bandwidth_overhead_pct": sum(bandwidth_overheads) / len(bandwidth_overheads),
            "largest_n": float(largest),
            "largest_n_time_overhead_pct": time_overheads[-1],
            "largest_n_bandwidth_overhead_pct": bandwidth_overheads[-1],
        }
    return table


def render_overhead_table(table: Mapping[str, Mapping[str, float]]) -> str:
    """Render :func:`overhead_table` next to the numbers the paper reports."""
    paper = {
        "SeNDLog_vs_NDLog": (53.0, 36.0, 44.0, 17.0),
        "SeNDLogProv_vs_SeNDLog": (41.0, 54.0, 6.0, 10.0),
    }
    lines = [
        "Overheads (percent)                         measured        paper",
    ]
    for label, row in table.items():
        p = paper.get(label, (float("nan"),) * 4)
        pretty = label.replace("_vs_", " vs ")
        lines.append(
            f"{pretty:<30s} avg time     {row['avg_time_overhead_pct']:>10.0f}%   {p[0]:>8.0f}%"
        )
        lines.append(
            f"{'':<30s} avg bandwidth{row['avg_bandwidth_overhead_pct']:>10.0f}%   {p[1]:>8.0f}%"
        )
        lines.append(
            f"{'':<30s} largest-N time{row['largest_n_time_overhead_pct']:>9.0f}%   {p[2]:>8.0f}%"
        )
        lines.append(
            f"{'':<30s} largest-N bw {row['largest_n_bandwidth_overhead_pct']:>10.0f}%   {p[3]:>8.0f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Command-line entry point
# ---------------------------------------------------------------------------

def _parse_sizes(text: str) -> Tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation figures and tables."
    )
    parser.add_argument(
        "experiment",
        choices=("fig3", "fig4", "overheads", "all"),
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--sizes",
        type=_parse_sizes,
        default=DEFAULT_NODE_COUNTS,
        help="comma-separated node counts (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, help="number of random seeds to average over"
    )
    arguments = parser.parse_args(argv)

    result = sweep(
        node_counts=arguments.sizes,
        seeds=tuple(range(arguments.seeds)),
        progress=True,
    )

    if arguments.experiment in ("fig3", "all"):
        print(
            render_series(
                figure3_series(result),
                "Figure 3: query completion time for the Best-Path query",
                "simulated seconds to distributed fixpoint",
            )
        )
        print()
    if arguments.experiment in ("fig4", "all"):
        print(
            render_series(
                figure4_series(result),
                "Figure 4: bandwidth utilisation for the Best-Path query",
                "total MB across all nodes",
            )
        )
        print()
    if arguments.experiment in ("overheads", "all"):
        print(render_overhead_table(overhead_table(result)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
