"""Static analysis of NDlog / SeNDlog programs.

Provides the predicate dependency graph, recursion and stratification
analysis, and rule safety checks.  These mirror the checks a Datalog compiler
performs before producing an execution plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datalog.ast import (
    Assignment,
    Atom,
    Comparison,
    Program,
    Rule,
    SaysAtom,
    Span,
    span_of,
    term_variables,
)
from repro.datalog.errors import SafetyError


@dataclass
class DependencyGraph:
    """Predicate-level dependency graph of a program.

    ``edges[p]`` is the set of predicates that ``p`` depends on (appears in
    the body of some rule deriving ``p``); ``negative_edges`` is the subset of
    those dependencies that occur under negation.
    """

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    negative_edges: Dict[str, Set[str]] = field(default_factory=dict)

    def add_dependency(self, head: str, body: str, negated: bool = False) -> None:
        self.edges.setdefault(head, set()).add(body)
        self.edges.setdefault(body, set())
        if negated:
            self.negative_edges.setdefault(head, set()).add(body)

    def predicates(self) -> Tuple[str, ...]:
        return tuple(self.edges)

    def depends_on(self, predicate: str) -> FrozenSet[str]:
        return frozenset(self.edges.get(predicate, set()))

    def is_recursive(self, predicate: str) -> bool:
        """True when *predicate* transitively depends on itself."""
        return predicate in self.reachable_from(predicate)

    def reachable_from(self, predicate: str) -> FrozenSet[str]:
        """All predicates transitively reachable from *predicate*'s body."""
        seen: Set[str] = set()
        stack = list(self.edges.get(predicate, set()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, set()))
        return frozenset(seen)

    def strongly_connected_components(self) -> List[FrozenSet[str]]:
        """Tarjan's algorithm; components are returned in reverse topological order."""
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        components: List[FrozenSet[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = index_counter[0]
            lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for successor in self.edges.get(node, set()):
                if successor not in index:
                    strongconnect(successor)
                    lowlink[node] = min(lowlink[node], lowlink[successor])
                elif successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))

        for node in self.edges:
            if node not in index:
                strongconnect(node)
        return components


@dataclass(frozen=True)
class ProgramAnalysis:
    """Result of :func:`analyze_program`."""

    dependency_graph: DependencyGraph
    strata: Tuple[Tuple[str, ...], ...]
    recursive_predicates: FrozenSet[str]
    base_predicates: FrozenSet[str]
    derived_predicates: FrozenSet[str]

    def stratum_of(self, predicate: str) -> int:
        for level, stratum in enumerate(self.strata):
            if predicate in stratum:
                return level
        return 0


def build_dependency_graph(program: Program) -> DependencyGraph:
    """Construct the predicate dependency graph of *program*."""
    graph = DependencyGraph()
    for rule in program.rules:
        graph.edges.setdefault(rule.head.name, set())
        for literal in rule.body:
            if isinstance(literal, Atom):
                graph.add_dependency(rule.head.name, literal.name, literal.negated)
            elif isinstance(literal, SaysAtom):
                graph.add_dependency(rule.head.name, literal.atom.name, False)
    return graph


def stratify(program: Program) -> Tuple[Tuple[str, ...], ...]:
    """Compute a stratification of *program*'s predicates.

    Raises :class:`SafetyError` when a predicate depends on its own negation
    (the program is then not stratifiable).
    """
    graph = build_dependency_graph(program)
    strata: Dict[str, int] = {name: 0 for name in graph.predicates()}

    changed = True
    iterations = 0
    limit = len(strata) * len(strata) + 10
    while changed:
        changed = False
        iterations += 1
        if iterations > limit:
            raise SafetyError(
                "program is not stratifiable (negative cycle)", code="NDL104"
            )
        for head, bodies in graph.edges.items():
            for body in bodies:
                negated = body in graph.negative_edges.get(head, set())
                required = strata[body] + 1 if negated else strata[body]
                if strata[head] < required:
                    strata[head] = required
                    changed = True

    if not strata:
        return ()
    max_level = max(strata.values())
    grouped: List[List[str]] = [[] for _ in range(max_level + 1)]
    for name in sorted(strata):
        grouped[strata[name]].append(name)
    return tuple(tuple(level) for level in grouped if level)


@dataclass(frozen=True)
class SafetyViolation:
    """One violated safety condition of a rule.

    ``code`` is the stable diagnostic code (``NDL101`` head variable,
    ``NDL102`` negated-atom variable, ``NDL103`` comparison variable,
    ``NDL107`` ship-to variable); ``span`` points at the offending variable
    when the rule was parsed from source (``None`` for hand-built rules).
    """

    code: str
    message: str
    span: Optional[Span] = None
    variable: Optional[str] = None


def iter_safety_violations(rule: Rule) -> Iterable[SafetyViolation]:
    """Yield every safety violation of *rule* (empty when the rule is safe).

    The conditions checked:

    * every head variable must be bound by a positive body atom or an
      assignment (``NDL101``);
    * every variable of a negated atom must be bound positively (``NDL102``);
    * every variable of a comparison must be bound (``NDL103``);
    * a head ship-to variable must be bound (or be the rule's principal
      context) (``NDL107``).
    """
    bound: Set[str] = set()
    for literal in rule.body:
        if isinstance(literal, (Atom, SaysAtom)):
            atom = literal.atom if isinstance(literal, SaysAtom) else literal
            if not atom.negated:
                for variable in literal.variables():
                    bound.add(variable.name)
        elif isinstance(literal, Assignment):
            bound.add(literal.target.name)

    for literal in rule.body:
        if isinstance(literal, Atom) and literal.negated:
            for variable in literal.variables():
                if variable.name not in bound:
                    yield SafetyViolation(
                        code="NDL102",
                        message=(
                            f"rule {rule.label}: variable {variable.name} of negated "
                            f"atom {literal.name} is not bound positively"
                        ),
                        span=span_of(variable) or span_of(literal),
                        variable=variable.name,
                    )
        elif isinstance(literal, Comparison):
            for variable in literal.variables():
                if variable.name not in bound:
                    yield SafetyViolation(
                        code="NDL103",
                        message=(
                            f"rule {rule.label}: comparison variable {variable.name} "
                            "is not bound by the body"
                        ),
                        span=span_of(variable) or span_of(literal),
                        variable=variable.name,
                    )

    for term in rule.head.terms:
        for variable in term_variables(term):
            if variable.name not in bound:
                yield SafetyViolation(
                    code="NDL101",
                    message=(
                        f"rule {rule.label}: head variable {variable.name} "
                        "is not bound by the body"
                    ),
                    span=span_of(variable) or span_of(rule.head),
                    variable=variable.name,
                )
    if rule.head.ship_to is not None:
        for variable in term_variables(rule.head.ship_to):
            if variable.name not in bound and (
                rule.context is None or str(rule.context) != variable.name
            ):
                yield SafetyViolation(
                    code="NDL107",
                    message=(
                        f"rule {rule.label}: ship-to variable {variable.name} "
                        "is not bound by the body"
                    ),
                    span=span_of(variable) or span_of(rule.head),
                    variable=variable.name,
                )


def check_safety(rule: Rule) -> None:
    """Check the standard Datalog safety conditions for *rule*.

    Raises :class:`SafetyError` on the first violation, carrying the
    violation's diagnostic code and — when the rule was parsed from source —
    the line/column of the offending variable.
    """
    for violation in iter_safety_violations(rule):
        span = violation.span or span_of(rule)
        raise SafetyError(
            violation.message,
            line=span.line if span else 0,
            column=span.column if span else 0,
            code=violation.code,
        )


def analyze_program(program: Program) -> ProgramAnalysis:
    """Run safety checks and structural analysis over *program*."""
    for rule in program.rules:
        if not rule.is_fact():
            check_safety(rule)
    graph = build_dependency_graph(program)
    strata = stratify(program)
    recursive = frozenset(
        name for name in graph.predicates() if graph.is_recursive(name)
    )
    return ProgramAnalysis(
        dependency_graph=graph,
        strata=strata,
        recursive_predicates=recursive,
        base_predicates=frozenset(program.base_predicates()),
        derived_predicates=frozenset(program.derived_predicates()),
    )
