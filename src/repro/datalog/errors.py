"""Structured error hierarchy for the NDlog / SeNDlog front end.

Every error raised by the language layer derives from :class:`DatalogError`,
so callers can catch a single exception type at API boundaries while tests can
assert on the precise failure class.

Errors that can point at source text derive from :class:`LocatedError` and
carry a 1-based ``line`` / ``column`` pair plus a stable diagnostic ``code``
(the same ``NDL###`` codes the lint layer reports — see
:mod:`repro.datalog.lint`), so a failure surfaced as an exception and the
same failure surfaced as a :class:`~repro.datalog.diagnostics.Diagnostic`
are recognisably the one defect.
"""

from __future__ import annotations

from typing import Optional, Sequence


class DatalogError(Exception):
    """Base class for all language-layer errors."""


class LocatedError(DatalogError):
    """A language-layer error that can point at the offending source text.

    ``line`` / ``column`` are 1-based; ``(0, 0)`` means the location is
    unknown (e.g. the rule was built programmatically without spans) and the
    location suffix is omitted.  A location is rendered whenever *either*
    coordinate is known, so errors on line 1 or column 0 are not silently
    stripped of their position.
    """

    #: Default diagnostic code for the error class; instances may override.
    default_code: Optional[str] = None

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        code: Optional[str] = None,
    ) -> None:
        self.line = line
        self.column = column
        self.code = code if code is not None else self.default_code
        location = f" (line {line}, column {column})" if (line or column) else ""
        super().__init__(f"{message}{location}")
        self._message = message

    def __repr__(self) -> str:
        parts = [repr(self._message)]
        if self.code is not None:
            parts.append(f"code={self.code!r}")
        if self.line or self.column:
            parts.append(f"line={self.line}")
            parts.append(f"column={self.column}")
        return f"{type(self).__name__}({', '.join(parts)})"


class ParseError(LocatedError):
    """Raised when NDlog / SeNDlog source text cannot be parsed.

    Carries the source line and column to make diagnostics actionable.
    """

    default_code = "NDL001"


class SchemaError(LocatedError):
    """Raised when a predicate is used inconsistently with its declared schema."""

    default_code = "NDL201"


class SafetyError(LocatedError):
    """Raised when a rule is unsafe (e.g. a head variable not bound in the body)."""

    default_code = "NDL101"


class RewriteError(LocatedError):
    """Raised when the localization or says rewrite cannot be applied."""

    default_code = "NDL301"


class PlanError(DatalogError):
    """Raised when a rule cannot be compiled into an executable plan."""


class EvaluationError(DatalogError):
    """Raised when rule evaluation fails at runtime (bad function call, etc.)."""


class LintError(DatalogError):
    """Raised by ``lint="error"`` when a program has error-severity diagnostics.

    ``diagnostics`` holds every diagnostic the lint run produced (warnings
    included), already sorted; the exception message summarises the errors
    with their locations so the failure is actionable without re-running the
    linter.
    """

    def __init__(self, diagnostics: Sequence[object]) -> None:
        self.diagnostics = tuple(diagnostics)
        errors = [d for d in self.diagnostics if getattr(d, "is_error", False)]
        lines = [
            f"program failed lint with {len(errors)} error(s) "
            f"({len(self.diagnostics)} diagnostic(s) total):"
        ]
        lines.extend(f"  {d}" for d in errors)
        super().__init__("\n".join(lines))
