"""Structured error hierarchy for the NDlog / SeNDlog front end.

Every error raised by the language layer derives from :class:`DatalogError`,
so callers can catch a single exception type at API boundaries while tests can
assert on the precise failure class.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all language-layer errors."""


class ParseError(DatalogError):
    """Raised when NDlog / SeNDlog source text cannot be parsed.

    Carries the source line and column to make diagnostics actionable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class SchemaError(DatalogError):
    """Raised when a predicate is used inconsistently with its declared schema."""


class SafetyError(DatalogError):
    """Raised when a rule is unsafe (e.g. a head variable not bound in the body)."""


class RewriteError(DatalogError):
    """Raised when the localization or says rewrite cannot be applied."""


class PlanError(DatalogError):
    """Raised when a rule cannot be compiled into an executable plan."""


class EvaluationError(DatalogError):
    """Raised when rule evaluation fails at runtime (bad function call, etc.)."""
