"""The individual analysis passes of the NDlog / SeNDlog linter.

Every pass is a generator ``(LintContext) -> Iterator[Diagnostic]`` over one
parsed :class:`~repro.datalog.ast.Program`; passes never mutate the program
and never raise on bad input — a finding is always a
:class:`~repro.datalog.diagnostics.Diagnostic` with a stable code, so one
run reports *all* defects instead of dying on the first (the way
``check_safety`` / ``stratify`` / ``Catalog.from_program`` do).

The pass registry and the code reference table live in
:mod:`repro.datalog.lint` (the package ``__init__``).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.analysis import iter_safety_violations, stratify
from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    Program,
    Rule,
    SaysAtom,
    Variable,
    span_of,
    term_variables,
)
from repro.datalog.diagnostics import Diagnostic, Severity
from repro.datalog.errors import SafetyError

#: Aggregate functions whose argument must be numeric.
NUMERIC_AGGREGATES = {"sum", "avg"}

#: Comparison operators the unsatisfiability pass can evaluate on constants.
_COMPARATORS = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class LintContext:
    """Everything a pass may consult: the program plus optional environment.

    ``keystore`` (a :class:`repro.security.keystore.KeyStore`) enables the
    authentication-coverage checks (NDL302 / NDL303); without one they are
    skipped, since key possession cannot be judged statically.
    ``link_relation`` names the connectivity relation the link-restriction
    pass (NDL105) treats as the physical topology.
    """

    program: Program
    keystore: Optional[object] = None
    link_relation: str = "link"
    source_name: Optional[str] = None
    #: Inferred constant type per (relation, column); computed once.
    _column_types: Optional[Dict[Tuple[str, int], Tuple[str, object]]] = (
        dataclass_field(default=None, repr=False)
    )

    def diagnostic(
        self,
        code: str,
        severity: Severity,
        message: str,
        node: object = None,
        rule: Optional[Rule] = None,
        suggestion: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic anchored at *node*'s span (rule span fallback)."""
        span = span_of(node) if node is not None else None
        if span is None and rule is not None:
            span = span_of(rule)
        return Diagnostic(
            code=code,
            severity=severity,
            message=message,
            line=span.line if span else 0,
            column=span.column if span else 0,
            end_line=span.end_line if span else 0,
            end_column=span.end_column if span else 0,
            rule_label=rule.label if rule is not None else None,
            suggestion=suggestion,
            source=self.source_name,
        )

    def column_types(self) -> Dict[Tuple[str, int], Tuple[str, object]]:
        """Constant-derived type per relation column: ``"number"`` or ``"string"``.

        The first constant seen for a column fixes its type (and is recorded
        for the conflict message); conflicting later constants are reported
        by the schema pass rather than re-inferred here.
        """
        if self._column_types is None:
            types: Dict[Tuple[str, int], Tuple[str, object]] = {}
            for rule in self.program.rules:
                for atom in (rule.head, *rule.body_atoms()):
                    for index, term in enumerate(atom.terms):
                        if not isinstance(term, Constant):
                            continue
                        kind = _constant_kind(term)
                        types.setdefault((atom.name, index), (kind, term))
            self._column_types = types
        return self._column_types


def _constant_kind(constant: Constant) -> str:
    return "number" if isinstance(constant.value, (int, float)) else "string"


def _evaluation_rules(program: Program) -> List[Rule]:
    return [rule for rule in program.rules if not rule.is_fact()]


# ---------------------------------------------------------------------------
# Structural / safety passes (NDL1xx)
# ---------------------------------------------------------------------------

def safety_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL101 / NDL102 / NDL103 / NDL107 — the classic Datalog safety rules."""
    for rule in _evaluation_rules(ctx.program):
        for violation in iter_safety_violations(rule):
            suggestion = None
            if violation.code == "NDL101":
                suggestion = (
                    f"bind {violation.variable} in a positive body atom or "
                    "an assignment"
                )
            yield ctx.diagnostic(
                violation.code,
                Severity.ERROR,
                violation.message,
                node=violation,
                rule=rule,
                suggestion=suggestion,
            )


def stratification_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL104 — the program's negation must be stratifiable."""
    try:
        stratify(ctx.program)
    except SafetyError as exc:
        anchor = None
        for rule in ctx.program.rules:
            for atom in rule.body_atoms():
                if atom.negated:
                    anchor = atom
                    break
            if anchor is not None:
                break
        yield ctx.diagnostic(
            "NDL104",
            Severity.ERROR,
            str(exc),
            node=anchor,
            suggestion="break the cycle through the negated predicate",
        )


def duplicate_label_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL106 — rule labels must be unique (they key provenance annotations)."""
    seen: Dict[str, Rule] = {}
    for rule in ctx.program.rules:
        first = seen.get(rule.label)
        if first is None:
            seen[rule.label] = rule
            continue
        first_span = span_of(first)
        where = f" (first defined at line {first_span.line})" if first_span else ""
        yield ctx.diagnostic(
            "NDL106",
            Severity.ERROR,
            f"duplicate rule label {rule.label!r}{where}; provenance "
            "annotations record the deriving rule by label, so duplicates "
            "corrupt attribution",
            node=rule,
            rule=rule,
            suggestion="rename one of the rules",
        )


def link_restriction_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL105 — the NDlog shipping rule, checked pre-localization.

    When a rule's body spans several locations, the localization rewrite
    ships intermediate tuples between those locations, and a real deployment
    can only ship along physical links: every pair of body location
    specifiers must be connected through ``link`` atoms *in the same body*
    (Loo et al.'s link-restricted condition).  Bodies whose locations are
    not so connected still execute in the simulator, hence a warning rather
    than an error.
    """
    link_name = ctx.link_relation
    for rule in _evaluation_rules(ctx.program):
        located: List[Atom] = []
        for atom in rule.body_atoms():
            if not atom.negated and atom.location_term is not None:
                located.append(atom)
        names = []
        for atom in located:
            name = str(atom.location_term)
            if name not in names:
                names.append(name)
        if len(names) <= 1:
            continue

        parent: Dict[str, str] = {}

        def find(item: str) -> str:
            parent.setdefault(item, item)
            while parent[item] != item:
                parent[item] = parent[parent[item]]
                item = parent[item]
            return item

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for atom in located:
            if atom.name != link_name:
                continue
            anchor = str(atom.location_term)
            for index, term in enumerate(atom.terms):
                if index == atom.location_index:
                    continue
                if isinstance(term, (Variable, Constant)):
                    union(anchor, str(term))

        root = find(names[0])
        disconnected = [name for name in names[1:] if find(name) != root]
        if not disconnected:
            continue
        offender = next(
            atom for atom in located if str(atom.location_term) in disconnected
        )
        yield ctx.diagnostic(
            "NDL105",
            Severity.WARNING,
            f"rule {rule.label}: body locations {{{', '.join(names)}}} are not "
            f"connected through {link_name!r} atoms; the localization rewrite "
            "will ship tuples between nodes that share no physical link",
            node=offender,
            rule=rule,
            suggestion=(
                f"join the locations through a {link_name!r} atom or "
                "co-locate the body"
            ),
        )


# ---------------------------------------------------------------------------
# Schema / type passes (NDL2xx)
# ---------------------------------------------------------------------------

def schema_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL201 / NDL202 / NDL203 — catalog-driven schema checks."""
    arities: Dict[str, Tuple[int, Atom]] = {}
    for rule in ctx.program.rules:
        for atom in (rule.head, *rule.body_atoms()):
            known = arities.get(atom.name)
            if known is None:
                arities[atom.name] = (atom.arity, atom)
            elif known[0] != atom.arity:
                first_span = span_of(known[1])
                where = f" (line {first_span.line})" if first_span else ""
                yield ctx.diagnostic(
                    "NDL201",
                    Severity.ERROR,
                    f"relation {atom.name!r} used with arity {atom.arity} but "
                    f"first used with arity {known[0]}{where}",
                    node=atom,
                    rule=rule,
                )

    for decl in ctx.program.materialized:
        known = arities.get(decl.name)
        if known is None:
            yield ctx.diagnostic(
                "NDL202",
                Severity.WARNING,
                f"materialize declaration for relation {decl.name!r}, which no "
                "rule mentions",
                node=decl,
                suggestion="delete the declaration or fix the relation name",
            )
            continue
        arity = known[0]
        for key in decl.keys:
            if key < 1 or key > arity:
                yield ctx.diagnostic(
                    "NDL203",
                    Severity.ERROR,
                    f"materialize({decl.name}, ...): key column {key} out of "
                    f"range for arity {arity} (keys are 1-based)",
                    node=decl,
                )


def type_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL204 / NDL205 — constant-vs-column and aggregate-argument types."""
    types = ctx.column_types()
    for rule in ctx.program.rules:
        for atom in (rule.head, *rule.body_atoms()):
            for index, term in enumerate(atom.terms):
                if not isinstance(term, Constant):
                    continue
                kind = _constant_kind(term)
                declared, first = types[(atom.name, index)]
                if first is term or kind == declared:
                    continue
                first_span = span_of(first)
                where = f" at line {first_span.line}" if first_span else ""
                yield ctx.diagnostic(
                    "NDL204",
                    Severity.ERROR,
                    f"column {index + 1} of {atom.name!r} holds a {kind} "
                    f"constant here but a {declared} constant "
                    f"({first}){where}",
                    node=term,
                    rule=rule,
                )

    for rule in _evaluation_rules(ctx.program):
        for term in rule.head.terms:
            if not isinstance(term, Aggregate):
                continue
            if term.function not in NUMERIC_AGGREGATES:
                continue
            bad = _aggregate_string_binding(rule, term.variable.name, types)
            if bad is not None:
                relation, column = bad
                yield ctx.diagnostic(
                    "NDL205",
                    Severity.ERROR,
                    f"rule {rule.label}: {term.function}<{term.variable}> "
                    f"aggregates column {column + 1} of {relation!r}, whose "
                    "constants are strings; "
                    f"{term.function} needs a numeric argument",
                    node=term,
                    rule=rule,
                )


def _aggregate_string_binding(
    rule: Rule,
    variable: str,
    types: Dict[Tuple[str, int], Tuple[str, object]],
) -> Optional[Tuple[str, int]]:
    """The (relation, column) binding *variable* to a string column, if any."""
    for atom in rule.body_atoms():
        if atom.negated:
            continue
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term.name == variable:
                inferred = types.get((atom.name, index))
                if inferred is not None and inferred[0] == "string":
                    return (atom.name, index)
    return None


# ---------------------------------------------------------------------------
# SeNDlog authentication coverage (NDL3xx)
# ---------------------------------------------------------------------------

def says_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL301 / NDL302 / NDL303 — ``says`` usage and key coverage.

    Unverifiable imports are exactly where fabricated-provenance attacks
    enter (arXiv 1703.03835), so a ``says`` import whose asserting principal
    has no verifying key in the keystore is an error, not a style issue.
    """
    keystore = ctx.keystore
    for rule in ctx.program.rules:
        for literal in rule.body:
            if not isinstance(literal, SaysAtom):
                continue
            if rule.context is None:
                yield ctx.diagnostic(
                    "NDL301",
                    Severity.ERROR,
                    f"rule {rule.label}: '{literal}' uses 'says' outside a "
                    "principal context; the says rewrite needs to know which "
                    "principal imports the tuple",
                    node=literal,
                    rule=rule,
                    suggestion="declare the rule inside an 'At <Principal>:' block",
                )
            if keystore is not None and isinstance(literal.principal, Constant):
                principal = str(literal.principal.value)
                if not keystore.has_public_key(principal):
                    yield ctx.diagnostic(
                        "NDL302",
                        Severity.ERROR,
                        f"rule {rule.label}: tuples imported from principal "
                        f"{principal!r} cannot be verified — the keystore "
                        "holds no public key for it",
                        node=literal,
                        rule=rule,
                        suggestion=(
                            f"register {principal!r}'s public key before "
                            "evaluating the program"
                        ),
                    )
        if (
            keystore is not None
            and rule.context is not None
            and isinstance(rule.context, Constant)
            and rule.head.ship_to is not None
        ):
            exporter = str(rule.context.value)
            if not keystore.has_private_key(exporter):
                yield ctx.diagnostic(
                    "NDL303",
                    Severity.ERROR,
                    f"rule {rule.label}: the head is exported to "
                    f"'{rule.head.ship_to}' but context principal "
                    f"{exporter!r} has no signing keypair — receivers cannot "
                    "verify the export",
                    node=rule.head,
                    rule=rule,
                    suggestion=f"create a keypair for {exporter!r} in the keystore",
                )


# ---------------------------------------------------------------------------
# Quality / performance passes (NDL4xx)
# ---------------------------------------------------------------------------

def dead_predicate_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL401 — a derived predicate nothing reads and nothing materializes.

    ``materialize`` marks a table as an externally visible query output, so
    only underived *and* undeclared predicates are dead weight: their rules
    burn evaluation and bandwidth for tuples no one can observe.
    """
    first_rule: Dict[str, Rule] = {}
    for rule in ctx.program.rules:
        first_rule.setdefault(rule.head.name, rule)
    read: Set[str] = set()
    for rule in ctx.program.rules:
        read.update(rule.body_predicates())
    declared = {decl.name for decl in ctx.program.materialized}
    for name, rule in first_rule.items():
        if name in read or name in declared:
            continue
        yield ctx.diagnostic(
            "NDL401",
            Severity.WARNING,
            f"derived predicate {name!r} is never read by any rule body and "
            "is not materialized; its derivations are unobservable",
            node=rule.head,
            rule=rule,
            suggestion=(
                f"materialize({name}, ...) if it is a query output, or delete "
                "the rules deriving it"
            ),
        )


def unused_variable_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL402 — a variable bound once and never used (non-``_`` singleton).

    A says-import principal used once (``W says reachable(S, Y)`` — import
    from *any* principal) is the paper's own idiom and is exempt; so are
    wildcard variables spelled with a leading underscore.
    """
    for rule in _evaluation_rules(ctx.program):
        occurrences: Dict[str, List[Tuple[Variable, str]]] = {}

        def record(variable: Variable, kind: str) -> None:
            occurrences.setdefault(variable.name, []).append((variable, kind))

        for term in rule.head.terms:
            for variable in term_variables(term):
                record(variable, "head")
        if rule.head.ship_to is not None:
            for variable in term_variables(rule.head.ship_to):
                record(variable, "head")
        if isinstance(rule.context, Variable):
            record(rule.context, "context")
        for literal in rule.body:
            if isinstance(literal, SaysAtom):
                for variable in term_variables(literal.principal):
                    record(variable, "says_principal")
                for term in literal.atom.terms:
                    for variable in term_variables(term):
                        record(variable, "body_atom")
            elif isinstance(literal, Atom):
                kind = "negated_atom" if literal.negated else "body_atom"
                for variable in literal.variables():
                    record(variable, kind)
            elif isinstance(literal, Assignment):
                record(literal.target, "assign_target")
                for variable in term_variables(literal.expression):
                    record(variable, "expression")
            elif isinstance(literal, Comparison):
                for variable in literal.variables():
                    record(variable, "expression")

        for name, uses in occurrences.items():
            if len(uses) != 1 or name.startswith("_"):
                continue
            variable, kind = uses[0]
            if kind not in ("body_atom", "assign_target"):
                continue
            yield ctx.diagnostic(
                "NDL402",
                Severity.WARNING,
                f"rule {rule.label}: variable {name} is bound but never used",
                node=variable,
                rule=rule,
                suggestion=f"rename it _{name} to mark the binding intentional",
            )


def cartesian_join_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL403 — positive body atoms that share no variables.

    Such a join enumerates the full cross product of the two relations; on a
    distributed soft-state engine that is almost always an authoring
    mistake, and always a performance hazard.
    """
    for rule in _evaluation_rules(ctx.program):
        atoms: List[Atom] = [a for a in rule.body_atoms() if not a.negated]
        with_vars = [
            atom for atom in atoms if any(True for _ in atom.variables())
        ]
        if len(with_vars) < 2:
            continue

        parent: Dict[int, int] = {i: i for i in range(len(with_vars))}

        def find(item: int) -> int:
            while parent[item] != item:
                parent[item] = parent[parent[item]]
                item = parent[item]
            return item

        def union(a: int, b: int) -> None:
            parent[find(a)] = find(b)

        var_home: Dict[str, int] = {}
        for index, atom in enumerate(with_vars):
            for variable in atom.variables():
                home = var_home.setdefault(variable.name, index)
                union(home, index)

        # Expression literals relate the variables they mention: a comparison
        # or assignment chaining two atoms' variables turns the cross product
        # into a theta-join, which is constrained and not reported.
        for literal in rule.body:
            if isinstance(literal, (Comparison, Assignment)):
                homes = [
                    var_home[v.name]
                    for v in literal.variables()
                    if v.name in var_home
                ]
                for home in homes[1:]:
                    union(homes[0], home)

        root = find(0)
        for index in range(1, len(with_vars)):
            if find(index) != root:
                first, second = with_vars[0], with_vars[index]
                yield ctx.diagnostic(
                    "NDL403",
                    Severity.WARNING,
                    f"rule {rule.label}: atoms '{first}' and '{second}' share "
                    "no variables; the join enumerates their full cross "
                    "product",
                    node=second,
                    rule=rule,
                    suggestion="join the atoms through a shared variable",
                )
                break


def unsatisfiable_pass(ctx: LintContext) -> Iterator[Diagnostic]:
    """NDL404 — constant constraints that can never hold together."""
    for rule in _evaluation_rules(ctx.program):
        bindings: Dict[str, object] = {}
        conflict: Optional[Diagnostic] = None

        def resolve(term: object) -> Tuple[bool, object]:
            if isinstance(term, Constant):
                return True, term.value
            if isinstance(term, Variable) and term.name in bindings:
                return True, bindings[term.name]
            return False, None

        for literal in rule.body:
            if isinstance(literal, Assignment) and isinstance(
                literal.expression, Constant
            ):
                bindings[literal.target.name] = literal.expression.value
                continue
            if not isinstance(literal, Comparison):
                continue
            operator = literal.operator
            left_known, left = resolve(literal.left)
            right_known, right = resolve(literal.right)
            if left_known and right_known:
                result = _evaluate_comparison(operator, left, right)
                if result is False:
                    conflict = ctx.diagnostic(
                        "NDL404",
                        Severity.WARNING,
                        f"rule {rule.label}: '{literal}' is always false given "
                        "the rule's constant constraints; the rule can never "
                        "fire",
                        node=literal,
                        rule=rule,
                        suggestion="remove the rule or fix the constants",
                    )
                    break
                continue
            # An equality between a variable and a constant pins the variable.
            if operator in ("=", "=="):
                if (
                    isinstance(literal.left, Variable)
                    and right_known
                    and literal.left.name not in bindings
                ):
                    bindings[literal.left.name] = right
                elif (
                    isinstance(literal.right, Variable)
                    and left_known
                    and literal.right.name not in bindings
                ):
                    bindings[literal.right.name] = left

        if conflict is not None:
            yield conflict


def _evaluate_comparison(operator: str, left: object, right: object) -> Optional[bool]:
    """Evaluate a constant comparison; ``None`` when the types don't compare."""
    comparator = _COMPARATORS.get(operator)
    if comparator is None:
        return None
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    textual = isinstance(left, str) and isinstance(right, str)
    if operator in ("=", "==", "!="):
        if not (numeric or textual):
            # Cross-type equality is decidable: a number never equals a string.
            return operator == "!="
        return bool(comparator(left, right))
    if not (numeric or textual):
        return None
    return bool(comparator(left, right))
