"""Command-line entry point: ``python -m repro.datalog.lint``.

Exit status follows the usual linter convention — 0 for a clean run (or
warnings only), 1 when any error-severity diagnostic was found (or any
warning under ``--strict``), 2 for usage errors such as an unreadable file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.datalog.diagnostics import (
    Diagnostic,
    exit_code,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.datalog.lint import CODES, lint_source
from repro.datalog.lint.registry import builtin_sources


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datalog.lint",
        description="Static analyzer for NDlog / SeNDlog programs.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="NDlog source files to lint ('-' reads standard input)",
    )
    parser.add_argument(
        "--builtin",
        action="store_true",
        help="lint every NDlog program shipped in the repro tree",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings, not only on errors",
    )
    parser.add_argument(
        "--link-relation",
        default="link",
        metavar="NAME",
        help="relation treated as the physical topology (default: link)",
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="print the diagnostic code reference table and exit",
    )
    return parser


def _codes_table() -> str:
    lines = ["code    severity  title"]
    for code in sorted(CODES):
        severity, title = CODES[code]
        lines.append(f"{code}  {str(severity):<8}  {title}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.codes:
        print(_codes_table())
        return 0
    if not options.files and not options.builtin:
        parser.print_usage(sys.stderr)
        print(
            "error: give at least one FILE, '-', or --builtin", file=sys.stderr
        )
        return 2

    diagnostics: List[Diagnostic] = []
    for path in options.files:
        if path == "-":
            text = sys.stdin.read()
            name = "<stdin>"
        else:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                print(f"error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            name = path
        diagnostics.extend(
            lint_source(
                text, link_relation=options.link_relation, source_name=name
            )
        )
    if options.builtin:
        for name, text in sorted(builtin_sources().items()):
            diagnostics.extend(
                lint_source(
                    text,
                    link_relation=options.link_relation,
                    source_name=f"builtin:{name}",
                )
            )

    diagnostics = sort_diagnostics(diagnostics)
    if options.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return exit_code(diagnostics, strict=options.strict)


if __name__ == "__main__":
    sys.exit(main())
