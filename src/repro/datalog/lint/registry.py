"""Registry of the in-tree NDlog / SeNDlog sources the CLI can lint.

``--builtin`` lints every program the repository ships (the paper's queries
and the monitoring use case), which is what ``make lint`` runs in CI: the
tree's own programs must stay clean under the analyzer they ship with.
"""

from __future__ import annotations

from typing import Dict


def builtin_sources() -> Dict[str, str]:
    """Name -> NDlog source text for every program shipped in the tree."""
    from repro.queries import (
        BEST_PATH_NDLOG,
        DISTANCE_VECTOR_NDLOG,
        PATH_VECTOR_NDLOG,
        REACHABLE_LOCALIZED,
        REACHABLE_NDLOG,
        REACHABLE_SENDLOG,
        ROUTE_FLAP_MONITOR_NDLOG,
    )

    return {
        "best-path": BEST_PATH_NDLOG,
        "distance-vector": DISTANCE_VECTOR_NDLOG,
        "path-vector": PATH_VECTOR_NDLOG,
        "reachable": REACHABLE_NDLOG,
        "reachable-localized": REACHABLE_LOCALIZED,
        "reachable-sendlog": REACHABLE_SENDLOG,
        "route-flap-monitor": ROUTE_FLAP_MONITOR_NDLOG,
    }
