"""`repro.datalog.lint` — the NDlog / SeNDlog static analyzer.

The linter runs a fixed sequence of analysis passes over a parsed
:class:`~repro.datalog.ast.Program` and reports structured
:class:`~repro.datalog.diagnostics.Diagnostic` records instead of raising on
the first defect.  It subsumes the front end's exception-based checks
(safety, stratification, schema) and adds the distributed-systems checks
that only matter for declarative networking: link-restriction, ``says``
authentication coverage, and bandwidth hazards such as cartesian joins.

Three entry points:

* :func:`lint_program` — lint a parsed program, return sorted diagnostics;
* :func:`lint_source` — parse then lint source text (a parse failure becomes
  a single ``NDL001`` diagnostic rather than an exception);
* :func:`check_program` — the ``Network.build`` hook implementing the
  ``lint="error" | "warn" | "off"`` modes.

Run the CLI with ``python -m repro.datalog.lint program.ndlog --format=json``.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

from repro.datalog.ast import Program
from repro.datalog.diagnostics import (
    Diagnostic,
    LintWarning,
    Severity,
    error_count,
    exit_code,
    render_json,
    render_text,
    sort_diagnostics,
    warning_count,
)
from repro.datalog.errors import LintError, ParseError
from repro.datalog.lint import passes as _passes
from repro.datalog.lint.passes import LintContext

#: Lint modes accepted by ``check_program`` / ``NetOptions.lint``.
LINT_MODES = ("error", "warn", "off")

#: Every diagnostic code the analyzer can emit: code -> (severity, title).
CODES: Dict[str, Tuple[Severity, str]] = {
    "NDL001": (Severity.ERROR, "source text cannot be parsed"),
    "NDL101": (Severity.ERROR, "head variable not bound by the body"),
    "NDL102": (Severity.ERROR, "negated-atom variable not bound positively"),
    "NDL103": (Severity.ERROR, "comparison variable not bound by the body"),
    "NDL104": (Severity.ERROR, "program is not stratifiable"),
    "NDL105": (Severity.WARNING, "body locations not connected through links"),
    "NDL106": (Severity.ERROR, "duplicate rule label"),
    "NDL107": (Severity.ERROR, "ship-to variable not bound by the body"),
    "NDL201": (Severity.ERROR, "relation used with inconsistent arity"),
    "NDL202": (Severity.WARNING, "materialize declaration for unknown relation"),
    "NDL203": (Severity.ERROR, "materialize key column out of range"),
    "NDL204": (Severity.ERROR, "constant conflicts with the column's type"),
    "NDL205": (Severity.ERROR, "numeric aggregate over a string column"),
    "NDL301": (Severity.ERROR, "'says' used outside a principal context"),
    "NDL302": (Severity.ERROR, "says-import principal has no public key"),
    "NDL303": (Severity.ERROR, "signed export without a signing keypair"),
    "NDL401": (Severity.WARNING, "derived predicate is never read"),
    "NDL402": (Severity.WARNING, "variable bound but never used"),
    "NDL403": (Severity.WARNING, "join enumerates a full cross product"),
    "NDL404": (Severity.WARNING, "rule can never fire (contradictory constants)"),
}

#: The pass sequence, in report-stability order.
PASSES = (
    _passes.safety_pass,
    _passes.stratification_pass,
    _passes.duplicate_label_pass,
    _passes.link_restriction_pass,
    _passes.schema_pass,
    _passes.type_pass,
    _passes.says_pass,
    _passes.dead_predicate_pass,
    _passes.unused_variable_pass,
    _passes.cartesian_join_pass,
    _passes.unsatisfiable_pass,
)


def lint_program(
    program: Program,
    *,
    keystore: Optional[object] = None,
    link_relation: str = "link",
    source_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Run every lint pass over *program* and return sorted diagnostics.

    The program is never mutated; passing a ``keystore`` additionally enables
    the key-coverage checks (NDL302 / NDL303).
    """
    context = LintContext(
        program=program,
        keystore=keystore,
        link_relation=link_relation,
        source_name=source_name,
    )
    diagnostics: List[Diagnostic] = []
    for lint_pass in PASSES:
        diagnostics.extend(lint_pass(context))
    return sort_diagnostics(diagnostics)


def lint_source(
    text: str,
    *,
    keystore: Optional[object] = None,
    link_relation: str = "link",
    source_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Parse *text* and lint it; a parse failure is one ``NDL001`` diagnostic."""
    from repro.datalog.parser import parse_program

    try:
        program = parse_program(text)
    except ParseError as exc:
        return [
            Diagnostic(
                code=exc.code or "NDL001",
                severity=Severity.ERROR,
                message=getattr(exc, "_message", str(exc)),
                line=exc.line,
                column=exc.column,
                source=source_name,
            )
        ]
    return lint_program(
        program,
        keystore=keystore,
        link_relation=link_relation,
        source_name=source_name,
    )


def check_program(
    program: Program,
    mode: str = "error",
    *,
    keystore: Optional[object] = None,
    link_relation: str = "link",
    source_name: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint *program* and enforce *mode*; returns the diagnostics either way.

    ``"error"``
        raise :class:`~repro.datalog.errors.LintError` when any
        error-severity diagnostic is found (warnings alone stay silent);
    ``"warn"``
        emit every diagnostic as a :class:`LintWarning` via the ``warnings``
        machinery and continue;
    ``"off"``
        skip linting entirely and return an empty list.
    """
    if mode not in LINT_MODES:
        raise ValueError(f"lint mode must be one of {LINT_MODES}, got {mode!r}")
    if mode == "off":
        return []
    diagnostics = lint_program(
        program,
        keystore=keystore,
        link_relation=link_relation,
        source_name=source_name,
    )
    if mode == "error":
        if error_count(diagnostics):
            raise LintError(diagnostics)
    else:
        for diagnostic in diagnostics:
            warnings.warn(diagnostic.render(), LintWarning, stacklevel=2)
    return diagnostics


__all__ = [
    "CODES",
    "Diagnostic",
    "LINT_MODES",
    "LintContext",
    "LintError",
    "LintWarning",
    "PASSES",
    "Severity",
    "check_program",
    "error_count",
    "exit_code",
    "lint_program",
    "lint_source",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "warning_count",
]
