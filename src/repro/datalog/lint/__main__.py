"""``python -m repro.datalog.lint`` dispatches to :mod:`.cli`."""

import sys

from repro.datalog.lint.cli import main

sys.exit(main())
