"""Structured diagnostics: the record type the static analyzer reports.

A :class:`Diagnostic` is one finding of the lint layer — a stable code
(``NDL105``), a severity, a human message, the 1-based source position the
finding anchors to, the label of the rule it concerns, and an optional
suggested fix.  The type is deliberately independent of the individual lint
passes so renderers, the CLI, the :class:`~repro.datalog.errors.LintError`
exception and tests all share one vocabulary.

Two renderers are provided: :func:`render_text` (one ``file:line:col:
severity CODE message`` line per finding, the format editors and CI log
scrapers expect) and :func:`render_json` (a stable machine-readable document
for tooling).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple


class Severity(Enum):
    """How serious a diagnostic is.

    ``ERROR`` findings make the program unrunnable or semantically wrong
    (unsafe rules, unverifiable imports, arity conflicts); ``WARNING``
    findings are quality and performance hazards (dead predicates, cartesian
    joins) that do not stop execution.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


class LintWarning(UserWarning):
    """The Python warning category used by ``lint="warn"`` mode."""


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``line`` / ``column`` are 1-based; ``(0, 0)`` means the finding has no
    source anchor (the program was built programmatically, or the finding is
    program-level).  ``end_line`` / ``end_column`` bound the finding's span
    when known (end exclusive, 0 = unknown).
    """

    code: str
    severity: Severity
    message: str
    line: int = 0
    column: int = 0
    end_line: int = 0
    end_column: int = 0
    rule_label: Optional[str] = None
    suggestion: Optional[str] = None
    #: The program/file the finding belongs to (CLI sets the path).
    source: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def is_warning(self) -> bool:
        return self.severity is Severity.WARNING

    def sort_key(self) -> Tuple:
        return (self.source or "", self.line, self.column, self.code, self.message)

    def location(self) -> str:
        """``file:line:col`` (pieces omitted when unknown)."""
        prefix = self.source or "<program>"
        if self.line or self.column:
            return f"{prefix}:{self.line}:{self.column}"
        return prefix

    def render(self) -> str:
        """One diagnostic as a ``location: severity CODE: message`` line."""
        parts = [f"{self.location()}: {self.severity} {self.code}: {self.message}"]
        if self.rule_label:
            parts.append(f"[rule {self.rule_label}]")
        line = " ".join(parts)
        if self.suggestion:
            line += f"\n    suggestion: {self.suggestion}"
        return line

    def to_dict(self) -> dict:
        """A JSON-ready dict with a stable key set."""
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
            "rule": self.rule_label,
            "suggestion": self.suggestion,
            "source": self.source,
        }

    def __str__(self) -> str:
        return self.render()


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Diagnostics in reading order: source, position, code."""
    return sorted(diagnostics, key=Diagnostic.sort_key)


def error_count(diagnostics: Sequence[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.is_error)


def warning_count(diagnostics: Sequence[Diagnostic]) -> int:
    return sum(1 for d in diagnostics if d.is_warning)


def exit_code(diagnostics: Sequence[Diagnostic], strict: bool = False) -> int:
    """The CI exit code for a lint run.

    0 when the run is clean (or has only warnings and ``strict`` is off),
    1 when any error — or, under ``strict``, any warning — was found.
    """
    if error_count(diagnostics):
        return 1
    if strict and warning_count(diagnostics):
        return 1
    return 0


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Render *diagnostics* as text, one finding per line, with a summary."""
    ordered = sort_diagnostics(diagnostics)
    lines = [d.render() for d in ordered]
    errors, warnings = error_count(ordered), warning_count(ordered)
    if errors or warnings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no diagnostics")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Render *diagnostics* as a stable JSON document."""
    ordered = sort_diagnostics(diagnostics)
    document = {
        "diagnostics": [d.to_dict() for d in ordered],
        "errors": error_count(ordered),
        "warnings": warning_count(ordered),
    }
    return json.dumps(document, indent=2, sort_keys=True)
