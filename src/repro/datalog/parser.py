"""Recursive-descent parser for NDlog and SeNDlog programs.

Supported syntax (Section 2 of the paper)::

    materialize(link, infinity, infinity, keys(1,2)).

    r1 reachable(@S, D) :- link(@S, D).
    r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).

    At S:
    s1 reachable(S, D) :- link(S, D).
    s2 linkD(D, S)@D   :- link(S, D).
    s3 reachable(Z, Y)@Z :- Z says linkD(S, Z), W says reachable(S, Y).

plus comparisons (``C < C2``), assignments (``C := C1 + C2``), function calls
(``f_concat(S, P)``) and head aggregates (``min<C>``) which are needed for the
Best-Path query used in the paper's evaluation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    FunctionCall,
    Literal,
    MaterializeDecl,
    Program,
    Rule,
    SaysAtom,
    Span,
    Term,
    Variable,
)
from repro.datalog.errors import ParseError
from repro.datalog.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    STRING,
    SYMBOL,
    VARIABLE,
    Token,
    tokenize,
)

COMPARISON_OPERATORS = {"<", ">", "<=", ">=", "==", "!=", "="}
ARITHMETIC_OPERATORS = {"+", "-", "*", "/"}
AGGREGATE_FUNCTIONS = {"min", "max", "count", "sum", "avg"}


def _token_span(token: Token) -> Span:
    """The span of a single token."""
    return Span(token.line, token.column, token.line, token.end_column)


def _span_between(start: Token, end: Token) -> Span:
    """The span from *start*'s first character to *end*'s last."""
    return Span(start.line, start.column, end.line, end.end_column)


class _Parser:
    """Stateful recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._auto_label = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != EOF:
            self._index += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            expected = text if text is not None else kind
            raise ParseError(
                f"expected {expected!r}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _at_end(self) -> bool:
        return self._peek().kind == EOF

    def _previous(self) -> Token:
        """The most recently consumed token (for closing span positions)."""
        return self._tokens[max(self._index - 1, 0)]

    # -- program structure --------------------------------------------------

    def parse_program(self) -> Program:
        rules: List[Rule] = []
        materialized: List[MaterializeDecl] = []
        context: Optional[Term] = None
        dialect = "ndlog"

        while not self._at_end():
            if self._check(KEYWORD, "materialize"):
                materialized.append(self._parse_materialize())
            elif self._check(KEYWORD, "at"):
                context = self._parse_context_header()
                dialect = "sendlog"
            else:
                rule = self._parse_rule(context)
                rules.append(rule)
                if rule.context is not None or any(
                    isinstance(lit, SaysAtom) for lit in rule.body
                ):
                    dialect = "sendlog"

        return Program(
            rules=tuple(rules), materialized=tuple(materialized), dialect=dialect
        )

    def _parse_context_header(self) -> Term:
        self._expect(KEYWORD, "at")
        token = self._peek()
        if token.kind == VARIABLE:
            self._advance()
            principal: Term = Variable(token.text)
        elif token.kind in (IDENT, STRING):
            self._advance()
            principal = Constant(token.text)
        else:
            raise ParseError(
                f"expected principal after 'At', found {token.text!r}",
                token.line,
                token.column,
            )
        self._expect(SYMBOL, ":")
        return principal

    def _parse_materialize(self) -> MaterializeDecl:
        start = self._peek()
        self._expect(KEYWORD, "materialize")
        self._expect(SYMBOL, "(")
        name = self._expect(IDENT).text
        self._expect(SYMBOL, ",")
        lifetime = self._parse_lifetime_value()
        self._expect(SYMBOL, ",")
        size = self._parse_lifetime_value()
        self._expect(SYMBOL, ",")
        self._expect(KEYWORD, "keys")
        self._expect(SYMBOL, "(")
        keys: List[int] = []
        while True:
            keys.append(int(self._expect(NUMBER).text))
            if self._check(SYMBOL, ","):
                self._advance()
            else:
                break
        self._expect(SYMBOL, ")")
        self._expect(SYMBOL, ")")
        end = self._expect(SYMBOL, ".")
        max_size = None if size is None else int(size)
        return MaterializeDecl(
            name=name,
            lifetime=lifetime,
            max_size=max_size,
            keys=tuple(keys),
            span=_span_between(start, end),
        )

    def _parse_lifetime_value(self) -> Optional[float]:
        if self._check(KEYWORD, "infinity"):
            self._advance()
            return None
        token = self._expect(NUMBER)
        return float(token.text)

    # -- rules ---------------------------------------------------------------

    def parse_single_rule(self) -> Rule:
        rule = self._parse_rule(context=None)
        if not self._at_end():
            token = self._peek()
            raise ParseError(
                f"unexpected trailing input {token.text!r}", token.line, token.column
            )
        return rule

    def _parse_rule(self, context: Optional[Term]) -> Rule:
        start = self._peek()
        label = self._parse_label()
        head = self._parse_atom(allow_aggregates=True)
        body: Tuple[Literal, ...] = ()
        if self._check(SYMBOL, ":-"):
            self._advance()
            body = tuple(self._parse_body())
        end = self._expect(SYMBOL, ".")
        return Rule(
            label=label,
            head=head,
            body=body,
            context=context,
            span=_span_between(start, end),
        )

    def _parse_label(self) -> str:
        # A label is an identifier immediately followed by another identifier
        # that starts a head atom (e.g. "r1 reachable(...)").  Rules without a
        # label get an auto-generated one.
        if self._check(IDENT) and self._check(IDENT, offset=1) and self._check(
            SYMBOL, "(", offset=2
        ):
            return self._advance().text
        self._auto_label += 1
        return f"rule{self._auto_label}"

    def _parse_body(self) -> List[Literal]:
        literals = [self._parse_literal()]
        while self._check(SYMBOL, ","):
            self._advance()
            literals.append(self._parse_literal())
        return literals

    def _parse_literal(self) -> Literal:
        start = self._peek()

        # "X says atom(...)" or "alice says atom(...)"
        if self._check(KEYWORD, "says", offset=1):
            principal = self._parse_principal_term()
            self._expect(KEYWORD, "says")
            atom = self._parse_atom(allow_aggregates=False)
            return SaysAtom(
                principal=principal,
                atom=atom,
                span=_span_between(start, self._previous()),
            )

        # Negated atom.
        if self._check(SYMBOL, "!") and self._check(IDENT, offset=1):
            self._advance()
            atom = self._parse_atom(allow_aggregates=False)
            return Atom(
                name=atom.name,
                terms=atom.terms,
                location_index=atom.location_index,
                ship_to=atom.ship_to,
                negated=True,
                span=_span_between(start, self._previous()),
            )

        # Assignment: Var := expr
        if self._check(VARIABLE) and self._check(SYMBOL, ":=", offset=1):
            target_token = self._advance()
            target = Variable(target_token.text, span=_token_span(target_token))
            self._advance()  # :=
            expression = self._parse_expression()
            return Assignment(
                target=target,
                expression=expression,
                span=_span_between(start, self._previous()),
            )

        # Ident followed by "(": either a relational atom or a built-in
        # function call that starts a comparison (e.g. "f_member(P2, S) == 0").
        if self._check(IDENT) and self._check(SYMBOL, "(", offset=1):
            atom = self._parse_atom(allow_aggregates=False)
            token = self._peek()
            if token.kind == SYMBOL and token.text in COMPARISON_OPERATORS:
                operator = self._advance().text
                right = self._parse_expression()
                left = FunctionCall(name=atom.name, args=atom.terms, span=atom.span)
                return Comparison(
                    operator=operator,
                    left=left,
                    right=right,
                    span=_span_between(start, self._previous()),
                )
            return atom

        # Otherwise a comparison between two expressions.
        left = self._parse_expression()
        token = self._peek()
        if token.kind == SYMBOL and token.text in COMPARISON_OPERATORS:
            operator = self._advance().text
            right = self._parse_expression()
            return Comparison(
                operator=operator,
                left=left,
                right=right,
                span=_span_between(start, self._previous()),
            )
        raise ParseError(
            f"expected a body literal, found {token.text!r}", token.line, token.column
        )

    def _parse_principal_term(self) -> Term:
        token = self._peek()
        if token.kind == VARIABLE:
            self._advance()
            return Variable(token.text, span=_token_span(token))
        if token.kind in (IDENT, STRING):
            self._advance()
            return Constant(token.text, span=_token_span(token))
        raise ParseError(
            f"expected principal before 'says', found {token.text!r}",
            token.line,
            token.column,
        )

    # -- atoms and terms -----------------------------------------------------

    def _parse_atom(self, allow_aggregates: bool) -> Atom:
        start = self._peek()
        name = self._expect(IDENT).text
        self._expect(SYMBOL, "(")
        terms: List[Term] = []
        location_index: Optional[int] = None
        if not self._check(SYMBOL, ")"):
            while True:
                has_location = False
                if self._check(SYMBOL, "@"):
                    self._advance()
                    has_location = True
                term = self._parse_term(allow_aggregates=allow_aggregates)
                if has_location:
                    if location_index is not None:
                        token = self._peek()
                        raise ParseError(
                            "multiple location specifiers in one atom",
                            token.line,
                            token.column,
                        )
                    location_index = len(terms)
                terms.append(term)
                if self._check(SYMBOL, ","):
                    self._advance()
                else:
                    break
        self._expect(SYMBOL, ")")

        ship_to: Optional[Term] = None
        if self._check(SYMBOL, "@"):
            self._advance()
            ship_to = self._parse_term(allow_aggregates=False)

        return Atom(
            name=name,
            terms=tuple(terms),
            location_index=location_index,
            ship_to=ship_to,
            span=_span_between(start, self._previous()),
        )

    def _parse_term(self, allow_aggregates: bool) -> Term:
        return self._parse_expression(allow_aggregates=allow_aggregates)

    def _parse_expression(self, allow_aggregates: bool = False) -> Term:
        """Parse an arithmetic expression with standard precedence."""
        return self._parse_additive(allow_aggregates)

    def _parse_additive(self, allow_aggregates: bool) -> Term:
        left = self._parse_multiplicative(allow_aggregates)
        while self._check(SYMBOL, "+") or self._check(SYMBOL, "-"):
            operator = self._advance().text
            right = self._parse_multiplicative(allow_aggregates)
            left = FunctionCall(name=operator, args=(left, right))
        return left

    def _parse_multiplicative(self, allow_aggregates: bool) -> Term:
        left = self._parse_primary(allow_aggregates)
        while self._check(SYMBOL, "*") or self._check(SYMBOL, "/"):
            operator = self._advance().text
            right = self._parse_primary(allow_aggregates)
            left = FunctionCall(name=operator, args=(left, right))
        return left

    def _parse_primary(self, allow_aggregates: bool) -> Term:
        token = self._peek()

        if token.kind == VARIABLE:
            self._advance()
            return Variable(token.text, span=_token_span(token))

        if token.kind == NUMBER:
            self._advance()
            text = token.text
            return Constant(
                float(text) if "." in text else int(text), span=_token_span(token)
            )

        if token.kind == STRING:
            self._advance()
            return Constant(token.text, span=_token_span(token))

        if token.kind == SYMBOL and token.text == "(":
            self._advance()
            inner = self._parse_expression(allow_aggregates)
            self._expect(SYMBOL, ")")
            return inner

        if token.kind == IDENT:
            # Aggregate (min<C>), function call (f_concat(...)) or constant.
            if (
                allow_aggregates
                and token.text in AGGREGATE_FUNCTIONS
                and self._check(SYMBOL, "<", offset=1)
            ):
                self._advance()  # function name
                self._advance()  # <
                variable_token = self._expect(VARIABLE)
                variable = Variable(variable_token.text, span=_token_span(variable_token))
                end = self._expect(SYMBOL, ">")
                return Aggregate(
                    function=token.text,
                    variable=variable,
                    span=_span_between(token, end),
                )
            if self._check(SYMBOL, "(", offset=1):
                self._advance()
                self._advance()  # (
                args: List[Term] = []
                if not self._check(SYMBOL, ")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._check(SYMBOL, ","):
                            self._advance()
                        else:
                            break
                end = self._expect(SYMBOL, ")")
                return FunctionCall(
                    name=token.text, args=tuple(args), span=_span_between(token, end)
                )
            self._advance()
            return Constant(token.text, span=_token_span(token))

        raise ParseError(
            f"expected a term, found {token.text!r}", token.line, token.column
        )


def parse_program(source: str) -> Program:
    """Parse NDlog / SeNDlog *source* text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single rule (terminated by ``.``) from *source*."""
    return _Parser(tokenize(source)).parse_single_rule()
