"""Abstract syntax tree for NDlog and SeNDlog programs.

The grammar follows Section 2 of the paper:

* an NDlog *program* is a list of *rules*;
* a rule is ``label head :- body_literal, ..., body_literal.``;
* literals are predicates (atoms) with terms, boolean expressions over
  function symbols, or assignments;
* each predicate may carry a *location specifier*: the attribute marked with
  ``@`` denotes where tuples of that predicate live;
* SeNDlog adds ``At P:`` context blocks, the ``says`` operator on body atoms,
  and ``@Loc`` shipping annotations on rule heads.

The AST is deliberately immutable (frozen dataclasses) so that rewrites build
new nodes instead of mutating shared structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Span:
    """A region of the source text: 1-based line/column, end exclusive.

    Spans are attached to AST nodes as non-compared metadata: two nodes that
    differ only in their span are equal, so rewrites and tests can build
    nodes without positions and still compare against parsed ones.  A node
    built outside the parser carries ``span=None`` and diagnostics fall back
    to the enclosing rule's span (or line 0 = "unknown location").
    """

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


def span_of(node: object) -> Optional[Span]:
    """The source span attached to *node*, or ``None``."""
    return getattr(node, "span", None)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Variable:
    """A Datalog variable.

    Variable names begin with an uppercase letter; a leading underscore
    (``_Cost``) marks a deliberately-unused wildcard variable, exempt from
    the unused-variable lint warning.
    """

    name: str
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def is_wildcard(self) -> bool:
        return self.name.startswith("_")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term: string, int, or float literal."""

    value: object
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class FunctionCall:
    """A call to a built-in function symbol, e.g. ``f_concat(P, D)``."""

    name: str
    args: Tuple["Term", ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate term appearing in a rule head, e.g. ``min<C>``.

    Aggregates implement the paper's Best-Path query, which selects the
    minimum-cost path for each group of non-aggregate head attributes.
    """

    function: str
    variable: Variable
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"{self.function}<{self.variable}>"


Term = Union[Variable, Constant, FunctionCall, Aggregate]


def term_variables(term: Term) -> Iterator[Variable]:
    """Yield every variable appearing in *term* (depth first)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, Aggregate):
        yield term.variable
    elif isinstance(term, FunctionCall):
        for arg in term.args:
            yield from term_variables(arg)


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Atom:
    """A predicate literal, e.g. ``link(@S, D)`` or ``reachable(S, D)@D``.

    Attributes
    ----------
    name:
        Predicate (relation) name.
    terms:
        The argument terms, in order.
    location_index:
        Index of the attribute carrying the ``@`` location specifier, or
        ``None`` if the atom is written without one (SeNDlog-localised form).
    ship_to:
        For head atoms only: the term after a trailing ``@`` (SeNDlog's
        "send the derived tuple to this location"), e.g. the ``@D`` in
        ``linkD(D, S)@D``.
    negated:
        True for stratified negation (``!pred(...)``).
    """

    name: str
    terms: Tuple[Term, ...]
    location_index: Optional[int] = None
    ship_to: Optional[Term] = None
    negated: bool = False
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def location_term(self) -> Optional[Term]:
        if self.location_index is None:
            return None
        return self.terms[self.location_index]

    def variables(self) -> Iterator[Variable]:
        for term in self.terms:
            yield from term_variables(term)
        if self.ship_to is not None:
            yield from term_variables(self.ship_to)

    def with_location(self, index: Optional[int]) -> "Atom":
        return replace(self, location_index=index)

    def __str__(self) -> str:
        parts = []
        for i, term in enumerate(self.terms):
            prefix = "@" if i == self.location_index else ""
            parts.append(f"{prefix}{term}")
        rendered = f"{self.name}({', '.join(parts)})"
        if self.ship_to is not None:
            rendered += f"@{self.ship_to}"
        if self.negated:
            rendered = "!" + rendered
        return rendered


@dataclass(frozen=True)
class SaysAtom:
    """A SeNDlog body literal of the form ``Principal says atom``.

    ``principal`` is either a :class:`Variable` bound elsewhere in the rule or
    a :class:`Constant` naming a fixed principal.
    """

    principal: Term
    atom: Atom
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def name(self) -> str:
        return self.atom.name

    def variables(self) -> Iterator[Variable]:
        yield from term_variables(self.principal)
        yield from self.atom.variables()

    def __str__(self) -> str:
        return f"{self.principal} says {self.atom}"


@dataclass(frozen=True)
class Comparison:
    """A boolean comparison literal, e.g. ``C < C2`` or ``N > 3``."""

    operator: str
    left: Term
    right: Term
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def variables(self) -> Iterator[Variable]:
        yield from term_variables(self.left)
        yield from term_variables(self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True)
class Assignment:
    """An assignment literal, e.g. ``C := C1 + C2`` or ``P := f_concat(S, P2)``."""

    target: Variable
    expression: Term
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def variables(self) -> Iterator[Variable]:
        yield self.target
        yield from term_variables(self.expression)

    def __str__(self) -> str:
        return f"{self.target} := {self.expression}"


Expression = Union[Comparison, Assignment]
Literal = Union[Atom, SaysAtom, Comparison, Assignment]


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """A single NDlog / SeNDlog rule.

    Attributes
    ----------
    label:
        The rule label (``r1``, ``s2``...), used for provenance annotations:
        each derivation records which rule produced it.
    head:
        The head atom.
    body:
        The ordered body literals.
    context:
        The SeNDlog principal context the rule belongs to (from ``At P:``
        blocks), or ``None`` for plain NDlog rules.
    """

    label: str
    head: Atom
    body: Tuple[Literal, ...]
    context: Optional[Term] = None
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def body_atoms(self) -> Iterator[Atom]:
        """Yield the relational atoms in the body (unwrapping ``says``)."""
        for literal in self.body:
            if isinstance(literal, Atom):
                yield literal
            elif isinstance(literal, SaysAtom):
                yield literal.atom

    def body_predicates(self) -> Tuple[str, ...]:
        return tuple(atom.name for atom in self.body_atoms())

    def variables(self) -> Iterator[Variable]:
        yield from self.head.variables()
        for literal in self.body:
            yield from literal.variables()

    def is_fact(self) -> bool:
        """A rule with an empty body asserts a base fact."""
        return not self.body

    def __str__(self) -> str:
        if self.is_fact():
            return f"{self.label} {self.head}."
        rendered_body = ", ".join(str(lit) for lit in self.body)
        return f"{self.label} {self.head} :- {rendered_body}."


@dataclass(frozen=True)
class Program:
    """A parsed NDlog / SeNDlog program.

    ``materialized`` carries the ``materialize(...)`` declarations found in
    the source (relation name -> (lifetime seconds, size, primary-key column
    indexes)), mirroring P2's soft-state declarations.
    """

    rules: Tuple[Rule, ...]
    materialized: Tuple["MaterializeDecl", ...] = ()
    dialect: str = "ndlog"

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """Return the rules whose head derives *predicate*."""
        return tuple(rule for rule in self.rules if rule.head.name == predicate)

    def head_predicates(self) -> Tuple[str, ...]:
        seen = []
        for rule in self.rules:
            if rule.head.name not in seen:
                seen.append(rule.head.name)
        return tuple(seen)

    def body_predicates(self) -> Tuple[str, ...]:
        seen = []
        for rule in self.rules:
            for name in rule.body_predicates():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def base_predicates(self) -> Tuple[str, ...]:
        """Predicates that appear only in rule bodies (EDB relations)."""
        heads = set(self.head_predicates())
        return tuple(name for name in self.body_predicates() if name not in heads)

    def derived_predicates(self) -> Tuple[str, ...]:
        """Predicates derived by at least one rule (IDB relations)."""
        return self.head_predicates()

    def contexts(self) -> Tuple[Term, ...]:
        seen: list[Term] = []
        for rule in self.rules:
            if rule.context is not None and rule.context not in seen:
                seen.append(rule.context)
        return tuple(seen)

    def __str__(self) -> str:
        lines = [str(decl) for decl in self.materialized]
        lines.extend(str(rule) for rule in self.rules)
        return "\n".join(lines)


@dataclass(frozen=True)
class MaterializeDecl:
    """A ``materialize(name, lifetime, size, keys(...))`` declaration.

    ``lifetime`` is the soft-state time-to-live in seconds (``infinity`` maps
    to ``None``); ``keys`` are 1-based attribute positions as in P2.
    """

    name: str
    lifetime: Optional[float]
    max_size: Optional[int]
    keys: Tuple[int, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        lifetime = "infinity" if self.lifetime is None else str(self.lifetime)
        size = "infinity" if self.max_size is None else str(self.max_size)
        keys = ", ".join(str(k) for k in self.keys)
        return f"materialize({self.name}, {lifetime}, {size}, keys({keys}))."


def make_atom(name: str, *terms: object, location: Optional[int] = None) -> Atom:
    """Convenience constructor used heavily in tests and examples.

    Strings beginning with an uppercase letter — optionally after a wildcard
    underscore (``"_C"``) — become variables; everything else becomes a
    constant.
    """
    converted: list[Term] = []
    for term in terms:
        if isinstance(term, (Variable, Constant, FunctionCall, Aggregate)):
            converted.append(term)
        elif isinstance(term, str) and (
            term[:1].isupper() or (term[:1] == "_" and term[1:2].isupper())
        ):
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(name=name, terms=tuple(converted), location_index=location)
