"""Compilation of localized rules into executable plans.

A :class:`RulePlan` is the engine-facing representation of one rule: the
ordered body atoms to join, the expression literals (comparisons and
assignments) to apply, head-construction metadata (including aggregates and
the shipping destination), and the SeNDlog principal requirements implied by
``says`` literals.

The engine evaluates plans in a delta-driven (semi-naive) fashion: whenever a
new tuple of predicate *p* appears, every plan containing *p* in its body is
triggered once per occurrence of *p*, with the new tuple bound to that
occurrence and the remaining atoms joined against the stored tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Program,
    Rule,
    SaysAtom,
    Term,
    Variable,
)
from repro.datalog.errors import PlanError
from repro.datalog.rewrite import is_localized


@dataclass(frozen=True)
class BodyAtomPlan:
    """One relational body atom of a compiled rule.

    ``says_principal`` is set for SeNDlog ``P says atom`` literals: matching
    tuples must have been asserted (signed) by a principal that unifies with
    the term.
    """

    atom: Atom
    says_principal: Optional[Term] = None

    @property
    def predicate(self) -> str:
        return self.atom.name

    @property
    def negated(self) -> bool:
        return self.atom.negated


@dataclass(frozen=True)
class HeadPlan:
    """Head-construction metadata for a compiled rule.

    Attributes
    ----------
    atom:
        The head atom (terms may include one :class:`Aggregate`).
    aggregate_index:
        Position of the aggregate term in the head, or ``None``.
    aggregate:
        The aggregate itself, when present.
    group_by_indexes:
        Head positions that form the aggregate group (all non-aggregate
        positions).
    destination:
        The term giving the node the derived tuple must be shipped to: the
        head's ``@`` location specifier for NDlog, or the trailing ``@Loc``
        ship-to annotation for SeNDlog.  ``None`` means the tuple stays local.
    """

    atom: Atom
    aggregate_index: Optional[int]
    aggregate: Optional[Aggregate]
    group_by_indexes: Tuple[int, ...]
    destination: Optional[Term]

    @property
    def predicate(self) -> str:
        return self.atom.name

    @property
    def has_aggregate(self) -> bool:
        return self.aggregate is not None


@dataclass(frozen=True)
class RulePlan:
    """A fully compiled, localized rule ready for delta evaluation."""

    rule: Rule
    head: HeadPlan
    body_atoms: Tuple[BodyAtomPlan, ...]
    expressions: Tuple[object, ...]  # Comparison | Assignment, in source order

    @property
    def label(self) -> str:
        return self.rule.label

    @property
    def context(self) -> Optional[Term]:
        return self.rule.context

    def positive_atoms(self) -> Tuple[BodyAtomPlan, ...]:
        return tuple(b for b in self.body_atoms if not b.negated)

    def negative_atoms(self) -> Tuple[BodyAtomPlan, ...]:
        return tuple(b for b in self.body_atoms if b.negated)

    def trigger_indexes(self, predicate: str) -> Tuple[int, ...]:
        """Indexes of positive body atoms over *predicate* (delta positions)."""
        return tuple(
            i
            for i, b in enumerate(self.body_atoms)
            if b.predicate == predicate and not b.negated
        )


@dataclass(frozen=True)
class CompiledProgram:
    """All rule plans of a program, indexed for delta-driven evaluation."""

    program: Program
    plans: Tuple[RulePlan, ...]
    triggers: Dict[str, Tuple[RulePlan, ...]] = field(default_factory=dict)

    def plans_for_head(self, predicate: str) -> Tuple[RulePlan, ...]:
        return tuple(p for p in self.plans if p.head.predicate == predicate)

    def plans_triggered_by(self, predicate: str) -> Tuple[RulePlan, ...]:
        return self.triggers.get(predicate, ())


def compile_rule(rule: Rule) -> RulePlan:
    """Compile a single localized rule into a :class:`RulePlan`."""
    if not is_localized(rule):
        raise PlanError(
            f"rule {rule.label} is not localized; run the localization rewrite first"
        )

    body_atoms: List[BodyAtomPlan] = []
    expressions: List[object] = []
    for literal in rule.body:
        if isinstance(literal, Atom):
            body_atoms.append(BodyAtomPlan(atom=literal))
        elif isinstance(literal, SaysAtom):
            body_atoms.append(
                BodyAtomPlan(atom=literal.atom, says_principal=literal.principal)
            )
        elif isinstance(literal, (Comparison, Assignment)):
            expressions.append(literal)
        else:  # pragma: no cover - parser cannot produce other literal types
            raise PlanError(f"rule {rule.label}: unsupported literal {literal!r}")

    head = _compile_head(rule)
    return RulePlan(
        rule=rule,
        head=head,
        body_atoms=tuple(body_atoms),
        expressions=tuple(expressions),
    )


def compile_program(program: Program) -> CompiledProgram:
    """Compile every rule of a (localized) program and build trigger indexes."""
    plans = tuple(compile_rule(rule) for rule in program.rules if not rule.is_fact())
    triggers: Dict[str, List[RulePlan]] = {}
    for plan in plans:
        for body_atom in plan.positive_atoms():
            triggers.setdefault(body_atom.predicate, [])
            if plan not in triggers[body_atom.predicate]:
                triggers[body_atom.predicate].append(plan)
    return CompiledProgram(
        program=program,
        plans=plans,
        triggers={name: tuple(plans_) for name, plans_ in triggers.items()},
    )


def _compile_head(rule: Rule) -> HeadPlan:
    aggregate_index: Optional[int] = None
    aggregate: Optional[Aggregate] = None
    for index, term in enumerate(rule.head.terms):
        if isinstance(term, Aggregate):
            if aggregate is not None:
                raise PlanError(
                    f"rule {rule.label}: at most one aggregate per head is supported"
                )
            aggregate_index = index
            aggregate = term

    group_by = tuple(
        i for i in range(len(rule.head.terms)) if i != aggregate_index
    )

    destination: Optional[Term] = None
    if rule.head.ship_to is not None:
        destination = rule.head.ship_to
    elif rule.head.location_term is not None:
        destination = rule.head.location_term

    return HeadPlan(
        atom=rule.head,
        aggregate_index=aggregate_index,
        aggregate=aggregate,
        group_by_indexes=group_by,
        destination=destination,
    )
