"""Compilation of localized rules into executable plans.

A :class:`RulePlan` is the engine-facing representation of one rule: the
ordered body atoms to join, the expression literals (comparisons and
assignments) to apply, head-construction metadata (including aggregates and
the shipping destination), and the SeNDlog principal requirements implied by
``says`` literals.

The engine evaluates plans in a delta-driven (semi-naive) fashion: whenever a
new tuple of predicate *p* appears, every plan containing *p* in its body is
triggered once per occurrence of *p*, with the new tuple bound to that
occurrence and the remaining atoms joined against the stored tables.

For each (rule, delta position) pair the compiler also builds a
:class:`DeltaPlan`: the remaining body atoms greedily ordered by
bound-variable coverage (most-bound-first, constants counted), a
:class:`ProbeSpec` per atom giving the statically bound columns its table
probe can use, and a static schedule of which expression literals to apply
after each join step.  The evaluator executes these plans directly instead
of re-deriving bound columns and expression readiness per candidate tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.ast import (
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    FunctionCall,
    Program,
    Rule,
    SaysAtom,
    Term,
    Variable,
)
from repro.datalog.errors import EvaluationError, PlanError
from repro.datalog.rewrite import is_localized

#: Comparison operators shared by the planner's compiled expression closures
#: and the evaluator's generic ``apply_expression`` fallback.
COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class BodyAtomPlan:
    """One relational body atom of a compiled rule.

    ``says_principal`` is set for SeNDlog ``P says atom`` literals: matching
    tuples must have been asserted (signed) by a principal that unifies with
    the term.
    """

    atom: Atom
    says_principal: Optional[Term] = None

    @property
    def predicate(self) -> str:
        return self.atom.name

    @property
    def negated(self) -> bool:
        return self.atom.negated

    @cached_property
    def unifier(self) -> "Unifier":
        """Compiled unification closure for this atom (see :func:`compile_unifier`)."""
        return compile_unifier(self.atom, self.says_principal)

    @cached_property
    def probe_unifier(self) -> "Unifier":
        """Like :attr:`unifier` but without the relation/arity guard.

        Only for facts probed from this atom's own table, which match the
        relation and arity by construction.
        """
        return compile_unifier(self.atom, self.says_principal, check_relation=False)


@dataclass(frozen=True)
class HeadPlan:
    """Head-construction metadata for a compiled rule.

    Attributes
    ----------
    atom:
        The head atom (terms may include one :class:`Aggregate`).
    aggregate_index:
        Position of the aggregate term in the head, or ``None``.
    aggregate:
        The aggregate itself, when present.
    group_by_indexes:
        Head positions that form the aggregate group (all non-aggregate
        positions).
    destination:
        The term giving the node the derived tuple must be shipped to: the
        head's ``@`` location specifier for NDlog, or the trailing ``@Loc``
        ship-to annotation for SeNDlog.  ``None`` means the tuple stays local.
    """

    atom: Atom
    aggregate_index: Optional[int]
    aggregate: Optional[Aggregate]
    group_by_indexes: Tuple[int, ...]
    destination: Optional[Term]

    @property
    def predicate(self) -> str:
        return self.atom.name

    @property
    def has_aggregate(self) -> bool:
        return self.aggregate is not None


@dataclass(frozen=True)
class ProbeSpec:
    """Precomputed bound-column probe for one body atom at one join position.

    ``columns`` are the atom argument positions that are statically guaranteed
    to be bound when the atom is probed (constants, plus variables bound by
    the delta, by earlier atoms in the join order, or by assignments whose
    inputs are bound by then).  ``terms`` holds the :class:`Constant` or
    :class:`Variable` at each such column, so the evaluator can build the
    lookup key with one pass over the bindings instead of re-deriving the
    bound columns per candidate probe.
    """

    columns: Tuple[int, ...]
    terms: Tuple[Term, ...]


@dataclass(frozen=True)
class JoinStep:
    """One atom of an optimized join order, with its probe spec."""

    body_index: int
    atom_plan: BodyAtomPlan
    probe: ProbeSpec


@dataclass(frozen=True)
class DeltaPlan:
    """The optimized join pipeline for one (rule, delta position) pair.

    ``steps`` are the remaining positive body atoms, greedily reordered
    most-bound-first; ``negated`` are the negated atoms (always checked last,
    stratified semantics) with probe specs computed from the full bound set.

    ``expression_batches`` has ``len(steps) + 1`` entries: batch ``i`` holds
    the expression literals (in dependency order) that first become fully
    bound after unifying the delta (``i == 0``) or join step ``i - 1``.
    Which variables are bound at each position is static, so the evaluator
    applies exactly these batches instead of re-scanning every expression
    for readiness at every position.  ``safe`` is False when some expression
    never becomes evaluable — the rule can produce no firing from this delta
    position.

    ``body_order`` maps step positions back to body order (``steps[i]`` is
    the ``body_order.index(i)``-th non-delta atom of the original body), so
    the evaluator can report antecedents in body order — making provenance
    structure independent of the join order the optimizer picked — without
    re-sorting per firing.
    """

    delta_index: int
    steps: Tuple[JoinStep, ...]
    negated: Tuple[JoinStep, ...]
    expression_batches: Tuple[Tuple[object, ...], ...]
    safe: bool
    body_order: Tuple[int, ...]

    @cached_property
    def compiled_batches(self) -> Tuple[Tuple[CompiledExpression, ...], ...]:
        """The expression batches in compiled (closure) form."""
        return tuple(
            tuple(compile_expression(expression) for expression in batch)
            for batch in self.expression_batches
        )


@dataclass(frozen=True)
class RulePlan:
    """A fully compiled, localized rule ready for delta evaluation."""

    rule: Rule
    head: HeadPlan
    body_atoms: Tuple[BodyAtomPlan, ...]
    expressions: Tuple[object, ...]  # Comparison | Assignment, in source order
    delta_plans: Dict[int, DeltaPlan] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def label(self) -> str:
        return self.rule.label

    @property
    def context(self) -> Optional[Term]:
        return self.rule.context

    @cached_property
    def aggregate_key(self) -> str:
        """Stable key for this rule's aggregate state (hot path: per firing)."""
        return f"{self.label}:{self.head.predicate}"

    @cached_property
    def head_builder(self) -> Callable[[Dict[str, object]], Tuple[object, ...]]:
        """Compiled closure building the head value tuple from final bindings."""
        return compile_tuple_builder(self.head.atom.terms)

    @cached_property
    def destination_builder(self) -> Optional[TermEvaluator]:
        """Compiled evaluator for the shipping destination, if any."""
        if self.head.destination is None:
            return None
        return compile_term_evaluator(self.head.destination)

    def positive_atoms(self) -> Tuple[BodyAtomPlan, ...]:
        return tuple(b for b in self.body_atoms if not b.negated)

    def negative_atoms(self) -> Tuple[BodyAtomPlan, ...]:
        return tuple(b for b in self.body_atoms if b.negated)

    def trigger_indexes(self, predicate: str) -> Tuple[int, ...]:
        """Indexes of positive body atoms over *predicate* (delta positions)."""
        return tuple(
            i
            for i, b in enumerate(self.body_atoms)
            if b.predicate == predicate and not b.negated
        )

    def delta_plan(self, delta_index: int) -> DeltaPlan:
        """The optimized join order for *delta_index*, computed on first use."""
        plan = self.delta_plans.get(delta_index)
        if plan is None:
            plan = build_delta_plan(self.body_atoms, self.expressions, delta_index)
            self.delta_plans[delta_index] = plan
        return plan


#: A compiled unification closure: ``unifier(fact, bindings)`` returns the
#: (possibly extended) bindings on success or ``None`` on mismatch.  The input
#: bindings dict is never mutated; it is copied at most once per call.
Unifier = Callable[[object, Dict[str, object]], Optional[Dict[str, object]]]

#: A compiled term evaluator: ``evaluator(bindings)`` returns the term value.
TermEvaluator = Callable[[Dict[str, object]], object]

#: A compiled expression literal, scheduled by the planner:
#: ``("cmp", check, None)`` where ``check(bindings)`` returns a bool, or
#: ``("assign", evaluate, target_name)``.
CompiledExpression = Tuple[str, TermEvaluator, Optional[str]]

_UNSET = object()


def compile_term_evaluator(term: Term) -> TermEvaluator:
    """Compile *term* into a closure evaluating it under a bindings dict.

    Replaces the evaluator's per-call ``isinstance`` dispatch (the profiled
    ``evaluate_term`` hot spot): variable lookups, constants, builtin
    resolution and argument shapes are all decided once at plan time.
    """
    if isinstance(term, Variable):
        name = term.name

        def evaluate_variable(bindings):
            try:
                return bindings[name]
            except KeyError:
                raise EvaluationError(f"unbound variable {name}") from None

        return evaluate_variable
    if isinstance(term, Constant):
        value = term.value
        return lambda bindings: value
    if isinstance(term, FunctionCall):
        # Imported lazily: the builtins module belongs to the engine layer.
        from repro.engine.builtins import BUILTIN_FUNCTIONS

        function = BUILTIN_FUNCTIONS.get(term.name)
        if function is None:
            symbol = term.name

            def evaluate_unknown(bindings):
                raise EvaluationError(f"unknown function symbol {symbol!r}")

            return evaluate_unknown
        argument_evaluators = tuple(compile_term_evaluator(arg) for arg in term.args)
        if len(argument_evaluators) == 1:
            only = argument_evaluators[0]
            return lambda bindings: function(only(bindings))
        if len(argument_evaluators) == 2:
            first, second = argument_evaluators
            return lambda bindings: function(first(bindings), second(bindings))
        return lambda bindings: function(
            *[evaluate(bindings) for evaluate in argument_evaluators]
        )
    if isinstance(term, Aggregate):
        return compile_term_evaluator(term.variable)

    def evaluate_unsupported(bindings):
        raise EvaluationError(f"cannot evaluate term {term!r}")

    return evaluate_unsupported


def compile_expression(expression: object) -> CompiledExpression:
    """Compile a comparison or assignment literal into closure form."""
    if isinstance(expression, Comparison):
        comparator = COMPARATORS.get(expression.operator)
        if comparator is None:
            raise EvaluationError(
                f"unknown comparison operator {expression.operator!r}"
            )
        left = compile_term_evaluator(expression.left)
        right = compile_term_evaluator(expression.right)

        def check(bindings):
            return comparator(left(bindings), right(bindings))

        return ("cmp", check, None)
    if isinstance(expression, Assignment):
        return (
            "assign",
            compile_term_evaluator(expression.expression),
            expression.target.name,
        )
    raise EvaluationError(f"unsupported expression literal {expression!r}")


def compile_tuple_builder(
    terms: Sequence[Term],
) -> Callable[[Dict[str, object]], Tuple[object, ...]]:
    """Compile *terms* into a closure building their value tuple.

    The common all-variables head gets a C-level ``map`` over the bindings
    dict; mixed heads fall back to one compiled evaluator per term.
    """
    if all(isinstance(term, Variable) for term in terms):
        names = tuple(term.name for term in terms)

        def build_from_variables(bindings):
            try:
                return tuple(map(bindings.__getitem__, names))
            except KeyError as exc:
                raise EvaluationError(f"unbound variable {exc.args[0]}") from None

        return build_from_variables
    evaluators = tuple(compile_term_evaluator(term) for term in terms)
    return lambda bindings: tuple(evaluate(bindings) for evaluate in evaluators)


def compile_unifier(
    atom: Atom, says_principal: Optional[Term] = None, check_relation: bool = True
) -> Unifier:
    """Compile *atom* into a specialized unification closure.

    The closure replaces the per-term ``isinstance`` dispatch of the generic
    ``unify_atom`` loop with lists precomputed once per atom: constant checks
    (column, expected value), variable slots (column, name), and — rarely —
    general terms (function calls / aggregates) that fall back to full term
    unification.  The ``says`` principal requirement is folded in, so the
    evaluator needs a single call per candidate fact on the join hot path.

    ``check_relation=False`` omits the relation-name/arity guard: safe only
    for facts probed out of the atom's own table, which match by
    construction (the evaluator's inner join loop uses this variant).
    """
    name = atom.name
    arity = len(atom.terms)
    const_checks: List[Tuple[int, object]] = []
    var_slots: List[Tuple[int, str]] = []
    general_slots: List[Tuple[int, Term]] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            const_checks.append((index, term.value))
        elif isinstance(term, Variable):
            var_slots.append((index, term.name))
        else:
            general_slots.append((index, term))
    consts = tuple(const_checks)
    slots = tuple(var_slots)
    generals = tuple(general_slots)

    says_var = says_principal.name if isinstance(says_principal, Variable) else None
    says_const = (
        says_principal.value if isinstance(says_principal, Constant) else None
    )
    says_general = (
        says_principal
        if says_principal is not None and says_var is None and says_const is None
        else None
    )

    unify_term = None
    if generals or says_general is not None:
        # Imported lazily: the evaluator module imports this one at load time.
        from repro.engine.seminaive import unify_term

    def unify(fact, bindings):
        values = fact.values
        if check_relation and (fact.relation != name or len(values) != arity):
            return None
        for index, expected in consts:
            if values[index] != expected:
                return None
        current = bindings
        copied = False
        if says_var is not None:
            asserted = fact.asserted_by
            if asserted is None:
                return None
            existing = current.get(says_var, _UNSET)
            if existing is _UNSET:
                current = dict(current)
                copied = True
                current[says_var] = asserted
            elif existing != asserted:
                return None
        elif says_const is not None:
            if fact.asserted_by != says_const:
                return None
        elif says_general is not None:
            if fact.asserted_by is None:
                return None
            current = unify_term(says_general, fact.asserted_by, current)
            if current is None:
                return None
            copied = current is not bindings
        for index, var_name in slots:
            value = values[index]
            existing = current.get(var_name, _UNSET)
            if existing is _UNSET:
                if not copied:
                    current = dict(current)
                    copied = True
                current[var_name] = value
            elif existing != value:
                return None
        for index, term in generals:
            current = unify_term(term, values[index], current)
            if current is None:
                return None
        return current

    return unify


#: (relation, arity, columns) — a hash index a delta batch will probe.
IndexSpec = Tuple[str, int, Tuple[int, ...]]


@dataclass(frozen=True)
class CompiledProgram:
    """All rule plans of a program, indexed for delta-driven evaluation."""

    program: Program
    plans: Tuple[RulePlan, ...]
    triggers: Dict[str, Tuple[RulePlan, ...]] = field(default_factory=dict)
    _index_specs: Dict[str, Tuple[IndexSpec, ...]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _trigger_pairs: Dict[str, Tuple[Tuple[RulePlan, Tuple[int, ...]], ...]] = field(
        default_factory=dict, compare=False, repr=False
    )
    _probe_relations: Dict[str, Tuple[Tuple[str, int], ...]] = field(
        default_factory=dict, compare=False, repr=False
    )

    def plans_for_head(self, predicate: str) -> Tuple[RulePlan, ...]:
        return tuple(p for p in self.plans if p.head.predicate == predicate)

    def plans_triggered_by(self, predicate: str) -> Tuple[RulePlan, ...]:
        return self.triggers.get(predicate, ())

    def trigger_pairs(
        self, predicate: str
    ) -> Tuple[Tuple[RulePlan, Tuple[int, ...]], ...]:
        """``(plan, delta positions)`` pairs for *predicate*, cached.

        The delta loop consults this per delta; recomputing the positions
        each time was measurable on large runs.
        """
        cached = self._trigger_pairs.get(predicate)
        if cached is None:
            cached = tuple(
                (plan, plan.trigger_indexes(predicate))
                for plan in self.plans_triggered_by(predicate)
            )
            self._trigger_pairs[predicate] = cached
        return cached

    def index_specs_for(self, relation: str) -> Tuple[IndexSpec, ...]:
        """Every hash index a delta of *relation* can probe, deduplicated.

        The engine warms these once per same-relation delta batch instead of
        letting the first probe of each rule build them lazily mid-join.
        """
        cached = self._index_specs.get(relation)
        if cached is not None:
            return cached
        specs: List[IndexSpec] = []
        seen: Set[IndexSpec] = set()
        for plan in self.plans_triggered_by(relation):
            for delta_index in plan.trigger_indexes(relation):
                delta_plan = plan.delta_plan(delta_index)
                for step in delta_plan.steps + delta_plan.negated:
                    if not step.probe.columns:
                        continue
                    atom = step.atom_plan.atom
                    spec = (atom.name, atom.arity, step.probe.columns)
                    if spec not in seen:
                        seen.add(spec)
                        specs.append(spec)
        result = tuple(specs)
        self._index_specs[relation] = result
        return result

    def probe_relations_for(self, relation: str) -> Tuple[Tuple[str, int], ...]:
        """Every ``(relation, arity)`` table deltas of *relation* will probe.

        This is the soft-state expiry set: the engine expires these tables
        once per same-relation delta batch (next to the index warm-up)
        instead of on every probe of every binding inside the join loops.
        """
        cached = self._probe_relations.get(relation)
        if cached is not None:
            return cached
        tables: List[Tuple[str, int]] = []
        seen: Set[Tuple[str, int]] = set()
        for plan in self.plans_triggered_by(relation):
            for delta_index in plan.trigger_indexes(relation):
                delta_plan = plan.delta_plan(delta_index)
                for step in delta_plan.steps + delta_plan.negated:
                    atom = step.atom_plan.atom
                    key = (atom.name, atom.arity)
                    if key not in seen:
                        seen.add(key)
                        tables.append(key)
        result = tuple(tables)
        self._probe_relations[relation] = result
        return result


def compile_rule(rule: Rule) -> RulePlan:
    """Compile a single localized rule into a :class:`RulePlan`."""
    if not is_localized(rule):
        raise PlanError(
            f"rule {rule.label} is not localized; run the localization rewrite first"
        )

    body_atoms: List[BodyAtomPlan] = []
    expressions: List[object] = []
    for literal in rule.body:
        if isinstance(literal, Atom):
            body_atoms.append(BodyAtomPlan(atom=literal))
        elif isinstance(literal, SaysAtom):
            body_atoms.append(
                BodyAtomPlan(atom=literal.atom, says_principal=literal.principal)
            )
        elif isinstance(literal, (Comparison, Assignment)):
            expressions.append(literal)
        else:  # pragma: no cover - parser cannot produce other literal types
            raise PlanError(f"rule {rule.label}: unsupported literal {literal!r}")

    head = _compile_head(rule)
    atoms = tuple(body_atoms)
    exprs = tuple(expressions)
    delta_plans = {
        index: build_delta_plan(atoms, exprs, index)
        for index, atom_plan in enumerate(atoms)
        if not atom_plan.negated
    }
    return RulePlan(
        rule=rule,
        head=head,
        body_atoms=atoms,
        expressions=exprs,
        delta_plans=delta_plans,
    )


def compile_program(program: Program) -> CompiledProgram:
    """Compile every rule of a (localized) program and build trigger indexes."""
    plans = tuple(compile_rule(rule) for rule in program.rules if not rule.is_fact())
    triggers: Dict[str, List[RulePlan]] = {}
    for plan in plans:
        for body_atom in plan.positive_atoms():
            triggers.setdefault(body_atom.predicate, [])
            if plan not in triggers[body_atom.predicate]:
                triggers[body_atom.predicate].append(plan)
    return CompiledProgram(
        program=program,
        plans=plans,
        triggers={name: tuple(plans_) for name, plans_ in triggers.items()},
    )


# ---------------------------------------------------------------------------
# Bound-aware join ordering
# ---------------------------------------------------------------------------

def build_delta_plan(
    body_atoms: Tuple[BodyAtomPlan, ...],
    expressions: Tuple[object, ...],
    delta_index: int,
) -> DeltaPlan:
    """Order the non-delta body atoms greedily by bound-variable coverage.

    Starting from the variables the delta occurrence binds, repeatedly pick
    the remaining positive atom with the most bound argument positions
    (constants count as bound; ties broken by body order, keeping the
    optimizer deterministic).  After each pick, the atom's variables — plus
    any assignment targets that become computable — join the bound set, and
    each atom's :class:`ProbeSpec` records the columns bound at its probe
    time so the evaluator can hit :meth:`Table.lookup` directly.
    """
    if not (0 <= delta_index < len(body_atoms)):
        raise PlanError(f"delta index {delta_index} out of range")
    delta_atom = body_atoms[delta_index]
    if delta_atom.negated:
        raise PlanError("cannot use a negated atom as the delta")

    bound = _atom_bound_variables(delta_atom)
    applied: Set[int] = set()
    batches: List[Tuple[object, ...]] = [_ready_batch(expressions, applied, bound)]
    remaining = [
        (index, atom_plan)
        for index, atom_plan in enumerate(body_atoms)
        if index != delta_index and not atom_plan.negated
    ]

    steps: List[JoinStep] = []
    while remaining:
        index, atom_plan = max(
            remaining,
            key=lambda item: (_bound_column_count(item[1].atom, bound), -item[0]),
        )
        remaining.remove((index, atom_plan))
        steps.append(
            JoinStep(
                body_index=index,
                atom_plan=atom_plan,
                probe=_probe_spec(atom_plan.atom, bound),
            )
        )
        bound |= _atom_bound_variables(atom_plan)
        batches.append(_ready_batch(expressions, applied, bound))

    negated = tuple(
        JoinStep(
            body_index=index,
            atom_plan=atom_plan,
            probe=_probe_spec(atom_plan.atom, bound),
        )
        for index, atom_plan in enumerate(body_atoms)
        if atom_plan.negated
    )
    return DeltaPlan(
        delta_index=delta_index,
        steps=tuple(steps),
        negated=negated,
        expression_batches=tuple(batches),
        safe=len(applied) == len(expressions),
        body_order=tuple(
            sorted(range(len(steps)), key=lambda i: steps[i].body_index)
        ),
    )


def _atom_bound_variables(atom_plan: BodyAtomPlan) -> Set[str]:
    """Variables a successful unification against *atom_plan* binds."""
    names = {
        term.name for term in atom_plan.atom.terms if isinstance(term, Variable)
    }
    if isinstance(atom_plan.says_principal, Variable):
        names.add(atom_plan.says_principal.name)
    return names


def _term_variables(term: Term) -> Set[str]:
    if isinstance(term, Variable):
        return {term.name}
    if isinstance(term, FunctionCall):
        names: Set[str] = set()
        for arg in term.args:
            names |= _term_variables(arg)
        return names
    if isinstance(term, Aggregate):
        return {term.variable.name}
    return set()


def _ready_batch(
    expressions: Sequence[object], applied: Set[int], bound: Set[str]
) -> Tuple[object, ...]:
    """Expressions that first become fully bound under *bound*, in order.

    Mutates *applied* (indexes scheduled so far) and *bound* (assignment
    targets become bound), cascading until no further expression is ready —
    the static mirror of the evaluator's old per-binding readiness scan.
    """
    batch: List[object] = []
    progress = True
    while progress:
        progress = False
        for index, expression in enumerate(expressions):
            if index in applied:
                continue
            if isinstance(expression, Assignment):
                if _term_variables(expression.expression) <= bound:
                    applied.add(index)
                    bound.add(expression.target.name)
                    batch.append(expression)
                    progress = True
            elif isinstance(expression, Comparison):
                if (
                    _term_variables(expression.left) | _term_variables(expression.right)
                ) <= bound:
                    applied.add(index)
                    batch.append(expression)
                    progress = True
    return tuple(batch)


def _bound_column_count(atom: Atom, bound: Set[str]) -> int:
    """Argument positions of *atom* bound under *bound* (constants count)."""
    count = 0
    for term in atom.terms:
        if isinstance(term, Constant):
            count += 1
        elif isinstance(term, Variable) and term.name in bound:
            count += 1
    return count


def _probe_spec(atom: Atom, bound: Set[str]) -> ProbeSpec:
    columns: List[int] = []
    terms: List[Term] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant) or (
            isinstance(term, Variable) and term.name in bound
        ):
            columns.append(index)
            terms.append(term)
    return ProbeSpec(columns=tuple(columns), terms=tuple(terms))


def _compile_head(rule: Rule) -> HeadPlan:
    aggregate_index: Optional[int] = None
    aggregate: Optional[Aggregate] = None
    for index, term in enumerate(rule.head.terms):
        if isinstance(term, Aggregate):
            if aggregate is not None:
                raise PlanError(
                    f"rule {rule.label}: at most one aggregate per head is supported"
                )
            aggregate_index = index
            aggregate = term

    group_by = tuple(
        i for i in range(len(rule.head.terms)) if i != aggregate_index
    )

    destination: Optional[Term] = None
    if rule.head.ship_to is not None:
        destination = rule.head.ship_to
    elif rule.head.location_term is not None:
        destination = rule.head.location_term

    return HeadPlan(
        atom=rule.head,
        aggregate_index=aggregate_index,
        aggregate=aggregate,
        group_by_indexes=group_by,
        destination=destination,
    )
