"""Relation catalog: schemas, arities, primary keys and soft-state lifetimes.

The catalog plays the role of P2's table manager metadata.  It is built from a
program's ``materialize`` declarations plus the predicates inferred from rule
heads and bodies, and validates that every predicate is used with a consistent
arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.datalog.ast import Program, Rule, span_of
from repro.datalog.errors import SchemaError


def _located(message: str, node: object, code: str = "NDL201") -> SchemaError:
    """A :class:`SchemaError` pointing at *node*'s source span when known."""
    span = span_of(node)
    return SchemaError(
        message,
        line=span.line if span else 0,
        column=span.column if span else 0,
        code=code,
    )


@dataclass(frozen=True)
class RelationSchema:
    """Schema metadata for a single relation.

    Attributes
    ----------
    name:
        Relation name (``link``, ``reachable``...).
    arity:
        Number of attributes.
    keys:
        Zero-based primary-key attribute positions.  Tuples that agree on the
        key attributes replace each other (P2 update semantics).  When empty,
        the whole tuple is the key (set semantics).
    lifetime:
        Soft-state lifetime in seconds; ``None`` means hard state (never
        expires).
    max_size:
        Optional bound on the number of stored tuples; ``None`` is unbounded.
    is_base:
        True when the relation is an EDB (input) relation never derived by a
        rule; base tuples are the leaves of every provenance derivation.
    """

    name: str
    arity: int
    keys: Tuple[int, ...] = ()
    lifetime: Optional[float] = None
    max_size: Optional[int] = None
    is_base: bool = False

    @property
    def key_columns(self) -> Tuple[int, ...]:
        """Primary-key columns, defaulting to all columns when undeclared."""
        if self.keys:
            return self.keys
        return tuple(range(self.arity))


class Catalog:
    """A collection of :class:`RelationSchema` definitions.

    The catalog is shared read-only by every node engine in a simulation, and
    is the authority for arity checking, key semantics and soft-state
    lifetimes.
    """

    def __init__(self) -> None:
        self._schemas: Dict[str, RelationSchema] = {}

    # -- construction -------------------------------------------------------

    def declare(self, schema: RelationSchema) -> None:
        """Register *schema*; re-declaring with a different arity is an error."""
        existing = self._schemas.get(schema.name)
        if existing is not None and existing.arity != schema.arity:
            raise SchemaError(
                f"relation {schema.name!r} declared with arity {schema.arity}, "
                f"previously {existing.arity}"
            )
        self._schemas[schema.name] = schema

    @classmethod
    def from_program(cls, program: Program) -> "Catalog":
        """Infer a catalog from a parsed program.

        Arities come from atom usage; primary keys and lifetimes come from
        ``materialize`` declarations (keys are converted from P2's 1-based
        positions to 0-based).  Predicates appearing only in bodies are marked
        as base relations.
        """
        catalog = cls()
        arities: Dict[str, int] = {}
        for rule in program.rules:
            _record_arity(arities, rule)

        materialize = {decl.name: decl for decl in program.materialized}
        derived = set(program.derived_predicates())

        for name, arity in arities.items():
            decl = materialize.get(name)
            keys: Tuple[int, ...] = ()
            lifetime: Optional[float] = None
            max_size: Optional[int] = None
            if decl is not None:
                keys = tuple(k - 1 for k in decl.keys)
                for key in keys:
                    if key < 0 or key >= arity:
                        raise _located(
                            f"key column {key + 1} out of range for "
                            f"{name!r} with arity {arity}",
                            decl,
                            code="NDL203",
                        )
                lifetime = decl.lifetime
                max_size = decl.max_size
            catalog.declare(
                RelationSchema(
                    name=name,
                    arity=arity,
                    keys=keys,
                    lifetime=lifetime,
                    max_size=max_size,
                    is_base=name not in derived,
                )
            )
        return catalog

    # -- lookups -------------------------------------------------------------

    def schema(self, name: str) -> RelationSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterable[str]:
        return iter(self._schemas)

    def __len__(self) -> int:
        return len(self._schemas)

    def relations(self) -> Tuple[RelationSchema, ...]:
        return tuple(self._schemas.values())

    def base_relations(self) -> Tuple[RelationSchema, ...]:
        return tuple(s for s in self._schemas.values() if s.is_base)

    def derived_relations(self) -> Tuple[RelationSchema, ...]:
        return tuple(s for s in self._schemas.values() if not s.is_base)

    def check_rule(self, rule: Rule) -> None:
        """Validate that every atom in *rule* matches the catalog arity."""
        for atom in (rule.head, *rule.body_atoms()):
            if atom.name not in self._schemas:
                continue
            expected = self._schemas[atom.name].arity
            if atom.arity != expected:
                raise _located(
                    f"rule {rule.label}: {atom.name!r} used with arity "
                    f"{atom.arity}, declared {expected}",
                    atom,
                )


def _record_arity(arities: Dict[str, int], rule: Rule) -> None:
    for atom in (rule.head, *rule.body_atoms()):
        existing = arities.get(atom.name)
        if existing is None:
            arities[atom.name] = atom.arity
        elif existing != atom.arity:
            raise _located(
                f"relation {atom.name!r} used with inconsistent arities "
                f"{existing} and {atom.arity} (rule {rule.label})",
                atom,
            )
