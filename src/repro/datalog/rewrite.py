"""Localization rewrite for NDlog rules.

A distributed NDlog rule may join atoms stored at different locations, e.g.::

    r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).

where ``link`` tuples live at ``S`` but ``reachable`` tuples live at ``Z``.
Rules are executable only when every body atom is stored at the same node, so
the classic *localization rewrite* (Loo et al., SIGMOD 2006) splits such rules
into a chain of rules whose bodies are each localized to a single location,
introducing intermediate relations that are shipped between nodes::

    r2a r2_mid_1(@Z, S)   :- link(@S, Z).
    r2b reachable(@S, D)  :- r2_mid_1(@Z, S), reachable(@Z, D).

The head of ``r2a`` is shipped to ``Z`` (its location specifier), and the head
of ``r2b`` back to ``S``; the node engine performs the shipping.

SeNDlog rules (Section 2.2 of the paper) are already written in localized
form within a principal's context, so the rewrite simply validates them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.datalog.ast import (
    Assignment,
    Atom,
    Comparison,
    Literal,
    Program,
    Rule,
    SaysAtom,
    Term,
    Variable,
    span_of,
)
from repro.datalog.errors import RewriteError

_INTERMEDIATE_SUFFIX = "_mid_"


def is_localized(rule: Rule) -> bool:
    """True when every located body atom of *rule* shares one location term."""
    locations = _body_locations(rule)
    return len(set(map(str, locations))) <= 1


def localize_rule(rule: Rule) -> List[Rule]:
    """Rewrite *rule* into an equivalent list of localized rules.

    Localized rules are returned unchanged (in a singleton list).  Rules whose
    body spans ``k`` distinct locations are split into ``k`` rules linked by
    intermediate relations named ``<label>_mid_<i>``.
    """
    if is_localized(rule):
        return [rule]
    says = next((lit for lit in rule.body if isinstance(lit, SaysAtom)), None)
    if says is not None:
        # The lint layer reports this as NDL301 before any rewrite runs; the
        # exception path carries the same code and the says literal's source
        # position for callers that skip linting.
        span = span_of(says) or span_of(rule)
        raise RewriteError(
            f"rule {rule.label}: SeNDlog rules with 'says' must already be "
            f"localized ('{says}' cannot be split across locations; write the "
            "rule inside an 'At <Principal>:' context)",
            line=span.line if span else 0,
            column=span.column if span else 0,
            code="NDL301",
        )

    remaining = list(rule.body)
    produced: List[Rule] = []
    stage = 0
    carried_atom: Optional[Atom] = None

    while True:
        group, rest = _split_first_location_group(remaining, carried_atom)
        if rest and _first_location(rest) is None:
            # Only expression literals remain: they belong to the final stage.
            group = group + rest
            rest = []
        if not rest:
            # Final stage: derive the original head from the carried
            # intermediate plus the remaining local atoms and expressions.
            body = ([carried_atom] if carried_atom is not None else []) + group
            produced.append(
                Rule(
                    label=f"{rule.label}" if stage == 0 else f"{rule.label}{chr(ord('a') + stage)}",
                    head=rule.head,
                    body=tuple(body),
                    context=rule.context,
                )
            )
            return produced

        stage_location = _group_location(group, carried_atom)
        if stage_location is None:
            raise RewriteError(
                f"rule {rule.label}: cannot determine location for rewrite stage {stage}"
            )

        next_location = _first_location(rest)
        if next_location is None:
            raise RewriteError(
                f"rule {rule.label}: remaining body has no location specifier"
            )

        body = ([carried_atom] if carried_atom is not None else []) + group
        needed = _variables_needed_downstream(rule, rest)
        bound_here = _bound_variables(body)
        carried_vars = [v for v in needed if v.name in bound_here]

        mid_terms: List[Term] = [next_location]
        mid_terms.extend(v for v in carried_vars if str(v) != str(next_location))
        mid_name = f"{rule.head.name}_{rule.label}{_INTERMEDIATE_SUFFIX}{stage + 1}"
        mid_head = Atom(name=mid_name, terms=tuple(mid_terms), location_index=0)

        produced.append(
            Rule(
                label=f"{rule.label}{chr(ord('a') + stage)}",
                head=mid_head,
                body=tuple(body),
                context=rule.context,
            )
        )
        carried_atom = mid_head
        remaining = rest
        stage += 1


def localize_program(program: Program) -> Program:
    """Apply :func:`localize_rule` to every rule of *program*."""
    rewritten: List[Rule] = []
    for rule in program.rules:
        rewritten.extend(localize_rule(rule))
    return replace(program, rules=tuple(rewritten))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _body_locations(rule: Rule) -> List[Term]:
    locations: List[Term] = []
    for atom in rule.body_atoms():
        if atom.location_term is not None:
            locations.append(atom.location_term)
    return locations


def _first_location(literals: Sequence[Literal]) -> Optional[Term]:
    for literal in literals:
        atom = literal.atom if isinstance(literal, SaysAtom) else literal
        if isinstance(atom, Atom) and atom.location_term is not None:
            return atom.location_term
    return None


def _group_location(group: Sequence[Literal], carried: Optional[Atom]) -> Optional[Term]:
    location = _first_location(group)
    if location is not None:
        return location
    if carried is not None:
        return carried.location_term
    return None


def _split_first_location_group(
    literals: Sequence[Literal], carried: Optional[Atom]
) -> Tuple[List[Literal], List[Literal]]:
    """Partition *literals* into those evaluable at the first location and the rest.

    Comparisons and assignments are greedily attached to the first group when
    all their variables are bound there; otherwise they flow downstream.
    """
    anchor = _first_location(literals)
    if anchor is None:
        return list(literals), []
    anchor_name = str(anchor)
    if carried is not None and carried.location_term is not None:
        anchor_name = str(carried.location_term)
        anchor = carried.location_term
        # If the carried atom defines the stage location, atoms co-located
        # with it belong to this stage.

    group: List[Literal] = []
    rest: List[Literal] = []
    for literal in literals:
        atom = literal.atom if isinstance(literal, SaysAtom) else literal
        if isinstance(atom, Atom):
            location = atom.location_term
            if location is not None and str(location) == anchor_name:
                group.append(literal)
            elif location is None:
                group.append(literal)
            else:
                rest.append(literal)
        else:
            # Expression literal: defer placement until after atoms are split.
            rest.append(literal)

    if not group:
        # No atom matched the carried location; fall back to the first located
        # atom's group so progress is always made.
        first = _first_location(literals)
        group = [
            lit
            for lit in literals
            if isinstance(lit, (Atom, SaysAtom))
            and (lit.atom if isinstance(lit, SaysAtom) else lit).location_term is not None
            and str((lit.atom if isinstance(lit, SaysAtom) else lit).location_term) == str(first)
        ]
        rest = [lit for lit in literals if lit not in group]

    # Pull expressions whose variables are all bound by this group forward.
    bound = _bound_variables(group)
    if carried is not None:
        bound |= {variable.name for variable in carried.variables()}
    promoted: List[Literal] = []
    for literal in list(rest):
        if isinstance(literal, (Comparison, Assignment)):
            needed = {
                v.name
                for v in literal.variables()
                if not (isinstance(literal, Assignment) and v == literal.target)
            }
            if needed <= bound:
                rest.remove(literal)
                promoted.append(literal)
                if isinstance(literal, Assignment):
                    bound.add(literal.target.name)
    group.extend(promoted)
    return group, rest


def _bound_variables(literals: Sequence[Literal]) -> set:
    bound = set()
    for literal in literals:
        if isinstance(literal, (Atom, SaysAtom)):
            for variable in literal.variables():
                bound.add(variable.name)
        elif isinstance(literal, Assignment):
            bound.add(literal.target.name)
    return bound


def _variables_needed_downstream(rule: Rule, rest: Sequence[Literal]) -> List[Variable]:
    """Variables that later stages or the head still require, in first-use order."""
    needed: List[Variable] = []
    seen = set()

    def _add(variable: Variable) -> None:
        if variable.name not in seen:
            seen.add(variable.name)
            needed.append(variable)

    for literal in rest:
        for variable in literal.variables():
            _add(variable)
    for variable in rule.head.variables():
        _add(variable)
    return needed
