"""NDlog / SeNDlog language front end.

This subpackage implements the declarative-networking query language used by
the paper: Network Datalog (NDlog) with location specifiers, and its security
extension SeNDlog with Binder-style principals and the ``says`` operator.

Typical usage::

    from repro.datalog import parse_program

    program = parse_program('''
        r1 reachable(@S, D) :- link(@S, D).
        r2 reachable(@S, D) :- link(@S, Z), reachable(@Z, D).
    ''')
"""

from repro.datalog.ast import (
    Aggregate,
    Atom,
    Constant,
    Expression,
    FunctionCall,
    Program,
    Rule,
    SaysAtom,
    Span,
    Term,
    Variable,
    span_of,
)
from repro.datalog.diagnostics import Diagnostic, LintWarning, Severity
from repro.datalog.errors import (
    DatalogError,
    LintError,
    LocatedError,
    ParseError,
    PlanError,
    RewriteError,
    SafetyError,
    SchemaError,
)
from repro.datalog.lint import check_program, lint_program, lint_source
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.catalog import Catalog, RelationSchema
from repro.datalog.rewrite import localize_program
from repro.datalog.analysis import (
    DependencyGraph,
    analyze_program,
    check_safety,
    stratify,
)
from repro.datalog.planner import RulePlan, compile_program

__all__ = [
    "Aggregate",
    "Atom",
    "Catalog",
    "Constant",
    "DatalogError",
    "DependencyGraph",
    "Diagnostic",
    "Expression",
    "FunctionCall",
    "LintError",
    "LintWarning",
    "LocatedError",
    "ParseError",
    "PlanError",
    "Program",
    "RelationSchema",
    "RewriteError",
    "Rule",
    "RulePlan",
    "SafetyError",
    "SaysAtom",
    "SchemaError",
    "Severity",
    "Span",
    "Term",
    "Variable",
    "analyze_program",
    "check_program",
    "check_safety",
    "compile_program",
    "lint_program",
    "lint_source",
    "localize_program",
    "parse_program",
    "parse_rule",
    "span_of",
    "stratify",
]
